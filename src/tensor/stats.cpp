#include "tensor/stats.h"

#include <cmath>

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::stats {

Tensor column_mean(const Tensor& a) {
  SATD_EXPECT(a.shape().rank() == 2, "column_mean requires rank 2");
  const std::size_t n = a.shape()[0];
  const std::size_t d = a.shape()[1];
  SATD_EXPECT(n > 0, "column_mean of empty batch");
  Tensor out(Shape{d});
  ops::sum_rows(a, out);
  for (std::size_t j = 0; j < d; ++j) out[j] /= static_cast<float>(n);
  return out;
}

Tensor center_rows(const Tensor& a) {
  const Tensor mu = column_mean(a);
  const std::size_t n = a.shape()[0];
  const std::size_t d = a.shape()[1];
  Tensor out(a.shape());
  const float* pa = a.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) po[i * d + j] = pa[i * d + j] - mu[j];
  }
  return out;
}

Tensor covariance(const Tensor& a) {
  SATD_EXPECT(a.shape().rank() == 2, "covariance requires rank 2");
  const std::size_t n = a.shape()[0];
  SATD_EXPECT(n >= 2, "covariance requires at least two rows");
  const Tensor centered = center_rows(a);
  Tensor cov = ops::matmul_tn(centered, centered);
  ops::scale(cov, 1.0f / static_cast<float>(n - 1), cov);
  return cov;
}

float mmd_l1(const Tensor& a, const Tensor& b) {
  const Tensor ma = column_mean(a);
  const Tensor mb = column_mean(b);
  SATD_EXPECT(ma.shape() == mb.shape(), "mmd_l1 feature dim mismatch");
  const std::size_t d = ma.numel();
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) acc += std::fabs(ma[j] - mb[j]);
  return static_cast<float>(acc / static_cast<double>(d));
}

float coral_l1(const Tensor& a, const Tensor& b) {
  const Tensor ca = covariance(a);
  const Tensor cb = covariance(b);
  SATD_EXPECT(ca.shape() == cb.shape(), "coral_l1 feature dim mismatch");
  const std::size_t dd = ca.numel();
  double acc = 0.0;
  for (std::size_t j = 0; j < dd; ++j) acc += std::fabs(ca[j] - cb[j]);
  return static_cast<float>(acc / static_cast<double>(dd));
}

}  // namespace satd::stats
