#include "tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/contract.h"

namespace satd {

std::size_t Shape::operator[](std::size_t i) const {
  SATD_EXPECT(i < dims_.size(), "shape index out of range");
  return dims_[i];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream ss;
  ss << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) ss << ", ";
    ss << dims_[i];
  }
  ss << "]";
  return ss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  SATD_EXPECT(data_.size() == shape_.numel(),
              "data size does not match shape " + shape_.to_string());
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor(Shape{n}, std::move(values));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

float& Tensor::operator[](std::size_t i) {
  SATD_EXPECT(i < data_.size(), "flat index out of range");
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  SATD_EXPECT(i < data_.size(), "flat index out of range");
  return data_[i];
}

float& Tensor::at(std::size_t i0) {
  SATD_EXPECT(shape_.rank() == 1, "at(i) requires rank 1");
  return (*this)[i0];
}

float& Tensor::at(std::size_t i0, std::size_t i1) {
  SATD_EXPECT(shape_.rank() == 2, "at(i,j) requires rank 2");
  SATD_EXPECT(i0 < shape_[0] && i1 < shape_[1], "index out of range");
  return data_[i0 * shape_[1] + i1];
}

float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) {
  SATD_EXPECT(shape_.rank() == 3, "at(i,j,k) requires rank 3");
  SATD_EXPECT(i0 < shape_[0] && i1 < shape_[1] && i2 < shape_[2],
              "index out of range");
  return data_[(i0 * shape_[1] + i1) * shape_[2] + i2];
}

float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                  std::size_t i3) {
  SATD_EXPECT(shape_.rank() == 4, "at(i,j,k,l) requires rank 4");
  SATD_EXPECT(i0 < shape_[0] && i1 < shape_[1] && i2 < shape_[2] &&
                  i3 < shape_[3],
              "index out of range");
  return data_[((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3];
}

float Tensor::at(std::size_t i0) const {
  return const_cast<Tensor*>(this)->at(i0);
}
float Tensor::at(std::size_t i0, std::size_t i1) const {
  return const_cast<Tensor*>(this)->at(i0, i1);
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2);
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                 std::size_t i3) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2, i3);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  SATD_EXPECT(new_shape.numel() == numel(),
              "reshape element count mismatch: " + shape_.to_string() +
                  " -> " + new_shape.to_string());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::ensure_shape(const Shape& shape) {
  if (shape_ == shape) return;
  data_.resize(shape.numel());
  shape_ = shape;
}

std::size_t Tensor::row_stride() const {
  SATD_EXPECT(shape_.rank() >= 2, "row access requires rank >= 2");
  std::size_t stride = 1;
  for (std::size_t d = 1; d < shape_.rank(); ++d) stride *= shape_[d];
  return stride;
}

Tensor Tensor::slice_row(std::size_t i) const {
  const std::size_t stride = row_stride();
  SATD_EXPECT(i < shape_[0], "row index out of range");
  std::vector<std::size_t> trailing(shape_.dims().begin() + 1,
                                    shape_.dims().end());
  std::vector<float> row(data_.begin() + static_cast<std::ptrdiff_t>(i * stride),
                         data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * stride));
  return Tensor(Shape(std::move(trailing)), std::move(row));
}

void Tensor::set_row(std::size_t i, const Tensor& row) {
  const std::size_t stride = row_stride();
  SATD_EXPECT(i < shape_[0], "row index out of range");
  SATD_EXPECT(row.numel() == stride, "row size mismatch");
  std::copy(row.data_.begin(), row.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(i * stride));
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::to_string(std::size_t max_elems) const {
  std::ostringstream ss;
  ss << "Tensor" << shape_.to_string() << " {";
  const std::size_t n = std::min(max_elems, data_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i) ss << ", ";
    ss << data_[i];
  }
  if (n < data_.size()) ss << ", ...";
  ss << "}";
  return ss.str();
}

}  // namespace satd
