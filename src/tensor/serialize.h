// Binary tensor (de)serialization.
//
// Format: magic "STSR", u32 version, u32 rank, u64 dims..., f32 data...
// Little-endian, no alignment padding. Used by model save/load and the
// benches' trained-model cache.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "tensor/tensor.h"

namespace satd {

/// Thrown when a stream does not contain a valid serialized tensor.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what) : std::runtime_error(what) {}
};

/// Writes one tensor to a binary stream.
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads one tensor; throws SerializeError on malformed input.
Tensor read_tensor(std::istream& is);

/// Writes a length-prefixed UTF-8 string (used by model metadata).
void write_string(std::ostream& os, const std::string& s);

/// Reads a length-prefixed string.
std::string read_string(std::istream& is);

/// Writes / reads a u64 (little-endian).
void write_u64(std::ostream& os, std::uint64_t v);
std::uint64_t read_u64(std::istream& is);

}  // namespace satd
