// Binary tensor (de)serialization.
//
// Format (version 2): magic "STSR", u32 version, u32 rank, u64 dims...,
// f32 data..., u32 crc32 over the rank/dims/data bytes. Little-endian,
// no alignment padding. Version-1 files (no per-tensor CRC) are still
// readable. Used by model save/load, trainer checkpoints and the
// benches' trained-model cache.
#pragma once

#include <iosfwd>
#include <string>

#include "common/durable_io.h"
#include "tensor/tensor.h"

namespace satd {

/// Thrown when a stream does not contain a valid serialized tensor.
/// Derives from durable::CorruptFileError so callers can treat framing-
/// and payload-level corruption uniformly.
class SerializeError : public durable::CorruptFileError {
 public:
  explicit SerializeError(const std::string& what)
      : durable::CorruptFileError(what) {}
};

/// Writes one tensor to a binary stream (current format version).
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads one tensor; throws SerializeError on malformed input (bad
/// magic, unsupported version, truncation, or a version-2 CRC mismatch).
Tensor read_tensor(std::istream& is);

/// Writes a length-prefixed UTF-8 string (used by model metadata).
void write_string(std::ostream& os, const std::string& s);

/// Reads a length-prefixed string.
std::string read_string(std::istream& is);

/// Writes / reads a u64 (little-endian).
void write_u64(std::ostream& os, std::uint64_t v);
std::uint64_t read_u64(std::istream& is);

}  // namespace satd
