#include "tensor/serialize.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/contract.h"

namespace satd {

namespace {
constexpr char kMagic[4] = {'S', 'T', 'S', 'R'};
// Version 2 appends a u32 CRC32 of the rank/dims/data bytes so bit-rot
// inside a tensor record is detected even when the surrounding file
// framing is absent (e.g. a record embedded in a legacy artifact).
// Version-1 records (no CRC) remain readable.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kOldVersion = 1;
constexpr std::uint64_t kMaxStringLen = 1u << 20;
constexpr std::uint64_t kMaxTensorElems = 1ull << 32;

void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(buf), 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) throw SerializeError("truncated stream reading u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

// Checksummed variants: update `crc` with exactly the bytes put on /
// taken off the wire, so writer and reader agree on the covered range.
void write_u32_crc(std::ostream& os, std::uint32_t v, std::uint32_t& crc) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  crc = durable::crc32(buf, 4, crc);
  os.write(reinterpret_cast<const char*>(buf), 4);
}

void write_u64_crc(std::ostream& os, std::uint64_t v, std::uint32_t& crc) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  crc = durable::crc32(buf, 8, crc);
  os.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint32_t read_u32_crc(std::istream& is, std::uint32_t& crc) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) throw SerializeError("truncated stream reading u32");
  crc = durable::crc32(buf, 4, crc);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64_crc(std::istream& is, std::uint32_t& crc) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  if (!is) throw SerializeError("truncated stream reading u64");
  crc = durable::crc32(buf, 8, crc);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}
}  // namespace

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  if (!is) throw SerializeError("truncated stream reading u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  SATD_EXPECT(s.size() <= kMaxStringLen, "string too long to serialize");
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t len = read_u64(is);
  if (len > kMaxStringLen) throw SerializeError("unreasonable string length");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw SerializeError("truncated stream reading string");
  return s;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, 4);
  write_u32(os, kVersion);
  std::uint32_t crc = 0;
  write_u32_crc(os, static_cast<std::uint32_t>(t.shape().rank()), crc);
  for (std::size_t d : t.shape().dims()) write_u64_crc(os, d, crc);
  // float32 is IEEE-754 on every supported platform; write raw.
  static_assert(sizeof(float) == 4);
  const std::streamsize nbytes =
      static_cast<std::streamsize>(t.numel() * sizeof(float));
  crc = durable::crc32(t.raw(), static_cast<std::size_t>(nbytes), crc);
  os.write(reinterpret_cast<const char*>(t.raw()), nbytes);
  write_u32(os, crc);
}

Tensor read_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    throw SerializeError("bad tensor magic");
  }
  const std::uint32_t version = read_u32(is);
  if (version != kVersion && version != kOldVersion) {
    throw SerializeError("unsupported tensor version " +
                         std::to_string(version));
  }
  std::uint32_t crc = 0;
  const std::uint32_t rank = read_u32_crc(is, crc);
  if (rank > 8) throw SerializeError("unreasonable tensor rank");
  std::vector<std::size_t> dims(rank);
  std::uint64_t numel = 1;
  for (auto& d : dims) {
    d = static_cast<std::size_t>(read_u64_crc(is, crc));
    numel *= d;
    if (numel > kMaxTensorElems) {
      throw SerializeError("unreasonable tensor size");
    }
  }
  std::vector<float> data(static_cast<std::size_t>(numel));
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!is) throw SerializeError("truncated stream reading tensor data");
  if (version >= 2) {
    crc = durable::crc32(data.data(), data.size() * sizeof(float), crc);
    const std::uint32_t stored = read_u32(is);
    if (stored != crc) {
      throw SerializeError("tensor checksum mismatch (corrupted data)");
    }
  }
  return Tensor(Shape(std::move(dims)), std::move(data));
}

}  // namespace satd
