// Math kernels over Tensor.
//
// Free functions, out-parameter variants where the hot loops need to
// avoid allocation (the training loop reuses buffers), plus convenience
// value-returning forms for tests and cold paths.
//
// The three GEMM entry points share one cache-blocked, register-tiled
// kernel: A is packed into 4-row interleaved panels per thread, C is
// accumulated in a stack-resident column tile, and work is distributed
// over output row panels only (see DESIGN.md §8). Accumulator policy
// (uniform across matmul / matmul_tn / matmul_nt): every output element
// is a float accumulator summed in strictly increasing k order, with no
// zero-skip short-circuits — NaN and Inf operands propagate exactly as
// IEEE float arithmetic dictates, and results are bit-identical for any
// thread count. Elementwise kernels are likewise parallelized over
// disjoint ranges; reductions stay single-threaded so their accumulation
// order is fixed.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace satd::ops {

// ---- elementwise ----

/// out = a (deep copy into a reused buffer; resizes out on shape change).
void copy(const Tensor& a, Tensor& out);

/// out = a + b (shapes must match).
void add(const Tensor& a, const Tensor& b, Tensor& out);
Tensor add(const Tensor& a, const Tensor& b);

/// out = a - b.
void sub(const Tensor& a, const Tensor& b, Tensor& out);
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a ⊙ b (Hadamard).
void mul(const Tensor& a, const Tensor& b, Tensor& out);
Tensor mul(const Tensor& a, const Tensor& b);

/// out = a * s.
void scale(const Tensor& a, float s, Tensor& out);
Tensor scale(const Tensor& a, float s);

/// a += alpha * b (in place).
void axpy(float alpha, const Tensor& b, Tensor& a);

/// out = sign(a) with sign(0) = 0.
void sign(const Tensor& a, Tensor& out);
Tensor sign(const Tensor& a);

/// out = clamp(a, lo, hi) elementwise.
void clamp(const Tensor& a, float lo, float hi, Tensor& out);
Tensor clamp(const Tensor& a, float lo, float hi);

/// Clamps `x` into the l-infinity ball of radius eps around `center`,
/// then into [lo, hi]: the projection step of every l-inf attack.
void project_linf(const Tensor& center, float eps, float lo, float hi,
                  Tensor& x);

// ---- reductions ----

/// Sum of all elements.
float sum(const Tensor& a);

/// Mean of all elements (0 for empty).
float mean(const Tensor& a);

/// Maximum absolute element (0 for empty).
float max_abs(const Tensor& a);

/// Maximum elementwise |a - b| (shapes must match).
float max_abs_diff(const Tensor& a, const Tensor& b);

/// L1 norm (sum of |a_i|).
float l1_norm(const Tensor& a);

/// L2 norm.
float l2_norm(const Tensor& a);

/// Argmax over a rank-1 tensor (or the flat data).
std::size_t argmax(const Tensor& a);

/// Row-wise argmax of a rank-2 tensor [N, D] -> N indices.
std::vector<std::size_t> argmax_rows(const Tensor& a);

/// Allocation-free variant: `out` is resized (capacity reused) per call.
void argmax_rows_into(const Tensor& a, std::vector<std::size_t>& out);

// ---- linear algebra ----

/// C = A · B for A[m,k], B[k,n] -> C[m,n].
void matmul(const Tensor& a, const Tensor& b, Tensor& out);
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ · B for A[k,m], B[k,n] -> C[m,n] (no materialized transpose).
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out);
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A · Bᵀ for A[m,k], B[n,k] -> C[m,n].
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out);
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// out[i,j] = a[i,j] + bias[j] for a[m,n], bias[n].
void add_row_bias(const Tensor& a, const Tensor& bias, Tensor& out);

/// grad_bias[j] = sum_i grad[i,j].
void sum_rows(const Tensor& grad, Tensor& out);

/// Transposed copy of a rank-2 tensor.
Tensor transpose(const Tensor& a);

}  // namespace satd::ops
