// im2col / col2im transforms.
//
// Convolution layers lower to matrix multiplication: a [N, C, H, W]
// activation batch is unfolded into a matrix with one row per output
// pixel and one column per (channel, kernel-row, kernel-col) tap; the
// convolution then becomes columns · filter-matrix. col2im is the exact
// adjoint, used for the input-gradient pass (which adversarial attacks
// depend on).
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace satd {

/// Geometry of a 2-D convolution (stride 1, symmetric zero padding).
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;   // square kernel
  std::size_t padding = 0;  // symmetric zero padding

  std::size_t out_h() const { return in_h + 2 * padding - kernel + 1; }
  std::size_t out_w() const { return in_w + 2 * padding - kernel + 1; }
  /// Number of taps feeding one output pixel.
  std::size_t patch_size() const { return in_channels * kernel * kernel; }
};

/// Unfolds one image [C, H, W] into [out_h*out_w, patch_size].
/// `out` is resized if needed.
void im2col(const Tensor& image, const ConvGeometry& g, Tensor& out);

/// Adjoint of im2col: accumulates the column gradient
/// [out_h*out_w, patch_size] back into an image gradient [C, H, W].
/// `out` is resized and zeroed.
void col2im(const Tensor& columns, const ConvGeometry& g, Tensor& out);

/// Unfolds a whole batch [N, C, H, W] into [N*out_h*out_w, patch_size]
/// (image i occupies rows [i*out_h*out_w, (i+1)*out_h*out_w)), so the
/// convolution over the batch is one GEMM instead of N. `out` is resized
/// in place (capacity reused) when the shape changes.
void im2col_batch(const Tensor& batch, const ConvGeometry& g, Tensor& out);

/// Adjoint of im2col_batch: folds [N*out_h*out_w, patch_size] column
/// gradients back into a batch gradient [N, C, H, W]. `out` is resized
/// in place and zeroed.
void col2im_batch(const Tensor& columns, std::size_t batch_size,
                  const ConvGeometry& g, Tensor& out);

}  // namespace satd
