#include "tensor/workspace.h"

#include "common/contract.h"

namespace satd {

Tensor& Workspace::get(std::string_view name, const Shape& shape) {
  SATD_EXPECT(!name.empty(), "workspace buffer name must be non-empty");
  auto it = buffers_.find(name);
  if (it == buffers_.end()) {
    it = buffers_.emplace(std::string(name), Tensor(shape)).first;
    return it->second;
  }
  it->second.ensure_shape(shape);
  return it->second;
}

Tensor& Workspace::get_zeroed(std::string_view name, const Shape& shape) {
  Tensor& t = get(name, shape);
  t.fill(0.0f);
  return t;
}

const Tensor& Workspace::at(std::string_view name) const {
  const auto it = buffers_.find(name);
  SATD_EXPECT(it != buffers_.end(),
              "workspace has no buffer named '" + std::string(name) + "'");
  return it->second;
}

bool Workspace::has(std::string_view name) const {
  return buffers_.find(name) != buffers_.end();
}

std::size_t Workspace::total_elements() const {
  std::size_t n = 0;
  for (const auto& [name, t] : buffers_) n += t.numel();
  return n;
}

}  // namespace satd
