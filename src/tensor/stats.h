// Batch statistics over rank-2 tensors [N, D].
//
// These feed the ATDA baseline (Song et al. 2018), whose domain-adaptation
// loss compares the mean (MMD term) and covariance (CORAL term) of clean
// and adversarial logit batches.
#pragma once

#include "tensor/tensor.h"

namespace satd::stats {

/// Column means of a [N, D] matrix -> [D].
Tensor column_mean(const Tensor& a);

/// Rows minus their column mean -> [N, D].
Tensor center_rows(const Tensor& a);

/// Sample covariance of the columns of a [N, D] matrix -> [D, D],
/// computed as Xcᵀ·Xc / (N - 1) (N >= 2 required).
Tensor covariance(const Tensor& a);

/// Mean of per-column |mean(a) - mean(b)|: the (linear-kernel) MMD
/// distance used by ATDA. Shapes must both be [*, D] with equal D.
float mmd_l1(const Tensor& a, const Tensor& b);

/// Mean of elementwise |cov(a) - cov(b)| over the D*D entries: the CORAL
/// distance used by ATDA.
float coral_l1(const Tensor& a, const Tensor& b);

}  // namespace satd::stats
