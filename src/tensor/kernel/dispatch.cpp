// Kernel registry, runtime dispatch and the blocked GEMM drivers.
//
// The drivers own everything outside the register tile: strided A-panel
// packing (which is what absorbs the tn transpose), the parallel
// decomposition over mr-aligned row panels, and the per-thread packing
// scratch. The active MicroKernel only ever sees one packed panel and a
// row-major B block, so swapping kernels can change speed but never the
// macro-level work split — which is why the thread-count-invariance
// contract holds per kernel (see microkernel.h).
#include "tensor/kernel/microkernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/contract.h"
#include "common/log.h"
#include "common/thread_pool.h"

namespace satd::kernel {

// Defined by the per-ISA translation units actually compiled in.
extern const MicroKernel kScalarKernel;
#if defined(__x86_64__) || defined(__i386__)
extern const MicroKernel kSse41Kernel;
extern const MicroKernel kAvx2Kernel;
#endif
#if defined(__aarch64__)
extern const MicroKernel kNeonKernel;
#endif

namespace {

/// Ascending preference order: auto-detection picks the LAST available
/// entry, so wider kernels go later.
std::vector<const MicroKernel*> make_registry() {
  std::vector<const MicroKernel*> v;
  v.push_back(&kScalarKernel);
#if defined(__aarch64__)
  v.push_back(&kNeonKernel);
#endif
#if defined(__x86_64__) || defined(__i386__)
  v.push_back(&kSse41Kernel);
  v.push_back(&kAvx2Kernel);
#endif
  return v;
}

std::string known_names() {
  std::ostringstream ss;
  const auto& all = compiled_kernels();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i) ss << ", ";
    ss << all[i]->name;
  }
  return ss.str();
}

const MicroKernel* resolve_auto() {
  const MicroKernel* best = &kScalarKernel;
  for (const MicroKernel* k : compiled_kernels()) {
    if (k->runtime_available()) best = k;
  }
  return best;
}

/// SATD_KERNEL resolution with parse_thread_env-style hardening: any
/// rejected value logs one warning and falls back to auto-detection.
const MicroKernel* resolve_from_env() {
  const char* env = std::getenv("SATD_KERNEL");
  if (env == nullptr || *env == '\0') return resolve_auto();
  const MicroKernel* k = find_kernel(env);
  if (k == nullptr) {
    log::warn() << "SATD_KERNEL=\"" << env << "\" is not a known kernel ("
                << known_names() << "); using auto-dispatch ("
                << resolve_auto()->name << ")";
    return resolve_auto();
  }
  if (!k->runtime_available()) {
    log::warn() << "SATD_KERNEL=\"" << env
                << "\" is not supported by this CPU; using auto-dispatch ("
                << resolve_auto()->name << ")";
    return resolve_auto();
  }
  return k;
}

std::atomic<const MicroKernel*>& active_slot() {
  static std::atomic<const MicroKernel*> slot{nullptr};
  return slot;
}

// ---- per-thread packing scratch ----
//
// Workers are pool threads, so each gets its own buffers; steady-state
// calls reuse the grown capacity (no alloc). The recorded geometry is
// what the debug asserts in acquire_pack_* check against the active
// kernel, so a kernel with a different panel width can never reinterpret
// another kernel's packed layout.
struct PackScratch {
  std::vector<float> f32;
  std::vector<std::int8_t> s8;
  std::size_t mr_f32 = 0, k_f32 = 0;
  std::size_t mr_s8 = 0, k_s8 = 0;
};
thread_local PackScratch t_pack;

/// Packs rows [i0, i0+rows) of the logical m×k matrix A — element
/// (i, kk) lives at a[i*row_stride + kk*col_stride] — into
/// apack[kk*mr + r]. Tail rows beyond `rows` are zero-filled; their
/// results are computed into the kernel's local tile and discarded on
/// store.
void pack_a_panel_f32(const float* a, std::size_t row_stride,
                      std::size_t col_stride, std::size_t i0,
                      std::size_t rows, std::size_t k, std::size_t mr,
                      float* apack) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* src = a + kk * col_stride;
    float* dst = apack + kk * mr;
    for (std::size_t r = 0; r < mr; ++r) {
      dst[r] = r < rows ? src[(i0 + r) * row_stride] : 0.0f;
    }
  }
}

void pack_a_panel_s8(const std::int8_t* a, std::size_t i0, std::size_t rows,
                     std::size_t k, std::size_t mr, std::int8_t* apack) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    std::int8_t* dst = apack + kk * mr;
    for (std::size_t r = 0; r < mr; ++r) {
      dst[r] = r < rows ? a[(i0 + r) * k + kk] : std::int8_t{0};
    }
  }
}

/// Aim for >= ~64k multiply-adds per chunk so the pool handoff stays
/// negligible even for skinny matrices.
std::size_t panel_grain(std::size_t mr, std::size_t n, std::size_t k) {
  const std::size_t panel_flops = mr * n * k;
  return std::max<std::size_t>(
      1, (1u << 16) / std::max<std::size_t>(1, panel_flops) + 1);
}

}  // namespace

const std::vector<const MicroKernel*>& compiled_kernels() {
  static const std::vector<const MicroKernel*> registry = make_registry();
  return registry;
}

std::vector<const MicroKernel*> available_kernels() {
  std::vector<const MicroKernel*> v;
  for (const MicroKernel* k : compiled_kernels()) {
    if (k->runtime_available()) v.push_back(k);
  }
  return v;
}

const MicroKernel* find_kernel(const std::string& name) {
  for (const MicroKernel* k : compiled_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const MicroKernel& active_kernel() {
  const MicroKernel* k = active_slot().load(std::memory_order_acquire);
  if (k == nullptr) {
    k = resolve_from_env();
    active_slot().store(k, std::memory_order_release);
  }
  return *k;
}

bool set_active_kernel(const std::string& name) {
  if (name.empty()) {
    active_slot().store(resolve_from_env(), std::memory_order_release);
    return true;
  }
  const MicroKernel* k = find_kernel(name);
  if (k == nullptr) {
    log::warn() << "unknown kernel \"" << name << "\" (" << known_names()
                << "); using auto-dispatch (" << resolve_auto()->name << ")";
    active_slot().store(resolve_auto(), std::memory_order_release);
    return false;
  }
  if (!k->runtime_available()) {
    log::warn() << "kernel \"" << name
                << "\" is not supported by this CPU; using auto-dispatch ("
                << resolve_auto()->name << ")";
    active_slot().store(resolve_auto(), std::memory_order_release);
    return false;
  }
  active_slot().store(k, std::memory_order_release);
  return true;
}

std::string auto_kernel_name() { return resolve_auto()->name; }

float* acquire_pack_f32(std::size_t mr, std::size_t k) {
  SATD_DEBUG_ENSURE(mr == active_kernel().mr,
                    "f32 packing geometry does not match the active kernel");
  PackScratch& s = t_pack;
  s.f32.resize(mr * k);
  s.mr_f32 = mr;
  s.k_f32 = k;
  return s.f32.data();
}

std::int8_t* acquire_pack_s8(std::size_t mr, std::size_t k) {
  SATD_DEBUG_ENSURE(mr == active_kernel().mr,
                    "s8 packing geometry does not match the active kernel");
  PackScratch& s = t_pack;
  s.s8.resize(mr * k);
  s.mr_s8 = mr;
  s.k_s8 = k;
  return s.s8.data();
}

void gemm_f32(const float* a, std::size_t row_stride, std::size_t col_stride,
              const float* b, std::size_t m, std::size_t n, std::size_t k,
              float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  const MicroKernel& kern = active_kernel();
  const std::size_t mr = kern.mr;
  const std::size_t panels = (m + mr - 1) / mr;
  parallel_for(panels, panel_grain(mr, n, k),
               [a, row_stride, col_stride, b, m, n, k, mr, c,
                &kern](std::size_t p0, std::size_t p1) {
                 float* apack = acquire_pack_f32(mr, k);
                 for (std::size_t p = p0; p < p1; ++p) {
                   const std::size_t i0 = p * mr;
                   const std::size_t rows = std::min(mr, m - i0);
                   pack_a_panel_f32(a, row_stride, col_stride, i0, rows, k,
                                    mr, apack);
                   kern.gemm_panel_f32(apack, rows, b, k, n, c + i0 * n);
                 }
               });
}

void gemm_s8(const std::int8_t* a, const std::int8_t* b, std::size_t m,
             std::size_t n, std::size_t k, std::int32_t* c) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0);
    return;
  }
  SATD_EXPECT(k <= kMaxS8Depth,
              "gemm_s8 depth would overflow the int32 accumulator");
  const MicroKernel& kern = active_kernel();
  const std::size_t mr = kern.mr;
  const std::size_t panels = (m + mr - 1) / mr;
  parallel_for(panels, panel_grain(mr, n, k),
               [a, b, m, n, k, mr, c,
                &kern](std::size_t p0, std::size_t p1) {
                 std::int8_t* apack = acquire_pack_s8(mr, k);
                 for (std::size_t p = p0; p < p1; ++p) {
                   const std::size_t i0 = p * mr;
                   const std::size_t rows = std::min(mr, m - i0);
                   pack_a_panel_s8(a, i0, rows, k, mr, apack);
                   kern.gemm_panel_s8(apack, rows, b, k, n, c + i0 * n);
                 }
               });
}

}  // namespace satd::kernel
