// The always-available scalar reference microkernel: the kMR=4
// register-tile loop the PR-3 blocked GEMM shipped with, now behind the
// MicroKernel interface. Every SIMD variant must reproduce this kernel's
// results bit-for-bit (f32) / exactly (s8); the CI leg that forces
// SATD_KERNEL=scalar keeps this path from rotting.
#include <algorithm>

#include "tensor/kernel/microkernel.h"

namespace satd::kernel {
namespace {

constexpr std::size_t kMR = 4;    // rows per packed A panel
constexpr std::size_t kNC = 256;  // columns per accumulator tile

/// C rows [0, rows) of one panel: c = apack · B with B row-major [k, n].
/// Accumulators live in a stack tile, one float per output element,
/// summed in strictly increasing kk order (mul, then add — the
/// accumulation contract every other kernel must match).
void panel_f32(const float* apack, std::size_t rows, const float* b,
               std::size_t k, std::size_t n, float* c) {
  alignas(64) float acc[kMR][kNC];
  for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
    const std::size_t jb = std::min(kNC, n - j0);
    for (std::size_t r = 0; r < kMR; ++r) {
      for (std::size_t jj = 0; jj < jb; ++jj) acc[r][jj] = 0.0f;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a0 = apack[kk * kMR + 0];
      const float a1 = apack[kk * kMR + 1];
      const float a2 = apack[kk * kMR + 2];
      const float a3 = apack[kk * kMR + 3];
      const float* brow = b + kk * n + j0;
      for (std::size_t jj = 0; jj < jb; ++jj) {
        const float bv = brow[jj];
        acc[0][jj] += a0 * bv;
        acc[1][jj] += a1 * bv;
        acc[2][jj] += a2 * bv;
        acc[3][jj] += a3 * bv;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      float* crow = c + r * n + j0;
      for (std::size_t jj = 0; jj < jb; ++jj) crow[jj] = acc[r][jj];
    }
  }
}

/// Integer twin of panel_f32: int8 operands, exact int32 accumulation.
void panel_s8(const std::int8_t* apack, std::size_t rows,
              const std::int8_t* b, std::size_t k, std::size_t n,
              std::int32_t* c) {
  alignas(64) std::int32_t acc[kMR][kNC];
  for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
    const std::size_t jb = std::min(kNC, n - j0);
    for (std::size_t r = 0; r < kMR; ++r) {
      for (std::size_t jj = 0; jj < jb; ++jj) acc[r][jj] = 0;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t a0 = apack[kk * kMR + 0];
      const std::int32_t a1 = apack[kk * kMR + 1];
      const std::int32_t a2 = apack[kk * kMR + 2];
      const std::int32_t a3 = apack[kk * kMR + 3];
      const std::int8_t* brow = b + kk * n + j0;
      for (std::size_t jj = 0; jj < jb; ++jj) {
        const std::int32_t bv = brow[jj];
        acc[0][jj] += a0 * bv;
        acc[1][jj] += a1 * bv;
        acc[2][jj] += a2 * bv;
        acc[3][jj] += a3 * bv;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      std::int32_t* crow = c + r * n + j0;
      for (std::size_t jj = 0; jj < jb; ++jj) crow[jj] = acc[r][jj];
    }
  }
}

bool always_available() { return true; }

}  // namespace

extern const MicroKernel kScalarKernel;
const MicroKernel kScalarKernel = {
    "scalar", kMR, always_available, panel_f32, panel_s8,
};

}  // namespace satd::kernel
