// NEON microkernel (AArch64): 4-row panels, 8 columns (two Q registers)
// per step. AArch64 guarantees Advanced SIMD, so the runtime check is a
// constant — the kernel is simply absent from non-ARM builds. Same
// accumulation contract as every other kernel: single-rounded vmul +
// vadd per step (no fused vmla), strictly increasing k order, so f32
// results are bit-identical to the scalar reference; s8 widens through
// int16/int32 moves and accumulates exactly.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "tensor/kernel/microkernel.h"

namespace satd::kernel {
namespace {

constexpr std::size_t kMR = 4;

void tail_f32(const float* apack, std::size_t rows, const float* b,
              std::size_t k, std::size_t n, float* c, std::size_t j) {
  for (; j < n; ++j) {
    float acc[kMR] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float bv = b[kk * n + j];
      for (std::size_t r = 0; r < kMR; ++r) acc[r] += apack[kk * kMR + r] * bv;
    }
    for (std::size_t r = 0; r < rows; ++r) c[r * n + j] = acc[r];
  }
}

void panel_f32(const float* apack, std::size_t rows, const float* b,
               std::size_t k, std::size_t n, float* c) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    float32x4_t a0l = vdupq_n_f32(0.0f), a0h = vdupq_n_f32(0.0f);
    float32x4_t a1l = vdupq_n_f32(0.0f), a1h = vdupq_n_f32(0.0f);
    float32x4_t a2l = vdupq_n_f32(0.0f), a2h = vdupq_n_f32(0.0f);
    float32x4_t a3l = vdupq_n_f32(0.0f), a3h = vdupq_n_f32(0.0f);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n + j;
      const float32x4_t bl = vld1q_f32(brow);
      const float32x4_t bh = vld1q_f32(brow + 4);
      const float* ap = apack + kk * kMR;
      float32x4_t av = vdupq_n_f32(ap[0]);
      a0l = vaddq_f32(a0l, vmulq_f32(av, bl));
      a0h = vaddq_f32(a0h, vmulq_f32(av, bh));
      av = vdupq_n_f32(ap[1]);
      a1l = vaddq_f32(a1l, vmulq_f32(av, bl));
      a1h = vaddq_f32(a1h, vmulq_f32(av, bh));
      av = vdupq_n_f32(ap[2]);
      a2l = vaddq_f32(a2l, vmulq_f32(av, bl));
      a2h = vaddq_f32(a2h, vmulq_f32(av, bh));
      av = vdupq_n_f32(ap[3]);
      a3l = vaddq_f32(a3l, vmulq_f32(av, bl));
      a3h = vaddq_f32(a3h, vmulq_f32(av, bh));
    }
    const float32x4_t accl[kMR] = {a0l, a1l, a2l, a3l};
    const float32x4_t acch[kMR] = {a0h, a1h, a2h, a3h};
    for (std::size_t r = 0; r < rows; ++r) {
      vst1q_f32(c + r * n + j, accl[r]);
      vst1q_f32(c + r * n + j + 4, acch[r]);
    }
  }
  tail_f32(apack, rows, b, k, n, c, j);
}

void tail_s8(const std::int8_t* apack, std::size_t rows, const std::int8_t* b,
             std::size_t k, std::size_t n, std::int32_t* c, std::size_t j) {
  for (; j < n; ++j) {
    std::int32_t acc[kMR] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t bv = b[kk * n + j];
      for (std::size_t r = 0; r < kMR; ++r) {
        acc[r] += static_cast<std::int32_t>(apack[kk * kMR + r]) * bv;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) c[r * n + j] = acc[r];
  }
}

void panel_s8(const std::int8_t* apack, std::size_t rows,
              const std::int8_t* b, std::size_t k, std::size_t n,
              std::int32_t* c) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    int32x4_t a0l = vdupq_n_s32(0), a0h = vdupq_n_s32(0);
    int32x4_t a1l = vdupq_n_s32(0), a1h = vdupq_n_s32(0);
    int32x4_t a2l = vdupq_n_s32(0), a2h = vdupq_n_s32(0);
    int32x4_t a3l = vdupq_n_s32(0), a3h = vdupq_n_s32(0);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const int16x8_t bw = vmovl_s8(vld1_s8(b + kk * n + j));
      const int32x4_t bl = vmovl_s16(vget_low_s16(bw));
      const int32x4_t bh = vmovl_s16(vget_high_s16(bw));
      const std::int8_t* ap = apack + kk * kMR;
      int32x4_t av = vdupq_n_s32(ap[0]);
      a0l = vaddq_s32(a0l, vmulq_s32(av, bl));
      a0h = vaddq_s32(a0h, vmulq_s32(av, bh));
      av = vdupq_n_s32(ap[1]);
      a1l = vaddq_s32(a1l, vmulq_s32(av, bl));
      a1h = vaddq_s32(a1h, vmulq_s32(av, bh));
      av = vdupq_n_s32(ap[2]);
      a2l = vaddq_s32(a2l, vmulq_s32(av, bl));
      a2h = vaddq_s32(a2h, vmulq_s32(av, bh));
      av = vdupq_n_s32(ap[3]);
      a3l = vaddq_s32(a3l, vmulq_s32(av, bl));
      a3h = vaddq_s32(a3h, vmulq_s32(av, bh));
    }
    const int32x4_t accl[kMR] = {a0l, a1l, a2l, a3l};
    const int32x4_t acch[kMR] = {a0h, a1h, a2h, a3h};
    for (std::size_t r = 0; r < rows; ++r) {
      vst1q_s32(c + r * n + j, accl[r]);
      vst1q_s32(c + r * n + j + 4, acch[r]);
    }
  }
  tail_s8(apack, rows, b, k, n, c, j);
}

bool neon_available() { return true; }

}  // namespace

extern const MicroKernel kNeonKernel;
const MicroKernel kNeonKernel = {
    "neon", kMR, neon_available, panel_f32, panel_s8,
};

}  // namespace satd::kernel

#endif  // __aarch64__
