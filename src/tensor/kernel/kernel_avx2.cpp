// AVX2 microkernel: 8-row panels, 8 columns (one YMM lane) per step.
//
// Deliberately uses a DIFFERENT packed-panel width than the scalar/SSE
// kernels (mr = 8 vs 4) — the packing scratch is sized and checked per
// kernel through the dispatch layer, so the wider layout can never be
// misread by a 4-row kernel. The f32 body is single-rounded vmulps +
// vaddps per step (no FMA), each output element advancing in strictly
// increasing k order — bit-identical to the scalar reference. The s8
// body widens with vpmovsxbd and accumulates exactly in int32.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>

#include "tensor/kernel/microkernel.h"

namespace satd::kernel {
namespace {

constexpr std::size_t kMR = 8;

// k-direction block: caps the apack slice a j-sweep re-traverses at
// kKC * kMR floats (8 KiB), so deep GEMMs (k = 784 in the mlp first
// layers) keep the packed panel L1-resident instead of thrashing it once
// per 8-column chunk. Accumulators spill to C between k blocks; the
// memory round-trip does not re-round, so every output element still
// sees the same single-rounded mul/add sequence in strictly increasing k
// order and the result stays bit-identical to the scalar reference.
constexpr std::size_t kKC = 256;

void tail_f32(const float* apack, std::size_t rows, const float* b,
              std::size_t k, std::size_t n, float* c, std::size_t j) {
  for (; j < n; ++j) {
    float acc[kMR] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float bv = b[kk * n + j];
      for (std::size_t r = 0; r < kMR; ++r) acc[r] += apack[kk * kMR + r] * bv;
    }
    for (std::size_t r = 0; r < rows; ++r) c[r * n + j] = acc[r];
  }
}

__attribute__((target("avx2"))) void panel_f32(const float* apack,
                                               std::size_t rows,
                                               const float* b, std::size_t k,
                                               std::size_t n, float* c) {
  std::size_t j = 0;
  if (rows == kMR) {
    for (; j + 8 <= n; j += 8) {
      for (std::size_t k0 = 0; k0 < k || k0 == 0; k0 += kKC) {
        const std::size_t k1 = std::min(k0 + kKC, k);
        __m256 acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7;
        if (k0 == 0) {
          acc0 = acc1 = acc2 = acc3 = _mm256_setzero_ps();
          acc4 = acc5 = acc6 = acc7 = _mm256_setzero_ps();
        } else {
          acc0 = _mm256_loadu_ps(c + 0 * n + j);
          acc1 = _mm256_loadu_ps(c + 1 * n + j);
          acc2 = _mm256_loadu_ps(c + 2 * n + j);
          acc3 = _mm256_loadu_ps(c + 3 * n + j);
          acc4 = _mm256_loadu_ps(c + 4 * n + j);
          acc5 = _mm256_loadu_ps(c + 5 * n + j);
          acc6 = _mm256_loadu_ps(c + 6 * n + j);
          acc7 = _mm256_loadu_ps(c + 7 * n + j);
        }
        for (std::size_t kk = k0; kk < k1; ++kk) {
          // The b walk strides n floats per step (a cache line per
          // iteration for the model shapes), which outruns the hardware
          // prefetcher; fetch a few rows ahead to hide the L2 latency.
          if (kk + 4 < k1) {
            _mm_prefetch(reinterpret_cast<const char*>(b + (kk + 4) * n + j),
                         _MM_HINT_T0);
          }
          const __m256 bv = _mm256_loadu_ps(b + kk * n + j);
          const float* ap = apack + kk * kMR;
          acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_broadcast_ss(ap + 0), bv));
          acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_broadcast_ss(ap + 1), bv));
          acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_broadcast_ss(ap + 2), bv));
          acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_broadcast_ss(ap + 3), bv));
          acc4 = _mm256_add_ps(acc4, _mm256_mul_ps(_mm256_broadcast_ss(ap + 4), bv));
          acc5 = _mm256_add_ps(acc5, _mm256_mul_ps(_mm256_broadcast_ss(ap + 5), bv));
          acc6 = _mm256_add_ps(acc6, _mm256_mul_ps(_mm256_broadcast_ss(ap + 6), bv));
          acc7 = _mm256_add_ps(acc7, _mm256_mul_ps(_mm256_broadcast_ss(ap + 7), bv));
        }
        _mm256_storeu_ps(c + 0 * n + j, acc0);
        _mm256_storeu_ps(c + 1 * n + j, acc1);
        _mm256_storeu_ps(c + 2 * n + j, acc2);
        _mm256_storeu_ps(c + 3 * n + j, acc3);
        _mm256_storeu_ps(c + 4 * n + j, acc4);
        _mm256_storeu_ps(c + 5 * n + j, acc5);
        _mm256_storeu_ps(c + 6 * n + j, acc6);
        _mm256_storeu_ps(c + 7 * n + j, acc7);
      }
    }
  } else {
    // Tail panel (rows < 8): C has no scratch rows to spill into, so run
    // the single-pass form. k-blocking is a locality choice, not a
    // numerics one, so both forms produce identical bits.
    for (; j + 8 <= n; j += 8) {
      __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
      __m256 acc4 = _mm256_setzero_ps(), acc5 = _mm256_setzero_ps();
      __m256 acc6 = _mm256_setzero_ps(), acc7 = _mm256_setzero_ps();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256 bv = _mm256_loadu_ps(b + kk * n + j);
        const float* ap = apack + kk * kMR;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_broadcast_ss(ap + 0), bv));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_broadcast_ss(ap + 1), bv));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_broadcast_ss(ap + 2), bv));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_broadcast_ss(ap + 3), bv));
        acc4 = _mm256_add_ps(acc4, _mm256_mul_ps(_mm256_broadcast_ss(ap + 4), bv));
        acc5 = _mm256_add_ps(acc5, _mm256_mul_ps(_mm256_broadcast_ss(ap + 5), bv));
        acc6 = _mm256_add_ps(acc6, _mm256_mul_ps(_mm256_broadcast_ss(ap + 6), bv));
        acc7 = _mm256_add_ps(acc7, _mm256_mul_ps(_mm256_broadcast_ss(ap + 7), bv));
      }
      const __m256 acc[kMR] = {acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7};
      for (std::size_t r = 0; r < rows; ++r) {
        _mm256_storeu_ps(c + r * n + j, acc[r]);
      }
    }
  }
  tail_f32(apack, rows, b, k, n, c, j);
}

void tail_s8(const std::int8_t* apack, std::size_t rows, const std::int8_t* b,
             std::size_t k, std::size_t n, std::int32_t* c, std::size_t j) {
  for (; j < n; ++j) {
    std::int32_t acc[kMR] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t bv = b[kk * n + j];
      for (std::size_t r = 0; r < kMR; ++r) {
        acc[r] += static_cast<std::int32_t>(apack[kk * kMR + r]) * bv;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) c[r * n + j] = acc[r];
  }
}

__attribute__((target("avx2"))) void panel_s8(const std::int8_t* apack,
                                              std::size_t rows,
                                              const std::int8_t* b,
                                              std::size_t k, std::size_t n,
                                              std::int32_t* c) {
  std::size_t j = 0;
  if (rows == kMR) {
    for (; j + 8 <= n; j += 8) {
      for (std::size_t k0 = 0; k0 < k || k0 == 0; k0 += kKC) {
        const std::size_t k1 = std::min(k0 + kKC, k);
        __m256i acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7;
        if (k0 == 0) {
          acc0 = acc1 = acc2 = acc3 = _mm256_setzero_si256();
          acc4 = acc5 = acc6 = acc7 = _mm256_setzero_si256();
        } else {
          acc0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 0 * n + j));
          acc1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 1 * n + j));
          acc2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 2 * n + j));
          acc3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 3 * n + j));
          acc4 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 4 * n + j));
          acc5 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 5 * n + j));
          acc6 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 6 * n + j));
          acc7 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + 7 * n + j));
        }
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const __m256i bv = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + kk * n + j)));
          const std::int8_t* ap = apack + kk * kMR;
          acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(_mm256_set1_epi32(ap[0]), bv));
          acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(_mm256_set1_epi32(ap[1]), bv));
          acc2 = _mm256_add_epi32(acc2, _mm256_mullo_epi32(_mm256_set1_epi32(ap[2]), bv));
          acc3 = _mm256_add_epi32(acc3, _mm256_mullo_epi32(_mm256_set1_epi32(ap[3]), bv));
          acc4 = _mm256_add_epi32(acc4, _mm256_mullo_epi32(_mm256_set1_epi32(ap[4]), bv));
          acc5 = _mm256_add_epi32(acc5, _mm256_mullo_epi32(_mm256_set1_epi32(ap[5]), bv));
          acc6 = _mm256_add_epi32(acc6, _mm256_mullo_epi32(_mm256_set1_epi32(ap[6]), bv));
          acc7 = _mm256_add_epi32(acc7, _mm256_mullo_epi32(_mm256_set1_epi32(ap[7]), bv));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * n + j), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * n + j), acc1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * n + j), acc2);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * n + j), acc3);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 4 * n + j), acc4);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 5 * n + j), acc5);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 6 * n + j), acc6);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 7 * n + j), acc7);
      }
    }
  } else {
    for (; j + 8 <= n; j += 8) {
      __m256i acc0 = _mm256_setzero_si256(), acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256(), acc3 = _mm256_setzero_si256();
      __m256i acc4 = _mm256_setzero_si256(), acc5 = _mm256_setzero_si256();
      __m256i acc6 = _mm256_setzero_si256(), acc7 = _mm256_setzero_si256();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256i bv = _mm256_cvtepi8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + kk * n + j)));
        const std::int8_t* ap = apack + kk * kMR;
        acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(_mm256_set1_epi32(ap[0]), bv));
        acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(_mm256_set1_epi32(ap[1]), bv));
        acc2 = _mm256_add_epi32(acc2, _mm256_mullo_epi32(_mm256_set1_epi32(ap[2]), bv));
        acc3 = _mm256_add_epi32(acc3, _mm256_mullo_epi32(_mm256_set1_epi32(ap[3]), bv));
        acc4 = _mm256_add_epi32(acc4, _mm256_mullo_epi32(_mm256_set1_epi32(ap[4]), bv));
        acc5 = _mm256_add_epi32(acc5, _mm256_mullo_epi32(_mm256_set1_epi32(ap[5]), bv));
        acc6 = _mm256_add_epi32(acc6, _mm256_mullo_epi32(_mm256_set1_epi32(ap[6]), bv));
        acc7 = _mm256_add_epi32(acc7, _mm256_mullo_epi32(_mm256_set1_epi32(ap[7]), bv));
      }
      const __m256i acc[kMR] = {acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7};
      for (std::size_t r = 0; r < rows; ++r) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + r * n + j), acc[r]);
      }
    }
  }
  tail_s8(apack, rows, b, k, n, c, j);
}

bool avx2_available() { return __builtin_cpu_supports("avx2") != 0; }

}  // namespace

extern const MicroKernel kAvx2Kernel;
const MicroKernel kAvx2Kernel = {
    "avx2", kMR, avx2_available, panel_f32, panel_s8,
};

}  // namespace satd::kernel

#endif  // x86
