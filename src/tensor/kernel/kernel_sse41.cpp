// SSE4.1 microkernel: 4-row panels, 8 columns (two XMM lanes) per step.
//
// Compiled with a per-function target attribute so the binary stays
// runnable on any x86-64 (dispatch checks CPUID before selecting it).
// The f32 path uses separate single-rounded mulps/addps — NOT fused —
// and advances each output element's accumulator in the same strictly
// increasing k order as the scalar kernel, so results are bit-identical
// to the reference. The s8 path widens int8 to int32 lanes
// (pmovsxbd) and accumulates exactly.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "tensor/kernel/microkernel.h"

namespace satd::kernel {
namespace {

constexpr std::size_t kMR = 4;

/// Scalar column tail, accumulation order identical to the vector body.
void tail_f32(const float* apack, std::size_t rows, const float* b,
              std::size_t k, std::size_t n, float* c, std::size_t j) {
  for (; j < n; ++j) {
    float acc[kMR] = {0.0f, 0.0f, 0.0f, 0.0f};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float bv = b[kk * n + j];
      for (std::size_t r = 0; r < kMR; ++r) acc[r] += apack[kk * kMR + r] * bv;
    }
    for (std::size_t r = 0; r < rows; ++r) c[r * n + j] = acc[r];
  }
}

__attribute__((target("sse4.1"))) void panel_f32(const float* apack,
                                                 std::size_t rows,
                                                 const float* b, std::size_t k,
                                                 std::size_t n, float* c) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m128 a0l = _mm_setzero_ps(), a0h = _mm_setzero_ps();
    __m128 a1l = _mm_setzero_ps(), a1h = _mm_setzero_ps();
    __m128 a2l = _mm_setzero_ps(), a2h = _mm_setzero_ps();
    __m128 a3l = _mm_setzero_ps(), a3h = _mm_setzero_ps();
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n + j;
      const __m128 bl = _mm_loadu_ps(brow);
      const __m128 bh = _mm_loadu_ps(brow + 4);
      const float* ap = apack + kk * kMR;
      __m128 av = _mm_set1_ps(ap[0]);
      a0l = _mm_add_ps(a0l, _mm_mul_ps(av, bl));
      a0h = _mm_add_ps(a0h, _mm_mul_ps(av, bh));
      av = _mm_set1_ps(ap[1]);
      a1l = _mm_add_ps(a1l, _mm_mul_ps(av, bl));
      a1h = _mm_add_ps(a1h, _mm_mul_ps(av, bh));
      av = _mm_set1_ps(ap[2]);
      a2l = _mm_add_ps(a2l, _mm_mul_ps(av, bl));
      a2h = _mm_add_ps(a2h, _mm_mul_ps(av, bh));
      av = _mm_set1_ps(ap[3]);
      a3l = _mm_add_ps(a3l, _mm_mul_ps(av, bl));
      a3h = _mm_add_ps(a3h, _mm_mul_ps(av, bh));
    }
    const __m128 accl[kMR] = {a0l, a1l, a2l, a3l};
    const __m128 acch[kMR] = {a0h, a1h, a2h, a3h};
    for (std::size_t r = 0; r < rows; ++r) {
      _mm_storeu_ps(c + r * n + j, accl[r]);
      _mm_storeu_ps(c + r * n + j + 4, acch[r]);
    }
  }
  tail_f32(apack, rows, b, k, n, c, j);
}

void tail_s8(const std::int8_t* apack, std::size_t rows, const std::int8_t* b,
             std::size_t k, std::size_t n, std::int32_t* c, std::size_t j) {
  for (; j < n; ++j) {
    std::int32_t acc[kMR] = {0, 0, 0, 0};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t bv = b[kk * n + j];
      for (std::size_t r = 0; r < kMR; ++r) {
        acc[r] += static_cast<std::int32_t>(apack[kk * kMR + r]) * bv;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) c[r * n + j] = acc[r];
  }
}

__attribute__((target("sse4.1"))) void panel_s8(const std::int8_t* apack,
                                                std::size_t rows,
                                                const std::int8_t* b,
                                                std::size_t k, std::size_t n,
                                                std::int32_t* c) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m128i a0l = _mm_setzero_si128(), a0h = _mm_setzero_si128();
    __m128i a1l = _mm_setzero_si128(), a1h = _mm_setzero_si128();
    __m128i a2l = _mm_setzero_si128(), a2h = _mm_setzero_si128();
    __m128i a3l = _mm_setzero_si128(), a3h = _mm_setzero_si128();
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int8_t* brow = b + kk * n + j;
      std::int64_t raw;  // 8 packed int8 column values
      std::memcpy(&raw, brow, sizeof(raw));
      const __m128i b8 = _mm_cvtsi64_si128(raw);
      const __m128i bl = _mm_cvtepi8_epi32(b8);
      const __m128i bh = _mm_cvtepi8_epi32(_mm_srli_si128(b8, 4));
      const std::int8_t* ap = apack + kk * kMR;
      __m128i av = _mm_set1_epi32(ap[0]);
      a0l = _mm_add_epi32(a0l, _mm_mullo_epi32(av, bl));
      a0h = _mm_add_epi32(a0h, _mm_mullo_epi32(av, bh));
      av = _mm_set1_epi32(ap[1]);
      a1l = _mm_add_epi32(a1l, _mm_mullo_epi32(av, bl));
      a1h = _mm_add_epi32(a1h, _mm_mullo_epi32(av, bh));
      av = _mm_set1_epi32(ap[2]);
      a2l = _mm_add_epi32(a2l, _mm_mullo_epi32(av, bl));
      a2h = _mm_add_epi32(a2h, _mm_mullo_epi32(av, bh));
      av = _mm_set1_epi32(ap[3]);
      a3l = _mm_add_epi32(a3l, _mm_mullo_epi32(av, bl));
      a3h = _mm_add_epi32(a3h, _mm_mullo_epi32(av, bh));
    }
    const __m128i accl[kMR] = {a0l, a1l, a2l, a3l};
    const __m128i acch[kMR] = {a0h, a1h, a2h, a3h};
    for (std::size_t r = 0; r < rows; ++r) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + r * n + j), accl[r]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + r * n + j + 4), acch[r]);
    }
  }
  tail_s8(apack, rows, b, k, n, c, j);
}

bool sse41_available() {
  return __builtin_cpu_supports("sse4.1") != 0;
}

}  // namespace

extern const MicroKernel kSse41Kernel;
const MicroKernel kSse41Kernel = {
    "sse41", kMR, sse41_available, panel_f32, panel_s8,
};

}  // namespace satd::kernel

#endif  // x86
