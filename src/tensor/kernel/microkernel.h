// Runtime-dispatched GEMM microkernel layer.
//
// The blocked GEMM in tensor/ops.cpp owns the *macro* structure — cache
// blocking, A-panel packing, the parallel decomposition over row panels —
// and delegates the register-tile inner loop to a MicroKernel. Each
// kernel is a plain table of function pointers (no virtual dispatch on
// the hot path beyond one indirect call per panel) computing one packed
// A-panel times a row-major B block:
//
//   * f32: C[rows, n] = Apack · B with one float accumulator per output
//     element, summed in strictly increasing k order via a single-rounded
//     multiply then a single-rounded add per step. Every kernel follows
//     this exact per-element operation sequence, so all f32 kernels are
//     BIT-IDENTICAL to the scalar reference — vectorization only changes
//     how many independent output columns advance per instruction, never
//     the arithmetic applied to any one of them. (No FMA: fusing would
//     drop the intermediate rounding and break cross-kernel identity.)
//   * s8: the int8 variant accumulating exactly in int32. Integer
//     accumulation is associative, so s8 results are bit-identical across
//     kernels and thread counts by construction. Callers must keep
//     k <= kMaxS8Depth so a dot product cannot overflow int32.
//
// Dispatch: the active kernel is resolved once, in priority order
//   1. SATD_KERNEL environment variable (validated; unknown or
//      unavailable names log a warning and fall back to auto),
//   2. auto-detection — the widest kernel the CPU supports at runtime
//      (CPUID via __builtin_cpu_supports on x86), scalar otherwise.
// set_active() lets CLI flags override the environment; the scalar
// reference kernel is always compiled in and always available.
//
// Panel geometry: kernels may declare different packed-panel row counts
// (mr). The per-thread packing scratch is owned by this layer and handed
// out through acquire_pack_*, which records the requested geometry and
// (in debug builds) asserts it matches the active kernel — so two
// kernels with different panel widths can never silently alias one
// buffer layout as another.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace satd::kernel {

/// Hard depth bound for the s8 path: k * 127 * 127 must fit int32.
inline constexpr std::size_t kMaxS8Depth =
    static_cast<std::size_t>(2147483647) / (127 * 127);

/// One register-tile inner kernel (see file comment for the contract).
/// Apack holds `mr` interleaved rows (apack[kk*mr + r], tail rows
/// zero-filled); `b` is row-major [k, n]; `c` is row-major with row
/// stride n and only the first `rows` rows are written.
struct MicroKernel {
  const char* name;   ///< stable identifier ("scalar", "avx2", ...)
  std::size_t mr;     ///< rows per packed A panel
  bool (*runtime_available)();  ///< CPU supports this kernel right now
  void (*gemm_panel_f32)(const float* apack, std::size_t rows,
                         const float* b, std::size_t k, std::size_t n,
                         float* c);
  void (*gemm_panel_s8)(const std::int8_t* apack, std::size_t rows,
                        const std::int8_t* b, std::size_t k, std::size_t n,
                        std::int32_t* c);
};

/// Every kernel compiled into this binary (scalar first; SIMD variants
/// only on the architectures that can compile them).
const std::vector<const MicroKernel*>& compiled_kernels();

/// The compiled kernels whose runtime_available() check passes on this
/// machine — the legal values for SATD_KERNEL / --kernel here.
std::vector<const MicroKernel*> available_kernels();

/// Compiled kernel by name, or nullptr.
const MicroKernel* find_kernel(const std::string& name);

/// The kernel all GEMM entry points currently dispatch to. First call
/// resolves SATD_KERNEL / auto-detection (see file comment).
const MicroKernel& active_kernel();

/// Forces the active kernel by name. Unknown or unavailable names log a
/// warning, select auto-detection instead and return false (same
/// harden-and-fall-back shape as ThreadPool::parse_thread_env). An empty
/// name explicitly re-runs the SATD_KERNEL / auto resolution.
bool set_active_kernel(const std::string& name);

/// Name that auto-detection would pick on this machine.
std::string auto_kernel_name();

// ---- blocked GEMM drivers (macro loop + packing + threading) ----

/// C[m,n] = A · B where A's logical element (i, kk) lives at
/// a[i*row_stride + kk*col_stride] (strided packing absorbs transposes)
/// and B is row-major [k, n]. Parallelized over mr-aligned row panels
/// only, so results are bit-identical for any thread count.
void gemm_f32(const float* a, std::size_t row_stride, std::size_t col_stride,
              const float* b, std::size_t m, std::size_t n, std::size_t k,
              float* c);

/// C[m,n] = A · B for row-major int8 A [m,k] and B [k,n], exact int32
/// accumulation. Requires k <= kMaxS8Depth.
void gemm_s8(const std::int8_t* a, const std::int8_t* b, std::size_t m,
             std::size_t n, std::size_t k, std::int32_t* c);

// ---- per-thread packing scratch (geometry-checked) ----

/// Hands out the calling thread's f32 packing buffer, sized for an
/// mr-row by k-deep panel. The geometry is recorded and asserted against
/// the active kernel in debug builds.
float* acquire_pack_f32(std::size_t mr, std::size_t k);

/// s8 variant of acquire_pack_f32.
std::int8_t* acquire_pack_s8(std::size_t mr, std::size_t k);

}  // namespace satd::kernel
