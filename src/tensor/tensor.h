// Dense float32 tensor with contiguous row-major storage.
//
// This is the numerical substrate of the library: batches of images are
// rank-4 tensors [N, C, H, W], layer activations are rank-2 [N, D], and
// parameters are rank-1/2. Storage is always contiguous so the math
// kernels in ops.h can operate on raw spans; there are no strided views —
// the experiments never need them and their absence removes a whole class
// of aliasing bugs.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace satd {

/// Tensor shape: a short list of dimensions (rank 0..4 used in practice).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  std::size_t rank() const { return dims_.size(); }
  std::size_t operator[](std::size_t i) const;
  /// Total number of elements (1 for rank 0).
  std::size_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  const std::vector<std::size_t>& dims() const { return dims_; }

  /// Renders e.g. "[32, 1, 28, 28]".
  std::string to_string() const;

 private:
  std::vector<std::size_t> dims_;
};

/// Contiguous row-major float tensor.
class Tensor {
 public:
  /// Empty (rank-0, zero elements is represented as shape {0}).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents (size must match).
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience: rank-1 tensor from values.
  static Tensor from_vector(std::vector<float> values);

  /// Tensor filled with a constant.
  static Tensor full(Shape shape, float value);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Raw storage access.
  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Flat element access with bounds check.
  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// Multi-dimensional access (rank-checked).
  float& at(std::size_t i0);
  float& at(std::size_t i0, std::size_t i1);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3);
  float at(std::size_t i0) const;
  float at(std::size_t i0, std::size_t i1) const;
  float at(std::size_t i0, std::size_t i1, std::size_t i2) const;
  float at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const;

  /// Reinterprets the storage with a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  /// Resizes the tensor to `shape` in place, reusing the existing
  /// allocation whenever the new element count fits its capacity (the
  /// foundation of every `_into` buffer-reuse path). No-op when the shape
  /// already matches — contents are then preserved; after a shape change
  /// the contents are unspecified.
  void ensure_shape(const Shape& shape);

  /// Copies row `i` of a rank>=2 tensor (all trailing dims) into a new
  /// tensor of shape equal to the trailing dims.
  Tensor slice_row(std::size_t i) const;

  /// Overwrites row `i` with `row` (shape must match trailing dims).
  void set_row(std::size_t i, const Tensor& row);

  /// Sets every element to `value`.
  void fill(float value);

  /// True if shapes and all elements are exactly equal.
  bool equals(const Tensor& other) const;

  /// True if shapes match and elements differ by at most `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

  /// Renders shape + a preview of the data (for debugging/tests).
  std::string to_string(std::size_t max_elems = 16) const;

 private:
  std::size_t row_stride() const;  // product of trailing dims

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace satd
