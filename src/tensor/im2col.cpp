#include "tensor/im2col.h"

#include "common/contract.h"
#include "common/thread_pool.h"

namespace satd {

namespace {
void check_image_geometry(const Shape& image, const ConvGeometry& g) {
  SATD_EXPECT(image.rank() == 3, "im2col expects a [C,H,W] image");
  SATD_EXPECT(image[0] == g.in_channels && image[1] == g.in_h &&
                  image[2] == g.in_w,
              "image shape does not match geometry");
  SATD_EXPECT(g.kernel > 0 && g.kernel <= g.in_h + 2 * g.padding &&
                  g.kernel <= g.in_w + 2 * g.padding,
              "kernel larger than padded input");
}

/// Unfolds one [C, H, W] image at `src` into `dst` (out_h*out_w rows of
/// patch_size taps).
void unfold_image(const float* src, const ConvGeometry& g, float* dst) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t patch = g.patch_size();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(g.padding);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      float* row = dst + (oy * ow + ox) * patch;
      std::size_t t = 0;
      for (std::size_t c = 0; c < g.in_channels; ++c) {
        const float* plane = src + c * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy + ky) - pad;
          for (std::size_t kx = 0; kx < g.kernel; ++kx, ++t) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox + kx) - pad;
            const bool inside = iy >= 0 && ix >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                                ix < static_cast<std::ptrdiff_t>(g.in_w);
            row[t] = inside ? plane[static_cast<std::size_t>(iy) * g.in_w +
                                    static_cast<std::size_t>(ix)]
                            : 0.0f;
          }
        }
      }
    }
  }
}

/// Folds one image's column gradients at `src` into the [C, H, W] image
/// gradient at `dst` (accumulating; caller zeroes).
void fold_image(const float* src, const ConvGeometry& g, float* dst) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t patch = g.patch_size();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(g.padding);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* row = src + (oy * ow + ox) * patch;
      std::size_t t = 0;
      for (std::size_t c = 0; c < g.in_channels; ++c) {
        float* plane = dst + c * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy + ky) - pad;
          for (std::size_t kx = 0; kx < g.kernel; ++kx, ++t) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox + kx) - pad;
            const bool inside = iy >= 0 && ix >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                                ix < static_cast<std::ptrdiff_t>(g.in_w);
            if (inside) {
              plane[static_cast<std::size_t>(iy) * g.in_w +
                    static_cast<std::size_t>(ix)] += row[t];
            }
          }
        }
      }
    }
  }
}
}  // namespace

void im2col(const Tensor& image, const ConvGeometry& g, Tensor& out) {
  check_image_geometry(image.shape(), g);
  out.ensure_shape(Shape{g.out_h() * g.out_w(), g.patch_size()});
  unfold_image(image.raw(), g, out.raw());
}

void col2im(const Tensor& columns, const ConvGeometry& g, Tensor& out) {
  SATD_EXPECT((columns.shape() == Shape{g.out_h() * g.out_w(),
                                        g.patch_size()}),
              "columns shape does not match geometry");
  out.ensure_shape(Shape{g.in_channels, g.in_h, g.in_w});
  out.fill(0.0f);
  fold_image(columns.raw(), g, out.raw());
}

void im2col_batch(const Tensor& batch, const ConvGeometry& g, Tensor& out) {
  SATD_EXPECT(batch.shape().rank() == 4,
              "im2col_batch expects [N, C, H, W]");
  const std::size_t n = batch.shape()[0];
  check_image_geometry(Shape{batch.shape()[1], batch.shape()[2],
                             batch.shape()[3]},
                       g);
  const std::size_t rows = g.out_h() * g.out_w();
  const std::size_t patch = g.patch_size();
  out.ensure_shape(Shape{n * rows, patch});
  const std::size_t image_elems = g.in_channels * g.in_h * g.in_w;
  const float* src = batch.raw();
  float* dst = out.raw();
  // One image per unit of work: images write disjoint column ranges, so
  // the unfold order (and result) is thread-count independent.
  parallel_for(n, [&g, src, dst, image_elems, rows,
                   patch](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      unfold_image(src + i * image_elems, g, dst + i * rows * patch);
    }
  });
}

void col2im_batch(const Tensor& columns, std::size_t batch_size,
                  const ConvGeometry& g, Tensor& out) {
  const std::size_t rows = g.out_h() * g.out_w();
  const std::size_t patch = g.patch_size();
  SATD_EXPECT((columns.shape() == Shape{batch_size * rows, patch}),
              "columns shape does not match geometry");
  out.ensure_shape(Shape{batch_size, g.in_channels, g.in_h, g.in_w});
  out.fill(0.0f);
  const std::size_t image_elems = g.in_channels * g.in_h * g.in_w;
  const float* src = columns.raw();
  float* dst = out.raw();
  // Each image's fold scatters only into its own [C,H,W] block, so the
  // per-image accumulation order is unchanged by the parallel split.
  parallel_for(batch_size, [&g, src, dst, image_elems, rows,
                            patch](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      fold_image(src + i * rows * patch, g, dst + i * image_elems);
    }
  });
}

}  // namespace satd
