#include "tensor/im2col.h"

#include "common/contract.h"

namespace satd {

namespace {
void check_geometry(const Tensor& image, const ConvGeometry& g) {
  SATD_EXPECT(image.shape().rank() == 3, "im2col expects a [C,H,W] image");
  SATD_EXPECT(image.shape()[0] == g.in_channels &&
                  image.shape()[1] == g.in_h && image.shape()[2] == g.in_w,
              "image shape does not match geometry");
  SATD_EXPECT(g.kernel > 0 && g.kernel <= g.in_h + 2 * g.padding &&
                  g.kernel <= g.in_w + 2 * g.padding,
              "kernel larger than padded input");
}
}  // namespace

void im2col(const Tensor& image, const ConvGeometry& g, Tensor& out) {
  check_geometry(image, g);
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t patch = g.patch_size();
  const Shape want{oh * ow, patch};
  if (out.shape() != want) out = Tensor(want);
  const float* src = image.raw();
  float* dst = out.raw();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(g.padding);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      float* row = dst + (oy * ow + ox) * patch;
      std::size_t t = 0;
      for (std::size_t c = 0; c < g.in_channels; ++c) {
        const float* plane = src + c * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy + ky) - pad;
          for (std::size_t kx = 0; kx < g.kernel; ++kx, ++t) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox + kx) - pad;
            const bool inside = iy >= 0 && ix >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                                ix < static_cast<std::ptrdiff_t>(g.in_w);
            row[t] = inside ? plane[static_cast<std::size_t>(iy) * g.in_w +
                                    static_cast<std::size_t>(ix)]
                            : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& columns, const ConvGeometry& g, Tensor& out) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t patch = g.patch_size();
  SATD_EXPECT((columns.shape() == Shape{oh * ow, patch}),
              "columns shape does not match geometry");
  const Shape want{g.in_channels, g.in_h, g.in_w};
  if (out.shape() != want) out = Tensor(want);
  out.fill(0.0f);
  const float* src = columns.raw();
  float* dst = out.raw();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(g.padding);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* row = src + (oy * ow + ox) * patch;
      std::size_t t = 0;
      for (std::size_t c = 0; c < g.in_channels; ++c) {
        float* plane = dst + c * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy + ky) - pad;
          for (std::size_t kx = 0; kx < g.kernel; ++kx, ++t) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox + kx) - pad;
            const bool inside = iy >= 0 && ix >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                                ix < static_cast<std::ptrdiff_t>(g.in_w);
            if (inside) {
              plane[static_cast<std::size_t>(iy) * g.in_w +
                    static_cast<std::size_t>(ix)] += row[t];
            }
          }
        }
      }
    }
  }
}

}  // namespace satd
