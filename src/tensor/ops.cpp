#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"

namespace satd::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  SATD_EXPECT(a.shape() == b.shape(),
              std::string(op) + ": shape mismatch " + a.shape().to_string() +
                  " vs " + b.shape().to_string());
}

void prepare_out(const Tensor& like, Tensor& out) {
  out.ensure_shape(like.shape());
}
}  // namespace

// ---- elementwise ----

void copy(const Tensor& a, Tensor& out) {
  if (&a == &out) return;
  prepare_out(a, out);
  std::copy(a.raw(), a.raw() + a.numel(), out.raw());
}

void add(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "add");
  prepare_out(a, out);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) po[i] = pa[i] + pb[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out;
  add(a, b, out);
  return out;
}

void sub(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "sub");
  prepare_out(a, out);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) po[i] = pa[i] - pb[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out;
  sub(a, b, out);
  return out;
}

void mul(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "mul");
  prepare_out(a, out);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) po[i] = pa[i] * pb[i];
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out;
  mul(a, b, out);
  return out;
}

void scale(const Tensor& a, float s, Tensor& out) {
  prepare_out(a, out);
  const float* pa = a.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) po[i] = pa[i] * s;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out;
  scale(a, s, out);
  return out;
}

void axpy(float alpha, const Tensor& b, Tensor& a) {
  check_same_shape(a, b, "axpy");
  float* pa = a.raw();
  const float* pb = b.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) pa[i] += alpha * pb[i];
}

void sign(const Tensor& a, Tensor& out) {
  prepare_out(a, out);
  const float* pa = a.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) {
    po[i] = (pa[i] > 0.0f) ? 1.0f : (pa[i] < 0.0f ? -1.0f : 0.0f);
  }
}

Tensor sign(const Tensor& a) {
  Tensor out;
  sign(a, out);
  return out;
}

void clamp(const Tensor& a, float lo, float hi, Tensor& out) {
  SATD_EXPECT(lo <= hi, "clamp bounds must be ordered");
  prepare_out(a, out);
  const float* pa = a.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) {
    po[i] = std::min(hi, std::max(lo, pa[i]));
  }
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out;
  clamp(a, lo, hi, out);
  return out;
}

void project_linf(const Tensor& center, float eps, float lo, float hi,
                  Tensor& x) {
  check_same_shape(center, x, "project_linf");
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  const float* pc = center.raw();
  float* px = x.raw();
  for (std::size_t i = 0, n = x.numel(); i < n; ++i) {
    const float ball_lo = pc[i] - eps;
    const float ball_hi = pc[i] + eps;
    float v = std::min(ball_hi, std::max(ball_lo, px[i]));
    px[i] = std::min(hi, std::max(lo, v));
  }
}

// ---- reductions ----

float sum(const Tensor& a) {
  // Pairwise-ish accumulation in double to keep the reduction stable.
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  return a.numel() == 0 ? 0.0f : sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.data()) m = std::max(m, std::fabs(v));
  return m;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float m = 0.0f;
  const float* pa = a.raw();
  const float* pb = b.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

float l1_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += std::fabs(v);
  return static_cast<float>(acc);
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::size_t argmax(const Tensor& a) {
  SATD_EXPECT(a.numel() > 0, "argmax of empty tensor");
  std::size_t best = 0;
  const float* p = a.raw();
  for (std::size_t i = 1, n = a.numel(); i < n; ++i) {
    if (p[i] > p[best]) best = i;
  }
  return best;
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  std::vector<std::size_t> out;
  argmax_rows_into(a, out);
  return out;
}

void argmax_rows_into(const Tensor& a, std::vector<std::size_t>& out) {
  SATD_EXPECT(a.shape().rank() == 2, "argmax_rows requires rank 2");
  const std::size_t n = a.shape()[0];
  const std::size_t d = a.shape()[1];
  SATD_EXPECT(d > 0, "argmax_rows requires non-empty rows");
  out.resize(n);
  const float* p = a.raw();
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = p + i * d;
    std::size_t best = 0;
    for (std::size_t j = 1; j < d; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
}

// ---- linear algebra ----

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul requires rank-2 operands");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  SATD_EXPECT(b.shape()[0] == k, "matmul inner dimension mismatch");
  const std::size_t n = b.shape()[1];
  out.ensure_shape(Shape{m, n});
  out.fill(0.0f);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  // i-k-j order: the inner loop streams rows of B and C.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = po + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul(a, b, out);
  return out;
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul_tn requires rank-2 operands");
  const std::size_t k = a.shape()[0];
  const std::size_t m = a.shape()[1];
  SATD_EXPECT(b.shape()[0] == k, "matmul_tn inner dimension mismatch");
  const std::size_t n = b.shape()[1];
  out.ensure_shape(Shape{m, n});
  out.fill(0.0f);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_tn(a, b, out);
  return out;
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul_nt requires rank-2 operands");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  SATD_EXPECT(b.shape()[1] == k, "matmul_nt inner dimension mismatch");
  const std::size_t n = b.shape()[0];
  out.ensure_shape(Shape{m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = po + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = static_cast<float>(acc);
    }
  }
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_nt(a, b, out);
  return out;
}

void add_row_bias(const Tensor& a, const Tensor& bias, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2, "add_row_bias requires rank 2");
  SATD_EXPECT(bias.shape().rank() == 1 && bias.shape()[0] == a.shape()[1],
              "bias shape mismatch");
  prepare_out(a, out);
  const std::size_t m = a.shape()[0];
  const std::size_t n = a.shape()[1];
  const float* pa = a.raw();
  const float* pbias = bias.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) po[i * n + j] = pa[i * n + j] + pbias[j];
  }
}

void sum_rows(const Tensor& grad, Tensor& out) {
  SATD_EXPECT(grad.shape().rank() == 2, "sum_rows requires rank 2");
  const std::size_t m = grad.shape()[0];
  const std::size_t n = grad.shape()[1];
  out.ensure_shape(Shape{n});
  out.fill(0.0f);
  const float* pg = grad.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) po[j] += pg[i * n + j];
  }
}

Tensor transpose(const Tensor& a) {
  SATD_EXPECT(a.shape().rank() == 2, "transpose requires rank 2");
  const std::size_t m = a.shape()[0];
  const std::size_t n = a.shape()[1];
  Tensor out(Shape{n, m});
  const float* pa = a.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  return out;
}

}  // namespace satd::ops
