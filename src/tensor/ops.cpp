#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contract.h"
#include "common/thread_pool.h"
#include "tensor/kernel/microkernel.h"

namespace satd::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  SATD_EXPECT(a.shape() == b.shape(),
              std::string(op) + ": shape mismatch " + a.shape().to_string() +
                  " vs " + b.shape().to_string());
}

void prepare_out(const Tensor& like, Tensor& out) {
  out.ensure_shape(like.shape());
}
}  // namespace

// ---- elementwise ----
//
// Each kernel is parallelized over disjoint element ranges (kElementGrain
// per chunk minimum), so the per-element arithmetic — and therefore the
// result — is independent of the thread count.

void copy(const Tensor& a, Tensor& out) {
  if (&a == &out) return;
  prepare_out(a, out);
  const float* pa = a.raw();
  float* po = out.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, po](std::size_t begin, std::size_t end) {
                 std::copy(pa + begin, pa + end, po + begin);
               });
}

void add(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "add");
  prepare_out(a, out);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, pb, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) po[i] = pa[i] + pb[i];
               });
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out;
  add(a, b, out);
  return out;
}

void sub(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "sub");
  prepare_out(a, out);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, pb, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) po[i] = pa[i] - pb[i];
               });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out;
  sub(a, b, out);
  return out;
}

void mul(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "mul");
  prepare_out(a, out);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, pb, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) po[i] = pa[i] * pb[i];
               });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out;
  mul(a, b, out);
  return out;
}

void scale(const Tensor& a, float s, Tensor& out) {
  prepare_out(a, out);
  const float* pa = a.raw();
  float* po = out.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, po, s](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) po[i] = pa[i] * s;
               });
}

Tensor scale(const Tensor& a, float s) {
  Tensor out;
  scale(a, s, out);
  return out;
}

void axpy(float alpha, const Tensor& b, Tensor& a) {
  check_same_shape(a, b, "axpy");
  float* pa = a.raw();
  const float* pb = b.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, pb, alpha](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i)
                   pa[i] += alpha * pb[i];
               });
}

void sign(const Tensor& a, Tensor& out) {
  prepare_out(a, out);
  const float* pa = a.raw();
  float* po = out.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   po[i] = (pa[i] > 0.0f) ? 1.0f : (pa[i] < 0.0f ? -1.0f : 0.0f);
                 }
               });
}

Tensor sign(const Tensor& a) {
  Tensor out;
  sign(a, out);
  return out;
}

void clamp(const Tensor& a, float lo, float hi, Tensor& out) {
  SATD_EXPECT(lo <= hi, "clamp bounds must be ordered");
  prepare_out(a, out);
  const float* pa = a.raw();
  float* po = out.raw();
  parallel_for(a.numel(), kElementGrain,
               [pa, po, lo, hi](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   po[i] = std::min(hi, std::max(lo, pa[i]));
                 }
               });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out;
  clamp(a, lo, hi, out);
  return out;
}

void project_linf(const Tensor& center, float eps, float lo, float hi,
                  Tensor& x) {
  check_same_shape(center, x, "project_linf");
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  const float* pc = center.raw();
  float* px = x.raw();
  parallel_for(x.numel(), kElementGrain,
               [pc, px, eps, lo, hi](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const float ball_lo = pc[i] - eps;
                   const float ball_hi = pc[i] + eps;
                   float v = std::min(ball_hi, std::max(ball_lo, px[i]));
                   px[i] = std::min(hi, std::max(lo, v));
                 }
               });
}

// ---- reductions ----
//
// Reductions stay single-threaded on purpose: splitting a sum across
// threads would make the accumulation order (and the float result)
// depend on the thread count, breaking the determinism contract.

float sum(const Tensor& a) {
  // Pairwise-ish accumulation in double to keep the reduction stable.
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  return a.numel() == 0 ? 0.0f : sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.data()) m = std::max(m, std::fabs(v));
  return m;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float m = 0.0f;
  const float* pa = a.raw();
  const float* pb = b.raw();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

float l1_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += std::fabs(v);
  return static_cast<float>(acc);
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::size_t argmax(const Tensor& a) {
  SATD_EXPECT(a.numel() > 0, "argmax of empty tensor");
  std::size_t best = 0;
  const float* p = a.raw();
  for (std::size_t i = 1, n = a.numel(); i < n; ++i) {
    if (p[i] > p[best]) best = i;
  }
  return best;
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  std::vector<std::size_t> out;
  argmax_rows_into(a, out);
  return out;
}

void argmax_rows_into(const Tensor& a, std::vector<std::size_t>& out) {
  SATD_EXPECT(a.shape().rank() == 2, "argmax_rows requires rank 2");
  const std::size_t n = a.shape()[0];
  const std::size_t d = a.shape()[1];
  SATD_EXPECT(d > 0, "argmax_rows requires non-empty rows");
  out.resize(n);
  const float* p = a.raw();
  std::size_t* po = out.data();
  const std::size_t grain = std::max<std::size_t>(1, kElementGrain / d);
  parallel_for(n, grain, [p, po, d](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const float* row = p + i * d;
      std::size_t best = 0;
      for (std::size_t j = 1; j < d; ++j) {
        if (row[j] > row[best]) best = j;
      }
      po[i] = best;
    }
  });
}

// ---- linear algebra ----
//
// All three GEMM entry points are thin shims over the microkernel
// dispatch layer (tensor/kernel/): they validate shapes, express their
// transpose as A packing strides, and call kernel::gemm_f32, which owns
// the blocked decomposition, the per-thread packing scratch, and the
// runtime-selected register-tile kernel. The accumulation contract
// (strictly increasing kk order, one single-rounded mul+add per step)
// lives with the kernels — see tensor/kernel/microkernel.h — so results
// stay bit-identical across thread counts and across kernels.
//
// matmul_nt first transposes B into a per-thread scratch (cost O(nk),
// amortized against the O(mnk) multiply) and then runs the same NN
// driver, which also makes its accumulator policy identical to the
// other two.

namespace {

// Per-thread B-transpose scratch for matmul_nt. Workers are pool
// threads, so each gets its own buffer; steady-state calls reuse the
// grown capacity (no alloc).
thread_local std::vector<float> t_btrans;

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul requires rank-2 operands");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  SATD_EXPECT(b.shape()[0] == k, "matmul inner dimension mismatch");
  const std::size_t n = b.shape()[1];
  out.ensure_shape(Shape{m, n});
  kernel::gemm_f32(a.raw(), /*row_stride=*/k, /*col_stride=*/1, b.raw(), m, n,
                   k, out.raw());
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul(a, b, out);
  return out;
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul_tn requires rank-2 operands");
  const std::size_t k = a.shape()[0];
  const std::size_t m = a.shape()[1];
  SATD_EXPECT(b.shape()[0] == k, "matmul_tn inner dimension mismatch");
  const std::size_t n = b.shape()[1];
  out.ensure_shape(Shape{m, n});
  // Aᵀ's logical element (i, kk) sits at a[kk*m + i].
  kernel::gemm_f32(a.raw(), /*row_stride=*/1, /*col_stride=*/m, b.raw(), m, n,
                   k, out.raw());
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_tn(a, b, out);
  return out;
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul_nt requires rank-2 operands");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  SATD_EXPECT(b.shape()[1] == k, "matmul_nt inner dimension mismatch");
  const std::size_t n = b.shape()[0];
  out.ensure_shape(Shape{m, n});
  if (m == 0 || n == 0) return;
  // Transpose B once into [k, n] scratch, then run the shared kernel.
  std::vector<float>& bt = t_btrans;
  bt.resize(k * n);
  const float* pb = b.raw();
  float* pbt = bt.data();
  const std::size_t grain = std::max<std::size_t>(1, kElementGrain / (n + 1));
  parallel_for(k, grain, [pb, pbt, n, k](std::size_t k0, std::size_t k1) {
    for (std::size_t kk = k0; kk < k1; ++kk) {
      float* dst = pbt + kk * n;
      for (std::size_t j = 0; j < n; ++j) dst[j] = pb[j * k + kk];
    }
  });
  kernel::gemm_f32(a.raw(), /*row_stride=*/k, /*col_stride=*/1, pbt, m, n, k,
                   out.raw());
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_nt(a, b, out);
  return out;
}

void add_row_bias(const Tensor& a, const Tensor& bias, Tensor& out) {
  SATD_EXPECT(a.shape().rank() == 2, "add_row_bias requires rank 2");
  SATD_EXPECT(bias.shape().rank() == 1 && bias.shape()[0] == a.shape()[1],
              "bias shape mismatch");
  prepare_out(a, out);
  const std::size_t m = a.shape()[0];
  const std::size_t n = a.shape()[1];
  const float* pa = a.raw();
  const float* pbias = bias.raw();
  float* po = out.raw();
  const std::size_t grain = std::max<std::size_t>(1, kElementGrain / (n + 1));
  parallel_for(m, grain, [pa, pbias, po, n](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = 0; j < n; ++j)
        po[i * n + j] = pa[i * n + j] + pbias[j];
    }
  });
}

void sum_rows(const Tensor& grad, Tensor& out) {
  SATD_EXPECT(grad.shape().rank() == 2, "sum_rows requires rank 2");
  const std::size_t m = grad.shape()[0];
  const std::size_t n = grad.shape()[1];
  out.ensure_shape(Shape{n});
  out.fill(0.0f);
  const float* pg = grad.raw();
  float* po = out.raw();
  // Row-major accumulation kept serial: each output column is a reduction
  // over rows, and m*n is small (batch x features) on every call site.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) po[j] += pg[i * n + j];
  }
}

Tensor transpose(const Tensor& a) {
  SATD_EXPECT(a.shape().rank() == 2, "transpose requires rank 2");
  const std::size_t m = a.shape()[0];
  const std::size_t n = a.shape()[1];
  Tensor out(Shape{n, m});
  const float* pa = a.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  return out;
}

}  // namespace satd::ops
