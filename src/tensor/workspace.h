// Named scratch-buffer pool for allocation-free hot loops.
//
// The `_into` execution paths (nn layers, attacks, trainers) need scratch
// tensors that survive across batches so the steady-state training loop
// performs zero heap allocations. A Workspace owns those buffers by name:
// the first `get` for a name allocates, every later `get` with the same
// shape returns the identical buffer (stable address — references stay
// valid across further insertions), and a shape change resizes in place,
// reusing capacity where the new element count fits. Buffers regrow on
// demand after `clear()`, which exists so long-lived models can shed
// their scratch when idle (e.g. after eviction from a serving cache).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "tensor/tensor.h"

namespace satd {

/// Owns named, shape-managed scratch tensors for buffer-reuse paths.
class Workspace {
 public:
  /// Returns the buffer registered under `name`, sized to `shape`.
  /// Allocates on first use; resizes in place on a shape change (contents
  /// then unspecified); otherwise returns the buffer untouched. The
  /// reference remains valid until clear().
  Tensor& get(std::string_view name, const Shape& shape);

  /// Like get(), but zero-fills the buffer before returning it.
  Tensor& get_zeroed(std::string_view name, const Shape& shape);

  /// Read access to an existing buffer; fails the contract check if
  /// `name` was never allocated.
  const Tensor& at(std::string_view name) const;

  bool has(std::string_view name) const;

  /// Number of named buffers currently owned.
  std::size_t size() const { return buffers_.size(); }

  /// Total floats held across all buffers (for memory accounting).
  std::size_t total_elements() const;

  /// Releases every buffer; subsequent get() calls reallocate.
  void clear() { buffers_.clear(); }

 private:
  // Transparent hashing so lookups by string_view never build a
  // temporary std::string (which would allocate in the hot path).
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };
  std::unordered_map<std::string, Tensor, Hash, std::equal_to<>> buffers_;
};

}  // namespace satd
