// Wall-clock timing utilities used to reproduce the paper's
// "training time per epoch" column.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace satd {

/// Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the watch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates repeated timings (e.g. one per epoch) and reports
/// aggregate statistics.
class TimingAccumulator {
 public:
  void add(double seconds);

  std::size_t count() const { return samples_.size(); }
  double total() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Population standard deviation; 0 for fewer than two samples.
  double stddev() const;

  const std::vector<double>& samples() const { return samples_; }

  /// Human-readable one-line summary, e.g. "mean 1.84s over 30 epochs".
  std::string summary() const;

 private:
  std::vector<double> samples_;
};

}  // namespace satd
