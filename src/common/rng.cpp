#include "common/rng.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <numbers>
#include <ostream>
#include <stdexcept>

#include "common/contract.h"

namespace satd {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SATD_EXPECT(lo <= hi, "uniform range must be ordered");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SATD_EXPECT(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero for the log.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  SATD_EXPECT(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  SATD_EXPECT(p >= 0.0 && p <= 1.0, "probability must be in [0,1]");
  return uniform() < p;
}

double Rng::sign() { return (next_u64() & 1u) ? 1.0 : -1.0; }

void Rng::shuffle(std::vector<std::size_t>& v) {
  if (v.size() < 2) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
    std::swap(v[i], v[j]);
  }
}

namespace {
void put_u64(std::ostream& os, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t get_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  if (!is) throw std::runtime_error("truncated RNG state");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}
}  // namespace

void Rng::save(std::ostream& os) const {
  for (std::uint64_t s : s_) put_u64(os, s);
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof cached_normal_);
  std::memcpy(&bits, &cached_normal_, sizeof bits);
  put_u64(os, bits);
  put_u64(os, has_cached_normal_ ? 1 : 0);
}

void Rng::load(std::istream& is) {
  for (std::uint64_t& s : s_) s = get_u64(is);
  const std::uint64_t bits = get_u64(is);
  std::memcpy(&cached_normal_, &bits, sizeof cached_normal_);
  has_cached_normal_ = get_u64(is) != 0;
}

bool Rng::operator==(const Rng& other) const {
  return std::memcmp(s_, other.s_, sizeof s_) == 0 &&
         cached_normal_ == other.cached_normal_ &&
         has_cached_normal_ == other.has_cached_normal_;
}

Rng Rng::fork(std::uint64_t salt) {
  // Mix the current stream position with the salt so sibling forks are
  // independent and fork() is itself deterministic.
  std::uint64_t sm = next_u64() ^ (salt * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL);
  return Rng(splitmix64(sm));
}

}  // namespace satd
