#include "common/cli.h"

#include <cstdio>
#include <sstream>

#include <cstdlib>

#include "common/contract.h"
#include "common/env.h"
#include "common/thread_pool.h"
#include "tensor/kernel/microkernel.h"

namespace satd {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  SATD_EXPECT(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::kInt, help, std::to_string(default_value)};
  order_.push_back(name);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  SATD_EXPECT(!options_.count(name), "duplicate option: " + name);
  std::ostringstream ss;
  ss << default_value;
  options_[name] = Option{Kind::kDouble, help, ss.str()};
  order_.push_back(name);
}

void CliParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  SATD_EXPECT(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::kString, help, default_value};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  SATD_EXPECT(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::kFlag, help, "false"};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw CliError("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      throw CliError("unknown option: --" + arg + "\n" + usage());
    }
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      if (has_value) throw CliError("flag --" + arg + " takes no value");
      opt.value = "true";
      opt.flag_set = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw CliError("option --" + arg + " needs a value");
      value = argv[++i];
    }
    opt.value = value;
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  SATD_EXPECT(it != options_.end(), "option not registered: " + name);
  SATD_EXPECT(it->second.kind == kind, "option type mismatch: " + name);
  return it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const Option& opt = find(name, Kind::kInt);
  try {
    return std::stoll(opt.value);
  } catch (const std::exception&) {
    throw CliError("option --" + name + " expects an integer, got '" +
                   opt.value + "'");
  }
}

double CliParser::get_double(const std::string& name) const {
  const Option& opt = find(name, Kind::kDouble);
  try {
    return std::stod(opt.value);
  } catch (const std::exception&) {
    throw CliError("option --" + name + " expects a number, got '" +
                   opt.value + "'");
  }
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).flag_set;
}

std::string CliParser::usage() const {
  std::ostringstream ss;
  ss << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    ss << "  --" << name;
    if (opt.kind != Kind::kFlag) ss << " <" << opt.value << ">";
    ss << "\n      " << opt.help << "\n";
  }
  ss << "  --help\n      print this message\n";
  return ss.str();
}

void add_threads_option(CliParser& cli) {
  cli.add_string("threads", "",
                 "total threads for parallel_for (like SATD_THREADS; "
                 "empty = keep the environment/hardware default)");
}

void apply_threads_option(const CliParser& cli) {
  const std::string& value = cli.get_string("threads");
  if (value.empty()) return;
  const std::size_t total = ThreadPool::parse_thread_env(value.c_str());
  if (total == 0) {
    throw CliParser::CliError("option --threads expects a positive integer, "
                              "got '" + value + "'");
  }
  ThreadPool::set_global_threads(total);
}

void add_spool_options(CliParser& cli) {
  cli.add_string("slots", "",
                 "concurrent child processes for --spool (like SATD_SLOTS; "
                 "empty = environment, else 2)");
  cli.add_string("cores", "",
                 "CPU ids handed out to spooled children, e.g. \"0-3,6\" "
                 "(like SATD_CORES; empty = environment, else no affinity)");
}

std::size_t resolve_slots_option(const CliParser& cli, std::size_t fallback) {
  const std::string& value = cli.get_string("slots");
  if (!value.empty()) {
    const std::size_t slots =
        env::parse_positive_count(value.c_str(), "--slots");
    if (slots == 0) {
      throw CliParser::CliError("option --slots expects a positive integer, "
                                "got '" + value + "'");
    }
    return slots;
  }
  if (const char* env_value = std::getenv("SATD_SLOTS")) {
    const std::size_t slots =
        env::parse_positive_count(env_value, "SATD_SLOTS");
    if (slots > 0) return slots;  // malformed values warned and fall through
  }
  return fallback;
}

std::vector<int> resolve_cores_option(const CliParser& cli) {
  const std::string& value = cli.get_string("cores");
  if (!value.empty()) {
    std::vector<int> cores = env::parse_cpu_list(value.c_str(), "--cores");
    if (cores.empty()) {
      throw CliParser::CliError("option --cores expects a cpu list like "
                                "\"0-3,6\", got '" + value + "'");
    }
    return cores;
  }
  if (const char* env_value = std::getenv("SATD_CORES")) {
    return env::parse_cpu_list(env_value, "SATD_CORES");
  }
  return {};
}

void add_kernel_option(CliParser& cli) {
  cli.add_string("kernel", "",
                 "GEMM microkernel to pin (like SATD_KERNEL: scalar, sse41, "
                 "avx2, ...; empty = environment/auto dispatch)");
}

void apply_kernel_option(const CliParser& cli) {
  const std::string& value = cli.get_string("kernel");
  if (value.empty()) return;
  kernel::set_active_kernel(value);  // warns + auto-dispatches on bad names
}

}  // namespace satd
