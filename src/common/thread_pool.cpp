#include "common/thread_pool.h"

#include <algorithm>

#include "common/contract.h"

namespace satd {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc > 1 ? hc - 1 : 0;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  SATD_EXPECT(job != nullptr, "null job");
  if (workers_.empty()) {
    job();  // inline executor on single-core hosts
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t parts = pool.worker_count() + 1;
  if (parts == 1) {
    body(0, n);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;
  // Workers take chunks 1..k; the calling thread runs chunk 0 itself so
  // it is never idle while others work.
  for (std::size_t begin = chunk; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  body(0, std::min(chunk, n));
  pool.wait_idle();
}

}  // namespace satd
