#include "common/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/contract.h"
#include "common/log.h"

namespace {
// Far above any sane host; larger values are certainly typos (an extra
// digit) and would exhaust memory spawning threads.
constexpr long kMaxReasonableThreads = 4096;
}  // namespace

namespace satd {

namespace {

// Set while a thread is executing inside worker_loop(); parallel_for
// checks it so nested parallelism degrades to inline execution instead
// of deadlocking on wait_idle().
thread_local bool t_is_pool_worker = false;

/// Default worker count: SATD_THREADS (total threads incl. caller) wins,
/// else hardware concurrency; both leave one thread for the caller.
std::size_t default_workers() {
  if (const char* env = std::getenv("SATD_THREADS")) {
    const std::size_t total = ThreadPool::parse_thread_env(env);
    if (total > 0) return total - 1;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? hc - 1 : 0;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  SATD_EXPECT(job != nullptr, "null job");
  if (workers_.empty()) {
    job();  // inline executor on single-core hosts
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_workers());
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t total) {
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  slot.reset();  // join old workers before spawning replacements
  slot = std::make_unique<ThreadPool>(total > 0 ? total - 1
                                                : default_workers());
}

std::size_t ThreadPool::global_threads() {
  return ThreadPool::global().worker_count() + 1;
}

std::size_t ThreadPool::parse_thread_env(const char* text) {
  if (text == nullptr || *text == '\0') {
    log::warn() << "SATD_THREADS is empty; using the hardware default";
    return 0;
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    log::warn() << "SATD_THREADS=\"" << text
                << "\" is not a number; using the hardware default";
    return 0;
  }
  if (errno == ERANGE || v > kMaxReasonableThreads) {
    log::warn() << "SATD_THREADS=\"" << text
                << "\" is out of range; using the hardware default";
    return 0;
  }
  if (v < 1) {
    log::warn() << "SATD_THREADS=" << v
                << " must be >= 1 (total threads including the caller); "
                   "using the hardware default";
    return 0;
  }
  return static_cast<std::size_t>(v);
}

void ThreadPool::worker_loop() {
  t_is_pool_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(n, 1, body);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (n <= grain || t_is_pool_worker) {
    body(0, n);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  const std::size_t parts = pool.worker_count() + 1;
  if (parts == 1) {
    body(0, n);
    return;
  }
  const std::size_t chunk =
      std::max(grain, (n + parts - 1) / parts);
  // Workers take chunks 1..k; the calling thread runs chunk 0 itself so
  // it is never idle while others work.
  for (std::size_t begin = chunk; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  body(0, std::min(chunk, n));
  pool.wait_idle();
}

}  // namespace satd
