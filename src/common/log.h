// Minimal leveled logger.
//
// The library logs sparingly (training progress, experiment milestones).
// Output goes to stderr so bench/table output on stdout stays machine
// readable. Level is process-global and settable via the SATD_LOG_LEVEL
// environment variable (trace|debug|info|warn|error|off) or set_level().
#pragma once

#include <sstream>
#include <string>

namespace satd::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current global level; messages below it are dropped.
Level level();

/// Override the global level (also overrides SATD_LOG_LEVEL).
void set_level(Level lv);

/// Parse a level name; returns kInfo for unknown names.
Level parse_level(const std::string& name);

/// Emit one line at the given level (no trailing newline needed).
void write(Level lv, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level lv) : lv_(lv) {}
  ~LineStream() { write(lv_, ss_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  Level lv_;
  std::ostringstream ss_;
};
}  // namespace detail

inline detail::LineStream trace() { return detail::LineStream(Level::kTrace); }
inline detail::LineStream debug() { return detail::LineStream(Level::kDebug); }
inline detail::LineStream info() { return detail::LineStream(Level::kInfo); }
inline detail::LineStream warn() { return detail::LineStream(Level::kWarn); }
inline detail::LineStream error() { return detail::LineStream(Level::kError); }

}  // namespace satd::log
