#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace satd::log {

namespace {

Level g_level = [] {
  if (const char* env = std::getenv("SATD_LOG_LEVEL")) {
    return parse_level(env);
  }
  return Level::kInfo;
}();

std::mutex g_mutex;

const char* level_name(Level lv) {
  switch (lv) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level level() { return g_level; }

void set_level(Level lv) { g_level = lv; }

Level parse_level(const std::string& name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kInfo;
}

void write(Level lv, const std::string& message) {
  if (lv < g_level) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[satd %s] %s\n", level_name(lv), message.c_str());
}

}  // namespace satd::log
