#include "common/backoff.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"

namespace satd {

Backoff::Backoff(BackoffPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {
  SATD_EXPECT(policy_.base_delay >= 0.0, "base_delay must be non-negative");
  SATD_EXPECT(policy_.multiplier >= 1.0, "multiplier must be >= 1");
  SATD_EXPECT(policy_.max_delay >= policy_.base_delay,
              "max_delay must be >= base_delay");
  SATD_EXPECT(policy_.jitter_fraction >= 0.0 && policy_.jitter_fraction < 1.0,
              "jitter_fraction must be in [0,1)");
}

double Backoff::delay(std::size_t attempt) {
  double d = policy_.base_delay *
             std::pow(policy_.multiplier, static_cast<double>(attempt));
  d = std::min(d, policy_.max_delay);
  if (policy_.jitter_fraction > 0.0) {
    const double jitter =
        rng_.uniform(-policy_.jitter_fraction, policy_.jitter_fraction);
    d *= 1.0 + jitter;
  }
  return std::max(d, 0.0);
}

}  // namespace satd
