// Hardened parsing for SATD_* environment overrides.
//
// The runtime spooler reads its machine-level budgets from the
// environment (SATD_SLOTS for concurrent child processes, SATD_CORES for
// the CPU set handed out to them). Like ThreadPool::parse_thread_env,
// these parsers never throw and never propagate garbage: a malformed
// value earns one warning and a "fall back to the default" result, so a
// typo in a shell profile degrades a run instead of killing it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace satd::env {

/// Parses a SATD_SLOTS-style positive count. Returns the value for a
/// well-formed positive integer; returns 0 — meaning "use the default" —
/// for anything else (null, empty, non-numeric, trailing garbage, zero,
/// negative, or absurdly large values), logging one warning naming
/// `what` and the rejected text.
std::size_t parse_positive_count(const char* text, const char* what);

/// Parses a SATD_CORES-style CPU list: comma-separated ids and inclusive
/// ranges, e.g. "0,2-4,7" -> {0,2,3,4,7}. The result is sorted and
/// deduplicated. Any malformed token (empty, non-numeric, reversed or
/// unbounded range, id >= kMaxCpuId) rejects the WHOLE list — returning
/// empty, meaning "no affinity budget" — with one warning, so a partial
/// typo can never silently pin jobs to the wrong cores.
std::vector<int> parse_cpu_list(const char* text, const char* what);

/// Upper bound on an accepted CPU id (sanity guard, matches the kernel's
/// CONFIG_NR_CPUS ceiling on common distros).
inline constexpr int kMaxCpuId = 4096;

/// A parsed SATD_LISTEN / --listen serving address.
struct ListenAddress {
  enum class Kind { kNone, kUnix, kTcp };
  Kind kind = Kind::kNone;
  std::string path;         ///< unix-domain socket path (kUnix)
  std::string host;         ///< interface/hostname (kTcp)
  std::uint16_t port = 0;   ///< kTcp; 0 = ephemeral (kernel picks)
  bool valid() const { return kind != Kind::kNone; }
};

/// Longest unix socket path accepted (sockaddr_un::sun_path on Linux is
/// 108 bytes including the NUL).
inline constexpr std::size_t kMaxUnixPath = 107;

/// Parses a serving address in one of the accepted forms:
///   "unix:/path/to.sock"  explicit unix-domain socket
///   "/path/to.sock"       bare absolute path -> unix
///   "tcp:host:port"       explicit TCP
///   "host:port"           bare host:port -> TCP
/// Port 0 is accepted for TCP (ephemeral, the resolved port is reported
/// by the listener). Anything malformed — empty host or path, an
/// over-long unix path, a non-numeric / out-of-range port, trailing
/// garbage — earns ONE warning naming `what` and returns kNone, so a
/// typo'd SATD_LISTEN degrades to "no socket front end" instead of
/// crashing the server. Never throws.
ListenAddress parse_listen_address(const char* text, const char* what);

}  // namespace satd::env
