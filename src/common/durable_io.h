// Durable file persistence: atomic writes, checksummed framing, typed
// I/O errors, and fault-injection hooks for tests.
//
// Every binary artifact the library persists (model files, trainer
// checkpoints, the benches' model cache) goes through this layer so that
//   (a) a crash mid-save can never destroy the previous good artifact —
//       writes go to `<path>.tmp`, are flushed to disk, and are renamed
//       over the target only once complete (POSIX rename atomicity);
//   (b) truncation and bit-rot are always detected at load time — the
//       payload is wrapped in a CRC32-checked frame — and surface as a
//       typed CorruptFileError, never as garbage data or UB.
//
// The fault-injection hooks (`fault::arm_write_failure`, FaultStream)
// let tests simulate crashes at an exact byte offset to prove both
// properties end-to-end.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <sstream>
#include <stdexcept>
#include <string>

namespace satd::durable {

/// Thrown when an OS-level file operation fails (open/write/flush/
/// rename). The message always carries the path and strerror(errno).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a file's content is detected as damaged: bad framing
/// magic, length mismatch (truncation), or checksum mismatch (bit-rot).
/// SerializeError (tensor/serialize.h) derives from this, so one catch
/// covers both framing-level and payload-level corruption.
class CorruptFileError : public std::runtime_error {
 public:
  explicit CorruptFileError(const std::string& what)
      : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3, the zlib polynomial). `crc` chains incremental
/// updates; pass the previous return value to continue a running sum.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);
std::uint32_t crc32(const std::string& bytes);

/// Framing magic for checksummed files ("SATDCRC1").
extern const char kFrameMagic[8];

/// Wraps `payload` in the checksummed frame:
///   "SATDCRC1" + u64 payload_size + payload + u32 crc32(payload)
std::string wrap_checksummed(const std::string& payload);

/// Verifies and strips the frame; throws CorruptFileError (message
/// includes `context`, typically the file path) on bad magic, size
/// mismatch or checksum mismatch.
std::string unwrap_checksummed(const std::string& framed,
                               const std::string& context);

/// True if `bytes` begins with the checksummed-frame magic.
bool is_checksummed(const std::string& bytes);

/// Atomically replaces `path` with `bytes`: writes `<path>.tmp`, fsyncs,
/// then renames over `path`. On any failure the previous file at `path`
/// is untouched; throws IoError with path + errno context.
void atomic_write_file(const std::string& path, const std::string& bytes);

/// Serializes via `writer` into a memory buffer, wraps it in the
/// checksummed frame, and writes it atomically. The one-call safe-save
/// used by model files and checkpoints.
void write_file_checksummed(const std::string& path,
                            const std::function<void(std::ostream&)>& writer);

/// Reads the whole file. If it carries the checksummed frame the payload
/// is verified and unwrapped; a legacy (unframed) file is returned
/// verbatim so pre-checksum artifacts stay loadable. Throws IoError if
/// the file cannot be opened/read, CorruptFileError if the frame is
/// damaged.
std::string read_file_verified(const std::string& path);

// ---- fault injection (tests only) ----
//
// Simulates a crash during atomic_write_file: once armed, the next write
// stops after exactly `fail_at_byte` payload bytes have reached the temp
// file and throws IoError, leaving the partial temp file behind (as a
// real crash would) and the destination untouched. One-shot: the trigger
// disarms itself when it fires.
namespace fault {
void arm_write_failure(std::size_t fail_at_byte);
void disarm();
bool armed();

/// Directory fsynced by the most recent successful atomic_write_file
/// (empty if none since reset). Lets tests assert the parent-directory
/// durability step — the part of the atomic-write contract that protects
/// the rename itself against power loss — is actually exercised.
const std::string& last_dir_fsync();
void reset_dir_fsync_probe();
}  // namespace fault

/// An ostream that accepts exactly `limit` bytes and then fails (badbit),
/// mimicking a full disk / dying file handle mid-save. Bytes written
/// before the cut are available via data() — which makes it double as a
/// truncation generator for sweep tests.
class FaultStream : public std::ostream {
 public:
  explicit FaultStream(std::size_t limit);
  /// The (at most `limit`) bytes that were accepted.
  std::string data() const { return buf_.data(); }

 private:
  class LimitBuf : public std::stringbuf {
   public:
    explicit LimitBuf(std::size_t limit) : limit_(limit) {}
    std::string data() const { return str(); }

   protected:
    int overflow(int ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;

   private:
    std::size_t limit_;
    std::size_t written_ = 0;
  };
  LimitBuf buf_;
};

}  // namespace satd::durable
