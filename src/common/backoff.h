// Exponential retry backoff with deterministic, seeded jitter.
//
// The pattern follows HPC task spoolers: delay grows geometrically per
// attempt, is capped, and carries a multiplicative jitter term so that a
// fleet of supervisors retrying against the same shared resource does not
// retry in lockstep. Unlike the usual random_device jitter, ours is drawn
// from a seeded satd::Rng so a retry schedule is exactly reproducible
// from (policy, seed) — the property the chaos tests pin.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"

namespace satd {

/// Shape of the retry schedule. All durations in seconds.
struct BackoffPolicy {
  double base_delay = 1.0;       ///< delay before the first retry
  double multiplier = 2.0;       ///< geometric growth per retry
  double max_delay = 60.0;       ///< cap applied before jitter
  double jitter_fraction = 0.1;  ///< uniform in [-f, +f] of the delay
};

/// Stateful backoff schedule: delay(k) is base * multiplier^k capped at
/// max_delay, scaled by (1 + U[-jitter, +jitter]) from the seeded stream.
/// Each call consumes one draw, so re-running with the same seed replays
/// the identical schedule.
class Backoff {
 public:
  Backoff(BackoffPolicy policy, std::uint64_t seed);

  /// Delay before retry `attempt` (0 = first retry). Always >= 0.
  double delay(std::size_t attempt);

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
};

}  // namespace satd
