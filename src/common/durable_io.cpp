#include "common/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.h"

namespace satd::durable {

namespace {

std::string errno_context(const std::string& what, const std::string& path) {
  return what + ": " + path + ": " + std::strerror(errno);
}

void write_u64_le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void write_u32_le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint64_t read_u64_le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t read_u32_le(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

// Frame layout: magic(8) + payload_size(8) + payload + crc32(4).
constexpr std::size_t kFrameHeader = 16;
constexpr std::size_t kFrameTrailer = 4;

// Fault-injection trigger (see header). Not thread-safe by design: the
// injection tests are single-threaded and production code never arms it.
bool g_fault_armed = false;
std::size_t g_fault_at_byte = 0;

// Last directory fsynced by atomic_write_file (observable so tests can
// assert the directory-durability path is exercised).
std::string g_last_dir_fsync;

/// Directory containing `path` ("." for a bare filename).
std::string parent_dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsyncs the directory holding `path`. POSIX rename atomicity protects
/// against a *process* crash, but the rename itself lives in the
/// directory inode — until that is flushed, a power loss can roll the
/// directory back to the old entry (or to neither file on some
/// filesystems). Throws IoError so callers never believe an un-durable
/// write was durable.
void fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError(errno_context("cannot open directory for fsync", dir));
  }
  if (::fsync(fd) != 0) {
    const std::string msg = errno_context("directory fsync failed", dir);
    ::close(fd);
    throw IoError(msg);
  }
  ::close(fd);
  g_last_dir_fsync = dir;
}

}  // namespace

const char kFrameMagic[8] = {'S', 'A', 'T', 'D', 'C', 'R', 'C', '1'};

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  // Forwards to the extracted standalone implementation (common/crc32.h)
  // shared with the network wire framing; the polynomial, table and
  // chaining semantics are unchanged, so file frames stay byte-identical.
  return satd::crc32(data, n, crc);
}

std::uint32_t crc32(const std::string& bytes) {
  return satd::crc32(bytes);
}

std::string wrap_checksummed(const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeader + payload.size() + kFrameTrailer);
  out.append(kFrameMagic, 8);
  write_u64_le(out, payload.size());
  out += payload;
  write_u32_le(out, crc32(payload));
  return out;
}

bool is_checksummed(const std::string& bytes) {
  return bytes.size() >= 8 && std::memcmp(bytes.data(), kFrameMagic, 8) == 0;
}

std::string unwrap_checksummed(const std::string& framed,
                               const std::string& context) {
  if (!is_checksummed(framed)) {
    throw CorruptFileError("bad frame magic (not a checksummed file): " +
                           context);
  }
  if (framed.size() < kFrameHeader + kFrameTrailer) {
    throw CorruptFileError("truncated frame header: " + context);
  }
  const std::uint64_t payload_size = read_u64_le(
      reinterpret_cast<const unsigned char*>(framed.data()) + 8);
  if (framed.size() != kFrameHeader + payload_size + kFrameTrailer) {
    throw CorruptFileError(
        "frame size mismatch (truncated or trailing garbage): " + context +
        " — header claims " + std::to_string(payload_size) +
        " payload bytes, file holds " +
        std::to_string(framed.size() >= kFrameHeader + kFrameTrailer
                           ? framed.size() - kFrameHeader - kFrameTrailer
                           : 0));
  }
  const std::string payload = framed.substr(kFrameHeader, payload_size);
  const std::uint32_t stored = read_u32_le(
      reinterpret_cast<const unsigned char*>(framed.data()) + kFrameHeader +
      payload_size);
  const std::uint32_t actual = crc32(payload);
  if (stored != actual) {
    throw CorruptFileError("checksum mismatch (bit-rot or tampering): " +
                           context);
  }
  return payload;
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw IoError(errno_context("cannot open for writing", tmp));

  std::size_t limit = bytes.size();
  bool inject = false;
  if (g_fault_armed) {
    limit = std::min(limit, g_fault_at_byte);
    inject = true;
    g_fault_armed = false;  // one-shot
  }

  std::size_t written = 0;
  while (written < limit) {
    const ssize_t n = ::write(fd, bytes.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string msg = errno_context("write failed", tmp);
      ::close(fd);
      throw IoError(msg);
    }
    written += static_cast<std::size_t>(n);
  }
  if (inject) {
    // Simulated crash: leave the partial temp file behind, destination
    // untouched.
    ::close(fd);
    throw IoError("injected write failure after " + std::to_string(written) +
                  " bytes: " + tmp);
  }
  if (::fsync(fd) != 0) {
    const std::string msg = errno_context("fsync failed", tmp);
    ::close(fd);
    throw IoError(msg);
  }
  if (::close(fd) != 0) {
    throw IoError(errno_context("close failed", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError(errno_context("rename failed", tmp + " -> " + path));
  }
  // The data is durable (fsync above) but the rename is not until the
  // parent directory's inode is flushed too — without this, the atomic-
  // write contract survives a process crash yet not a power loss.
  fsync_parent_dir(path);
}

void write_file_checksummed(
    const std::string& path,
    const std::function<void(std::ostream&)>& writer) {
  std::ostringstream ss(std::ios::binary);
  writer(ss);
  if (!ss) throw IoError("serialization into memory buffer failed: " + path);
  atomic_write_file(path, wrap_checksummed(ss.str()));
}

std::string read_file_verified(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError(errno_context("cannot open for reading", path));
  std::ostringstream ss;
  ss << is.rdbuf();
  if (is.bad()) throw IoError(errno_context("read failed", path));
  std::string bytes = ss.str();
  if (is_checksummed(bytes)) return unwrap_checksummed(bytes, path);
  // Legacy pre-checksum artifact: hand back verbatim; payload parsers
  // still validate magic/shape and throw typed errors on damage.
  return bytes;
}

namespace fault {
void arm_write_failure(std::size_t fail_at_byte) {
  g_fault_armed = true;
  g_fault_at_byte = fail_at_byte;
}
void disarm() { g_fault_armed = false; }
bool armed() { return g_fault_armed; }
const std::string& last_dir_fsync() { return g_last_dir_fsync; }
void reset_dir_fsync_probe() { g_last_dir_fsync.clear(); }
}  // namespace fault

int FaultStream::LimitBuf::overflow(int ch) {
  if (ch == EOF) return EOF;
  if (written_ >= limit_) return EOF;  // stream sets badbit
  ++written_;
  return std::stringbuf::overflow(ch);
}

std::streamsize FaultStream::LimitBuf::xsputn(const char* s,
                                              std::streamsize n) {
  const std::streamsize room =
      static_cast<std::streamsize>(limit_ - written_);
  const std::streamsize take = std::min(n, room);
  if (take > 0) {
    std::stringbuf::xsputn(s, take);
    written_ += static_cast<std::size_t>(take);
  }
  // Reporting fewer bytes than requested makes the ostream set badbit —
  // exactly how a real stream surfaces a dying device.
  return take;
}

FaultStream::FaultStream(std::size_t limit)
    : std::ostream(nullptr), buf_(limit) {
  rdbuf(&buf_);
}

}  // namespace satd::durable
