#include "common/stopwatch.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/contract.h"

namespace satd {

void TimingAccumulator::add(double seconds) {
  SATD_EXPECT(seconds >= 0.0, "negative duration");
  samples_.push_back(seconds);
}

double TimingAccumulator::total() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double TimingAccumulator::mean() const {
  return samples_.empty() ? 0.0 : total() / static_cast<double>(samples_.size());
}

double TimingAccumulator::min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double TimingAccumulator::max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double TimingAccumulator::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

std::string TimingAccumulator::summary() const {
  std::ostringstream ss;
  ss.precision(3);
  ss << std::fixed << "mean " << mean() << "s over " << count()
     << " samples (min " << min() << "s, max " << max() << "s)";
  return ss.str();
}

}  // namespace satd
