// Small command-line argument parser for examples and benches.
//
// Supports `--name value` and `--name=value` forms plus boolean flags
// (`--flag`). Unknown arguments are an error so typos surface
// immediately. Every option is registered with a help line; `--help`
// prints usage and the caller exits.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace satd {

/// Declarative command-line parser.
///
/// Usage:
///   CliParser cli("bench_table1", "Reproduces Table I");
///   cli.add_int("epochs", 30, "training epochs");
///   cli.add_flag("fast", "use the reduced-scale config");
///   cli.parse(argc, argv);   // throws CliError on bad input
///   int epochs = cli.get_int("epochs");
class CliParser {
 public:
  /// Thrown on malformed or unknown arguments.
  class CliError : public std::runtime_error {
   public:
    explicit CliError(const std::string& what) : std::runtime_error(what) {}
  };

  CliParser(std::string program, std::string description);

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false if --help was requested (usage printed);
  /// callers should exit(0) in that case. Throws CliError on bad input.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Renders the usage/help text.
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual; parsed on get
    bool flag_set = false;
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // registration order for help output
};

/// Registers the shared `--threads N` option (total threads participating
/// in parallel_for; empty keeps the SATD_THREADS / hardware default).
void add_threads_option(CliParser& cli);

/// Applies a parsed `--threads` value by routing it through
/// ThreadPool::set_global_threads. Validation matches
/// ThreadPool::parse_thread_env: zero, negative, non-numeric or
/// out-of-range values throw CliParser::CliError instead of silently
/// falling back. A no-op when the option was left empty.
void apply_threads_option(const CliParser& cli);

/// Registers the shared `--kernel NAME` option (GEMM microkernel to pin;
/// empty keeps the SATD_KERNEL / CPUID auto-dispatch default).
void add_kernel_option(CliParser& cli);

/// Registers the shared multi-process spooling options: `--slots N`
/// (concurrent child processes) and `--cores LIST` (CPU ids handed out
/// to children, e.g. "0-3,6"). Empty values defer to the SATD_SLOTS /
/// SATD_CORES environment overrides.
void add_spool_options(CliParser& cli);

/// Resolves the spooler slot budget: an explicit `--slots` wins (a
/// malformed value throws CliError), else SATD_SLOTS (malformed values
/// warn and fall through, matching env::parse_positive_count), else
/// `fallback`.
std::size_t resolve_slots_option(const CliParser& cli, std::size_t fallback);

/// Resolves the spooler core budget the same way: `--cores` (throws on
/// malformed input), else SATD_CORES (warn and fall through), else empty
/// — meaning "no affinity budget".
std::vector<int> resolve_cores_option(const CliParser& cli);

/// Applies a parsed `--kernel` value through kernel::set_active_kernel.
/// Unlike --threads, a bad name is NOT an error: dispatch hardening
/// (warn once, fall back to auto) already covers it, and a bench run on
/// a machine without the requested ISA should degrade, not die. A no-op
/// when the option was left empty.
void apply_kernel_option(const CliParser& cli);

}  // namespace satd
