// Deterministic random number generation.
//
// All randomness in the library flows through satd::Rng so every
// experiment is exactly reproducible from a single 64-bit seed. The
// engine is xoshiro256** seeded via splitmix64 (both public domain
// algorithms by Blackman & Vigna); we implement them here rather than use
// std::mt19937 so that streams are cheap to fork (`Rng::fork`) — each
// dataset, trainer, and attack gets an independent substream derived from
// the experiment seed, which keeps results stable when one component
// changes how much randomness it consumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace satd {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic, forkable random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the stream. Two Rng constructed with the same seed produce
  /// identical sequences.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Random sign: +1.0 or -1.0 with equal probability.
  double sign();

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

  /// Derives an independent substream; `salt` distinguishes siblings.
  Rng fork(std::uint64_t salt);

  /// Serializes the full generator state (position included) so a
  /// training run can resume mid-stream (see core/checkpoint).
  void save(std::ostream& os) const;

  /// Restores a state written by save(); throws std::runtime_error on a
  /// truncated stream.
  void load(std::istream& is);

  bool operator==(const Rng& other) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace satd
