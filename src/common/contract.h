// Contract-checking macros used across the library.
//
// Following the C++ Core Guidelines (I.6 / E.12 style), preconditions on
// public interfaces are checked with SATD_EXPECT and internal invariants /
// postconditions with SATD_ENSURE. Both throw satd::ContractViolation so
// callers (and tests) can observe failures deterministically; they are NOT
// compiled out in release builds because this library is used for
// reproducible experiments where silent corruption is worse than the
// (negligible) branch cost.
#pragma once

#include <stdexcept>
#include <string>

namespace satd {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string(kind) + " failed: (" + expr + ") at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace satd

/// Precondition check: argument/state validation at public API boundaries.
#define SATD_EXPECT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::satd::detail::contract_fail("precondition", #cond, __FILE__,        \
                                    __LINE__, (msg));                       \
  } while (false)

/// Postcondition / invariant check for internal consistency.
#define SATD_ENSURE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::satd::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                    (msg));                                 \
  } while (false)

/// Invariant check on a per-element hot path (e.g. packing-scratch
/// geometry inside the GEMM drivers). Unlike SATD_ENSURE this IS
/// compiled out under NDEBUG: the guarded invariants are structural —
/// established once by the dispatch layer, not data dependent — so
/// debug/sanitizer builds and the test suite exercise them while release
/// binaries pay nothing per panel.
#ifdef NDEBUG
#define SATD_DEBUG_ENSURE(cond, msg) \
  do {                               \
  } while (false)
#else
#define SATD_DEBUG_ENSURE(cond, msg) SATD_ENSURE(cond, msg)
#endif
