// Fixed-size thread pool with a parallel_for helper.
//
// Heavy loops (GEMM row blocks, im2col over a batch, elementwise attack
// updates) are written against parallel_for so they transparently use
// however many cores the host offers. On a single-core machine the pool
// degrades to running the body inline on the calling thread (zero thread
// overhead), which keeps benchmarks honest.
//
// Determinism contract: parallel_for only *partitions* an index range;
// it never reorders the arithmetic inside a chunk, and every hot-path
// caller decomposes over independent output elements (never a reduction
// dimension). Results are therefore bit-identical for any thread count —
// the property tests/parallel/determinism_test.cpp pins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace satd {

/// Default minimum number of elementwise iterations per chunk: below
/// this, dispatching to the pool costs more than the loop body.
inline constexpr std::size_t kElementGrain = 1 << 14;

/// A fixed pool of worker threads executing submitted jobs FIFO.
class ThreadPool {
 public:
  /// Creates exactly `workers` worker threads. `workers == 0` yields a
  /// poolless, purely inline executor (submit runs the job on the
  /// calling thread).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (may be zero).
  std::size_t worker_count() const { return workers_.size(); }

  /// Submits a job; returns immediately.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

  /// Shared process-wide pool (lazily constructed). The first call sizes
  /// it from the SATD_THREADS environment variable (total participating
  /// threads including the caller, so SATD_THREADS=1 means fully serial);
  /// unset or invalid falls back to hardware concurrency.
  static ThreadPool& global();

  /// Replaces the global pool so that `total` threads participate in
  /// parallel_for (the calling thread plus total-1 workers). `total == 0`
  /// restores the SATD_THREADS / hardware default. Must not be called
  /// while a parallel_for is in flight.
  static void set_global_threads(std::size_t total);

  /// Total threads the global pool brings to a parallel_for (workers+1).
  static std::size_t global_threads();

  /// Parses a SATD_THREADS-style value. Returns the total thread count
  /// for a well-formed positive integer; returns 0 — meaning "fall back
  /// to the hardware default" — for anything else (empty, non-numeric,
  /// trailing garbage, zero, negative, or out-of-range values), logging
  /// one warning describing the rejected text. Exposed so tests can pin
  /// the hardening without mutating the process environment.
  static std::size_t parse_thread_env(const char* text);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Splits [0, n) into chunks and runs `body(begin, end)` over them, using
/// the global pool plus the calling thread. Blocks until all chunks are
/// done. With no workers — or when called from inside a pool worker
/// (nested parallelism) — the body runs inline as body(0, n).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Grained variant: chunks are at least `grain` iterations, and when
/// n <= grain the body runs inline with no dispatch at all. Use this for
/// loops whose per-iteration cost is small relative to a pool handoff.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace satd
