// Fixed-size thread pool with a parallel_for helper.
//
// Heavy loops (batch evaluation, convolution over a batch) are written
// against parallel_for so they transparently use however many cores the
// host offers. On a single-core machine the pool degrades to running the
// body inline on the calling thread (zero thread overhead), which keeps
// benchmarks honest.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace satd {

/// A fixed pool of worker threads executing submitted jobs FIFO.
class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` means "hardware
  /// concurrency minus one" (the caller participates in parallel_for),
  /// which on a 1-core host yields a poolless, purely inline executor.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (may be zero).
  std::size_t worker_count() const { return workers_.size(); }

  /// Submits a job; returns immediately.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

  /// Shared process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Splits [0, n) into chunks and runs `body(begin, end)` over them, using
/// the global pool plus the calling thread. Blocks until all chunks are
/// done. With no workers the body runs inline as body(0, n).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace satd
