#include "common/env.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "common/log.h"

namespace satd::env {

namespace {

/// Matches ThreadPool's ceiling: nobody schedules a million of anything.
constexpr long kMaxReasonableCount = 1 << 20;

/// Parses one non-negative integer token; returns -1 on any malformation
/// (the callers translate that into their own warning).
long parse_long_token(const char* text, const char** end_out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || errno == ERANGE) {
    *end_out = text;
    return -1;
  }
  *end_out = end;
  return v;
}

}  // namespace

std::size_t parse_positive_count(const char* text, const char* what) {
  if (text == nullptr || *text == '\0') {
    log::warn() << what << " is empty; using the default";
    return 0;
  }
  const char* end = nullptr;
  const long v = parse_long_token(text, &end);
  if (end == text || *end != '\0') {
    log::warn() << what << "=\"" << text
                << "\" is not a number; using the default";
    return 0;
  }
  if (v > kMaxReasonableCount) {
    log::warn() << what << "=\"" << text
                << "\" is out of range; using the default";
    return 0;
  }
  if (v < 1) {
    log::warn() << what << "=" << v
                << " must be >= 1; using the default";
    return 0;
  }
  return static_cast<std::size_t>(v);
}

std::vector<int> parse_cpu_list(const char* text, const char* what) {
  if (text == nullptr || *text == '\0') {
    log::warn() << what << " is empty; running without a core budget";
    return {};
  }
  const auto reject = [&](const char* why) -> std::vector<int> {
    log::warn() << what << "=\"" << text << "\" " << why
                << "; running without a core budget";
    return {};
  };
  std::vector<int> cpus;
  const char* p = text;
  for (;;) {
    const char* end = nullptr;
    const long lo = parse_long_token(p, &end);
    if (end == p) return reject("has a malformed cpu id");
    if (lo < 0 || lo >= kMaxCpuId) return reject("has a cpu id out of range");
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = parse_long_token(p, &end);
      if (end == p) return reject("has an unbounded range");
      if (hi < lo) return reject("has a reversed range");
      if (hi >= kMaxCpuId) return reject("has a cpu id out of range");
      p = end;
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (*p == '\0') break;
    if (*p != ',') return reject("has trailing garbage");
    ++p;  // past the comma; an empty trailing token is caught above
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

}  // namespace satd::env
