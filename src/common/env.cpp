#include "common/env.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "common/log.h"

namespace satd::env {

namespace {

/// Matches ThreadPool's ceiling: nobody schedules a million of anything.
constexpr long kMaxReasonableCount = 1 << 20;

/// Parses one non-negative integer token; returns -1 on any malformation
/// (the callers translate that into their own warning).
long parse_long_token(const char* text, const char** end_out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || errno == ERANGE) {
    *end_out = text;
    return -1;
  }
  *end_out = end;
  return v;
}

}  // namespace

std::size_t parse_positive_count(const char* text, const char* what) {
  if (text == nullptr || *text == '\0') {
    log::warn() << what << " is empty; using the default";
    return 0;
  }
  const char* end = nullptr;
  const long v = parse_long_token(text, &end);
  if (end == text || *end != '\0') {
    log::warn() << what << "=\"" << text
                << "\" is not a number; using the default";
    return 0;
  }
  if (v > kMaxReasonableCount) {
    log::warn() << what << "=\"" << text
                << "\" is out of range; using the default";
    return 0;
  }
  if (v < 1) {
    log::warn() << what << "=" << v
                << " must be >= 1; using the default";
    return 0;
  }
  return static_cast<std::size_t>(v);
}

std::vector<int> parse_cpu_list(const char* text, const char* what) {
  if (text == nullptr || *text == '\0') {
    log::warn() << what << " is empty; running without a core budget";
    return {};
  }
  const auto reject = [&](const char* why) -> std::vector<int> {
    log::warn() << what << "=\"" << text << "\" " << why
                << "; running without a core budget";
    return {};
  };
  std::vector<int> cpus;
  const char* p = text;
  for (;;) {
    const char* end = nullptr;
    const long lo = parse_long_token(p, &end);
    if (end == p) return reject("has a malformed cpu id");
    if (lo < 0 || lo >= kMaxCpuId) return reject("has a cpu id out of range");
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = parse_long_token(p, &end);
      if (end == p) return reject("has an unbounded range");
      if (hi < lo) return reject("has a reversed range");
      if (hi >= kMaxCpuId) return reject("has a cpu id out of range");
      p = end;
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (*p == '\0') break;
    if (*p != ',') return reject("has trailing garbage");
    ++p;  // past the comma; an empty trailing token is caught above
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

ListenAddress parse_listen_address(const char* text, const char* what) {
  ListenAddress none;
  if (text == nullptr || *text == '\0') {
    log::warn() << what << " is empty; not listening";
    return none;
  }
  const std::string s(text);
  const auto reject = [&](const char* why) -> ListenAddress {
    log::warn() << what << "=\"" << s << "\" " << why << "; not listening";
    return none;
  };

  std::string rest = s;
  bool force_unix = false;
  bool force_tcp = false;
  if (rest.rfind("unix:", 0) == 0) {
    force_unix = true;
    rest = rest.substr(5);
  } else if (rest.rfind("tcp:", 0) == 0) {
    force_tcp = true;
    rest = rest.substr(4);
  }

  if (force_unix || (!force_tcp && !rest.empty() && rest[0] == '/')) {
    if (rest.empty()) return reject("has an empty unix socket path");
    if (rest.size() > kMaxUnixPath) {
      return reject("has a unix socket path longer than sun_path allows");
    }
    ListenAddress a;
    a.kind = ListenAddress::Kind::kUnix;
    a.path = rest;
    return a;
  }

  // TCP: host:port, split on the LAST colon so a future bracketed-v6
  // host with colons still finds its port.
  const std::size_t colon = rest.find_last_of(':');
  if (colon == std::string::npos) return reject("is missing a :port");
  const std::string host = rest.substr(0, colon);
  const std::string port_text = rest.substr(colon + 1);
  if (host.empty()) return reject("has an empty host");
  if (port_text.empty()) return reject("has an empty port");
  const char* end = nullptr;
  const long port = parse_long_token(port_text.c_str(), &end);
  if (end == port_text.c_str() || *end != '\0') {
    return reject("has a non-numeric port");
  }
  if (port < 0 || port > 65535) return reject("has a port out of range");
  ListenAddress a;
  a.kind = ListenAddress::Kind::kTcp;
  a.host = host;
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

}  // namespace satd::env
