// Injectable wall-clock abstraction for deadline supervision.
//
// The runtime supervisor (src/runtime) enforces watchdog deadlines and
// retry backoff in terms of a Clock so that tests can drive the whole
// deadline/backoff state machine with a FakeClock — deterministically and
// in microseconds — while production uses the monotonic system clock.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace satd {

/// Monotonic time source plus a blocking sleep. `now()` is in seconds
/// from an arbitrary fixed origin; only differences are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() = 0;
  virtual void sleep_for(double seconds) = 0;
};

/// Real clock: std::chrono::steady_clock + std::this_thread::sleep_for.
class SystemClock : public Clock {
 public:
  double now() override;
  void sleep_for(double seconds) override;

  /// Shared process-wide instance (the supervisor's default).
  static SystemClock& instance();
};

/// Manually advanced clock for tests. sleep_for() advances time instantly
/// and records the requested duration so tests can assert the exact
/// backoff schedule a supervisor executed.
class FakeClock : public Clock {
 public:
  explicit FakeClock(double start = 0.0) : now_(start) {}

  double now() override { return now_; }
  void sleep_for(double seconds) override {
    if (seconds > 0) now_ += seconds;
    sleeps_.push_back(seconds);
    if (on_sleep_) on_sleep_(now_);
  }

  /// Hook invoked after every sleep_for with the new time. Poll-loop
  /// tests (the spooler waits for children or for a farm slot) use it to
  /// model the outside world making progress while the supervisor
  /// sleeps — e.g. another invocation releasing a semaphore token.
  void set_on_sleep(std::function<void(double)> hook) {
    on_sleep_ = std::move(hook);
  }

  /// Moves time forward without recording a sleep (models work taking
  /// wall-clock time inside a job).
  void advance(double seconds) { now_ += seconds; }

  /// Every duration passed to sleep_for(), in call order.
  const std::vector<double>& sleeps() const { return sleeps_; }

 private:
  double now_;
  std::vector<double> sleeps_;
  std::function<void(double)> on_sleep_;
};

}  // namespace satd
