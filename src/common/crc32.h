// Standalone CRC-32 (IEEE 802.3, the zlib polynomial).
//
// Extracted from common/durable_io so the checksum is usable by layers
// that frame bytes without touching the filesystem — the network wire
// protocol (src/net/wire.h) trails every frame with the same CRC the
// durable file frame uses. durable::crc32 forwards here, so file framing
// is byte-identical to the pre-extraction format (pinned by the fault
// suite's truncation/bit-rot sweeps).
//
// `crc` chains incremental updates; pass the previous return value to
// continue a running sum over split buffers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace satd {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t crc = 0) {
  const auto& table = detail::crc32_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const std::string& bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace satd
