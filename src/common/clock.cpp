#include "common/clock.h"

#include <chrono>
#include <thread>

namespace satd {

double SystemClock::now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

void SystemClock::sleep_for(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

SystemClock& SystemClock::instance() {
  static SystemClock clock;
  return clock;
}

}  // namespace satd
