// Random-restart PGD: best-of-R seeded restarts.
//
// A single PGD run can get stuck in a flat region of the loss surface —
// precisely the artifact gradient-masking defenses exploit (Athalye et
// al. 2018). The standard adaptive probe is to restart PGD R times from
// independent random points in the eps-ball and keep, per example, the
// restart that achieves the highest loss. The gauntlet (src/gauntlet/)
// uses this as its strengthened white-box column.
//
// Determinism contract: restart r of every perturb_into call draws its
// start point from a stream derived only from (seed, r), never from
// mutable instance state, so the same (seed, inputs) always produce the
// bit-identical best restart — the property the resumable gauntlet matrix
// relies on.
#pragma once

#include <cstdint>

#include "attack/attack.h"

namespace satd::attack {

/// PGD with R independent seeded restarts, keeping the per-example
/// restart of maximal cross-entropy loss.
class RestartPgd : public Attack {
 public:
  /// `eps_step` <= 0 applies the paper's eps/iterations convention.
  RestartPgd(float eps, std::size_t iterations, float eps_step,
             std::size_t restarts, std::uint64_t seed = 0x5EEDULL);

  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  /// Runs restart `restart` alone (the exact run perturb_into scores).
  /// Public so tests can verify the best-of selection restart by restart.
  void perturb_restart_into(nn::Sequential& model, const Tensor& x,
                            std::span<const std::size_t> labels,
                            std::size_t restart, Tensor& adv);

  float epsilon() const override { return eps_; }
  std::size_t iterations() const { return iterations_; }
  std::size_t restarts() const { return restarts_; }
  std::string name() const override;

 private:
  float eps_;
  std::size_t iterations_;
  float eps_step_;
  std::size_t restarts_;
  std::uint64_t seed_;
  // Reused across calls: candidate restart, its logits, per-row losses.
  Tensor candidate_;
  Tensor logits_;
  std::vector<float> best_loss_;
};

/// Per-row softmax cross-entropy of logits [N, K] against labels
/// (logsumexp(row) - logit[label]); the restart-selection criterion,
/// exposed for tests.
void per_row_cross_entropy(const Tensor& logits,
                           std::span<const std::size_t> labels,
                           std::vector<float>& out);

}  // namespace satd::attack
