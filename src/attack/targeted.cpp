#include "attack/targeted.h"

#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {

std::vector<std::size_t> least_likely_labels(nn::Sequential& model,
                                             const Tensor& x) {
  const Tensor logits = model.forward(x, /*training=*/false);
  SATD_ENSURE(logits.shape().rank() == 2, "model must emit [N, K] logits");
  const std::size_t n = logits.shape()[0];
  const std::size_t k = logits.shape()[1];
  std::vector<std::size_t> out(n);
  const float* p = logits.raw();
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = p + i * k;
    std::size_t worst = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (row[j] < row[worst]) worst = j;
    }
    out[i] = worst;
  }
  return out;
}

std::vector<std::size_t> resolve_targets(nn::Sequential& model,
                                         const Tensor& x,
                                         std::span<const std::size_t> labels,
                                         std::size_t num_classes,
                                         TargetPolicy policy) {
  SATD_EXPECT(num_classes >= 2, "targeted attacks need >= 2 classes");
  switch (policy) {
    case TargetPolicy::kLeastLikely:
      return least_likely_labels(model, x);
    case TargetPolicy::kNextClass: {
      std::vector<std::size_t> out(labels.size());
      for (std::size_t i = 0; i < labels.size(); ++i) {
        out[i] = (labels[i] + 1) % num_classes;
      }
      return out;
    }
  }
  SATD_ENSURE(false, "unhandled target policy");
  return {};
}

Tensor targeted_step(nn::Sequential& model, const Tensor& x_start,
                     const Tensor& x_origin,
                     std::span<const std::size_t> targets, float step_size,
                     float eps) {
  Tensor adv;
  GradientScratch scratch;
  targeted_step_into(model, x_start, x_origin, targets, step_size, eps, adv,
                     scratch);
  return adv;
}

void targeted_step_into(nn::Sequential& model, const Tensor& x_start,
                        const Tensor& x_origin,
                        std::span<const std::size_t> targets,
                        float step_size, float eps, Tensor& adv,
                        GradientScratch& scratch) {
  SATD_EXPECT(x_start.shape() == x_origin.shape(),
              "start/origin shape mismatch");
  SATD_EXPECT(step_size >= 0.0f && eps >= 0.0f, "negative step or eps");
  // Descend the loss towards the target class: the negated FGSM step.
  input_gradient_into(model, x_start, targets, scratch);
  ops::copy(x_start, adv);  // no-op when adv aliases x_start
  const float* pg = scratch.grad.raw();
  float* pa = adv.raw();
  for (std::size_t i = 0, n = adv.numel(); i < n; ++i) {
    const float s = (pg[i] > 0.0f) ? 1.0f : (pg[i] < 0.0f ? -1.0f : 0.0f);
    pa[i] -= step_size * s;
  }
  ops::project_linf(x_origin, eps, kPixelMin, kPixelMax, adv);
}

TargetedFgsm::TargetedFgsm(float eps, std::size_t num_classes,
                           TargetPolicy policy)
    : eps_(eps), num_classes_(num_classes), policy_(policy) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  SATD_EXPECT(num_classes >= 2, "targeted attacks need >= 2 classes");
}

void TargetedFgsm::perturb_into(nn::Sequential& model, const Tensor& x,
                                std::span<const std::size_t> labels,
                                Tensor& adv) {
  const auto targets =
      resolve_targets(model, x, labels, num_classes_, policy_);
  targeted_step_into(model, x, x, targets, eps_, eps_, adv, scratch_);
}

std::string TargetedFgsm::name() const {
  return std::string("Targeted-FGSM(eps=") + std::to_string(eps_) + ", " +
         (policy_ == TargetPolicy::kLeastLikely ? "least-likely"
                                                : "next-class") +
         ")";
}

TargetedBim::TargetedBim(float eps, std::size_t iterations, float eps_step,
                         std::size_t num_classes, TargetPolicy policy)
    : eps_(eps),
      iterations_(iterations),
      eps_step_(eps_step),
      num_classes_(num_classes),
      policy_(policy) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  SATD_EXPECT(iterations > 0, "need at least one iteration");
  SATD_EXPECT(eps_step >= 0.0f, "eps_step must be non-negative");
  SATD_EXPECT(num_classes >= 2, "targeted attacks need >= 2 classes");
}

void TargetedBim::perturb_into(nn::Sequential& model, const Tensor& x,
                               std::span<const std::size_t> labels,
                               Tensor& adv) {
  // Targets are fixed from the CLEAN input's prediction so the attack
  // does not chase a moving goal while it perturbs.
  const auto targets =
      resolve_targets(model, x, labels, num_classes_, policy_);
  ops::copy(x, adv);
  for (std::size_t i = 0; i < iterations_; ++i) {
    targeted_step_into(model, adv, x, targets, eps_step_, eps_, adv,
                       scratch_);
  }
}

std::string TargetedBim::name() const {
  return "Targeted-BIM(" + std::to_string(iterations_) + ", eps=" +
         std::to_string(eps_) + ")";
}

float targeted_success_rate(nn::Sequential& model, const Tensor& clean,
                            const Tensor& adversarial,
                            std::span<const std::size_t> labels,
                            std::size_t num_classes, TargetPolicy policy) {
  SATD_EXPECT(clean.shape() == adversarial.shape(),
              "clean/adversarial shape mismatch");
  const auto targets =
      resolve_targets(model, clean, labels, num_classes, policy);
  const Tensor logits = model.forward(adversarial, /*training=*/false);
  const auto preds = ops::argmax_rows(logits);
  SATD_ENSURE(preds.size() == targets.size(), "batch size drift");
  if (preds.empty()) return 0.0f;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == targets[i]) ++hits;
  }
  return static_cast<float>(hits) / static_cast<float>(preds.size());
}

}  // namespace satd::attack
