#include "attack/pgd.h"

#include "attack/fgsm.h"
#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::attack {

Pgd::Pgd(float eps, std::size_t iterations, float eps_step, Rng& rng)
    : eps_(eps),
      iterations_(iterations),
      eps_step_(eps_step),
      rng_(rng.fork(0x96D)) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  SATD_EXPECT(iterations > 0, "PGD needs at least one iteration");
  SATD_EXPECT(eps_step >= 0.0f, "eps_step must be non-negative");
}

void Pgd::perturb_into(nn::Sequential& model, const Tensor& x,
                       std::span<const std::size_t> labels, Tensor& adv) {
  ops::copy(x, adv);
  float* pa = adv.raw();
  for (std::size_t i = 0, n = adv.numel(); i < n; ++i) {
    pa[i] += static_cast<float>(rng_.uniform(-eps_, eps_));
  }
  ops::project_linf(x, eps_, kPixelMin, kPixelMax, adv);
  for (std::size_t i = 0; i < iterations_; ++i) {
    Fgsm::step_into(model, adv, x, labels, eps_step_, eps_, adv, scratch_);
  }
}

std::string Pgd::name() const {
  return "PGD(" + std::to_string(iterations_) + ", eps=" +
         std::to_string(eps_) + ", step=" + std::to_string(eps_step_) + ")";
}

}  // namespace satd::attack
