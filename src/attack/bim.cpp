#include "attack/bim.h"

#include "attack/fgsm.h"
#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::attack {

Bim::Bim(float eps, std::size_t iterations)
    : Bim(eps, iterations,
          iterations > 0 ? eps / static_cast<float>(iterations) : 0.0f) {}

Bim::Bim(float eps, std::size_t iterations, float eps_step)
    : eps_(eps), iterations_(iterations), eps_step_(eps_step) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  SATD_EXPECT(iterations > 0, "BIM needs at least one iteration");
  SATD_EXPECT(eps_step >= 0.0f, "eps_step must be non-negative");
}

void Bim::perturb_into(nn::Sequential& model, const Tensor& x,
                       std::span<const std::size_t> labels, Tensor& adv) {
  ops::copy(x, adv);
  for (std::size_t i = 0; i < iterations_; ++i) {
    Fgsm::step_into(model, adv, x, labels, eps_step_, eps_, adv, scratch_);
  }
}

std::vector<Tensor> Bim::perturb_with_trace(
    nn::Sequential& model, const Tensor& x,
    std::span<const std::size_t> labels) {
  std::vector<Tensor> trace;
  trace.reserve(iterations_);
  Tensor adv = x;
  for (std::size_t i = 0; i < iterations_; ++i) {
    Fgsm::step_into(model, adv, x, labels, eps_step_, eps_, adv, scratch_);
    trace.push_back(adv);
  }
  return trace;
}

std::string Bim::name() const {
  return "BIM(" + std::to_string(iterations_) + ", eps=" +
         std::to_string(eps_) + ", step=" + std::to_string(eps_step_) + ")";
}

}  // namespace satd::attack
