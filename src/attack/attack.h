// Adversarial attack interface and shared gradient machinery.
//
// All attacks here are white-box l-infinity evasion attacks as defined in
// the paper (Section II): they perturb inputs within an eps-ball (and the
// valid pixel range [0, 1]) in directions given by the sign of the loss
// gradient with respect to the input.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/sequential.h"

namespace satd::attack {

/// Valid pixel range for all image data in this library.
inline constexpr float kPixelMin = 0.0f;
inline constexpr float kPixelMax = 1.0f;

/// Computes dLoss/dInput for a batch under softmax cross-entropy.
/// Leaves the model's parameter gradients zeroed (the backward pass
/// necessarily accumulates them; this helper cleans up so attacks are
/// side-effect free on the model).
Tensor input_gradient(nn::Sequential& model, const Tensor& x,
                      std::span<const std::size_t> labels);

/// Abstract untargeted attack.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Returns adversarial versions of `x` (same shape). Must keep every
  /// output pixel within [kPixelMin, kPixelMax] and within the attack's
  /// eps-ball around `x`.
  virtual Tensor perturb(nn::Sequential& model, const Tensor& x,
                         std::span<const std::size_t> labels) = 0;

  /// Total l-infinity budget.
  virtual float epsilon() const = 0;

  virtual std::string name() const = 0;
};

using AttackPtr = std::unique_ptr<Attack>;

}  // namespace satd::attack
