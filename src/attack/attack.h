// Adversarial attack interface and shared gradient machinery.
//
// All attacks here are white-box l-infinity evasion attacks as defined in
// the paper (Section II): they perturb inputs within an eps-ball (and the
// valid pixel range [0, 1]) in directions given by the sign of the loss
// gradient with respect to the input.
//
// Execution model: the primitive is the out-parameter perturb_into, and
// every attack instance owns a GradientScratch whose buffers (logits,
// loss gradient, input gradient) are reused across calls AND across the
// iterations of iterative attacks, so a steady-state BIM/PGD loop
// performs no heap allocation. The value-returning perturb is a thin
// wrapper for convenience call sites.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/loss.h"
#include "nn/sequential.h"

namespace satd::attack {

/// Valid pixel range for all image data in this library.
inline constexpr float kPixelMin = 0.0f;
inline constexpr float kPixelMax = 1.0f;

/// Reusable buffers for one input-gradient evaluation: the forward
/// logits, the loss result (value + dLoss/dLogits) and the input
/// gradient. Attacks keep one of these per instance so the per-iteration
/// tensors of BIM/PGD/MI-FGSM are allocated once and reused.
struct GradientScratch {
  Tensor logits;
  nn::LossResult loss;
  Tensor grad;  ///< dLoss/dInput, shape of the input batch
};

/// Computes dLoss/dInput for a batch under softmax cross-entropy.
/// Leaves the model's parameter gradients zeroed (the backward pass
/// necessarily accumulates them; this helper cleans up so attacks are
/// side-effect free on the model).
Tensor input_gradient(nn::Sequential& model, const Tensor& x,
                      std::span<const std::size_t> labels);

/// Buffer-reuse form: runs forward/loss/backward entirely through the
/// `scratch` buffers; the result lands in scratch.grad.
void input_gradient_into(nn::Sequential& model, const Tensor& x,
                         std::span<const std::size_t> labels,
                         GradientScratch& scratch);

/// Abstract untargeted attack.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Writes adversarial versions of `x` (same shape) into `adv`, which
  /// is resized on shape change and reused otherwise. Must keep every
  /// output pixel within [kPixelMin, kPixelMax] and within the attack's
  /// eps-ball around `x`. `adv` must not alias `x`.
  virtual void perturb_into(nn::Sequential& model, const Tensor& x,
                            std::span<const std::size_t> labels,
                            Tensor& adv) = 0;

  /// Value-returning convenience wrapper over perturb_into.
  Tensor perturb(nn::Sequential& model, const Tensor& x,
                 std::span<const std::size_t> labels) {
    Tensor adv;
    perturb_into(model, x, labels, adv);
    return adv;
  }

  /// Total l-infinity budget.
  virtual float epsilon() const = 0;

  virtual std::string name() const = 0;
};

using AttackPtr = std::unique_ptr<Attack>;

}  // namespace satd::attack
