// Fast Gradient Sign Method (Goodfellow et al. 2015).
#pragma once

#include "attack/attack.h"

namespace satd::attack {

/// Single-step attack: x' = clip(x + eps * sign(dL/dx)).
class Fgsm : public Attack {
 public:
  explicit Fgsm(float eps);

  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  float epsilon() const override { return eps_; }
  std::string name() const override;

  /// One FGSM step of size `step` starting from `x_start`, projected to
  /// the eps-ball around `x_origin` and [0,1]. This is the shared inner
  /// step of FGSM, BIM, PGD and the Proposed trainer's epoch-wise update.
  static Tensor step(nn::Sequential& model, const Tensor& x_start,
                     const Tensor& x_origin,
                     std::span<const std::size_t> labels, float step_size,
                     float eps);

  /// Buffer-reuse form of step: the gradient evaluation runs through
  /// `scratch` and the result lands in `adv`. `adv` MAY alias `x_start`
  /// (the in-place update iterative attacks use); it must not alias
  /// `x_origin`.
  static void step_into(nn::Sequential& model, const Tensor& x_start,
                        const Tensor& x_origin,
                        std::span<const std::size_t> labels, float step_size,
                        float eps, Tensor& adv, GradientScratch& scratch);

 private:
  float eps_;
  GradientScratch scratch_;
};

}  // namespace satd::attack
