#include "attack/fgsm.h"

#include "common/contract.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace satd::attack {

Fgsm::Fgsm(float eps) : eps_(eps) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
}

Tensor Fgsm::step(nn::Sequential& model, const Tensor& x_start,
                  const Tensor& x_origin,
                  std::span<const std::size_t> labels, float step_size,
                  float eps) {
  Tensor adv;
  GradientScratch scratch;
  step_into(model, x_start, x_origin, labels, step_size, eps, adv, scratch);
  return adv;
}

void Fgsm::step_into(nn::Sequential& model, const Tensor& x_start,
                     const Tensor& x_origin,
                     std::span<const std::size_t> labels, float step_size,
                     float eps, Tensor& adv, GradientScratch& scratch) {
  SATD_EXPECT(x_start.shape() == x_origin.shape(),
              "start/origin shape mismatch");
  SATD_EXPECT(step_size >= 0.0f && eps >= 0.0f, "negative step or eps");
  input_gradient_into(model, x_start, labels, scratch);
  ops::copy(x_start, adv);  // no-op when adv aliases x_start
  const float* pg = scratch.grad.raw();
  float* pa = adv.raw();
  parallel_for(adv.numel(), kElementGrain,
               [pg, pa, step_size](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const float s =
                       (pg[i] > 0.0f) ? 1.0f : (pg[i] < 0.0f ? -1.0f : 0.0f);
                   pa[i] += step_size * s;
                 }
               });
  ops::project_linf(x_origin, eps, kPixelMin, kPixelMax, adv);
}

void Fgsm::perturb_into(nn::Sequential& model, const Tensor& x,
                        std::span<const std::size_t> labels, Tensor& adv) {
  step_into(model, x, x, labels, eps_, eps_, adv, scratch_);
}

std::string Fgsm::name() const {
  return "FGSM(eps=" + std::to_string(eps_) + ")";
}

}  // namespace satd::attack
