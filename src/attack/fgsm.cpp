#include "attack/fgsm.h"

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::attack {

Fgsm::Fgsm(float eps) : eps_(eps) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
}

Tensor Fgsm::step(nn::Sequential& model, const Tensor& x_start,
                  const Tensor& x_origin,
                  std::span<const std::size_t> labels, float step_size,
                  float eps) {
  SATD_EXPECT(x_start.shape() == x_origin.shape(),
              "start/origin shape mismatch");
  SATD_EXPECT(step_size >= 0.0f && eps >= 0.0f, "negative step or eps");
  const Tensor g = input_gradient(model, x_start, labels);
  Tensor adv = x_start;
  const float* pg = g.raw();
  float* pa = adv.raw();
  for (std::size_t i = 0, n = adv.numel(); i < n; ++i) {
    const float s = (pg[i] > 0.0f) ? 1.0f : (pg[i] < 0.0f ? -1.0f : 0.0f);
    pa[i] += step_size * s;
  }
  ops::project_linf(x_origin, eps, kPixelMin, kPixelMax, adv);
  return adv;
}

Tensor Fgsm::perturb(nn::Sequential& model, const Tensor& x,
                     std::span<const std::size_t> labels) {
  return step(model, x, x, labels, eps_, eps_);
}

std::string Fgsm::name() const {
  return "FGSM(eps=" + std::to_string(eps_) + ")";
}

}  // namespace satd::attack
