#include "attack/noise.h"

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::attack {

RandomNoise::RandomNoise(float eps, Rng& rng, bool corners)
    : eps_(eps), rng_(rng.fork(0x015E)), corners_(corners) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
}

void RandomNoise::perturb_into(nn::Sequential& /*model*/, const Tensor& x,
                               std::span<const std::size_t> labels,
                               Tensor& adv) {
  SATD_EXPECT(x.shape()[0] == labels.size(), "batch/label size mismatch");
  ops::copy(x, adv);
  float* pa = adv.raw();
  for (std::size_t i = 0, n = adv.numel(); i < n; ++i) {
    const float d = corners_
                        ? static_cast<float>(rng_.sign()) * eps_
                        : static_cast<float>(rng_.uniform(-eps_, eps_));
    pa[i] += d;
  }
  ops::project_linf(x, eps_, kPixelMin, kPixelMax, adv);
}

std::string RandomNoise::name() const {
  return std::string("RandomNoise(eps=") + std::to_string(eps_) +
         (corners_ ? ", corners" : "") + ")";
}

}  // namespace satd::attack
