// Momentum Iterative FGSM (Dong et al. 2018).
//
// Iterative attack that accumulates a momentum of normalized gradients;
// included as an additional adversary for the robustness-generalization
// extension bench (not in the paper's tables).
#pragma once

#include "attack/attack.h"

namespace satd::attack {

/// MI-FGSM: g_{t+1} = mu * g_t + grad / ||grad||_1 ; x += step*sign(g).
class MiFgsm : public Attack {
 public:
  MiFgsm(float eps, std::size_t iterations, float eps_step,
         float momentum = 1.0f);

  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  float epsilon() const override { return eps_; }
  std::size_t iterations() const { return iterations_; }
  std::string name() const override;

 private:
  float eps_;
  std::size_t iterations_;
  float eps_step_;
  float momentum_;
  GradientScratch scratch_;
  Tensor velocity_;  // reused momentum accumulator
};

}  // namespace satd::attack
