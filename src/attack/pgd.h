// Projected Gradient Descent (Madry et al. 2017).
//
// BIM with a uniform random start inside the eps-ball. Not part of the
// paper's evaluation tables, but the natural "stronger iterative attack"
// extension its future-work section points at; the extension bench uses
// it to check that the Proposed defense generalizes beyond BIM.
#pragma once

#include "attack/attack.h"
#include "common/rng.h"

namespace satd::attack {

/// PGD: random start in the eps-ball, then `iterations` projected
/// gradient-sign steps of size eps_step.
class Pgd : public Attack {
 public:
  Pgd(float eps, std::size_t iterations, float eps_step, Rng& rng);

  /// Iterates in place: one perturbation buffer and one gradient scratch
  /// are reused across all steps (and across calls).
  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  float epsilon() const override { return eps_; }
  std::size_t iterations() const { return iterations_; }
  float step_size() const { return eps_step_; }
  std::string name() const override;

 private:
  float eps_;
  std::size_t iterations_;
  float eps_step_;
  Rng rng_;
  GradientScratch scratch_;
};

}  // namespace satd::attack
