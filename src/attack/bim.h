// Basic Iterative Method (Kurakin et al. 2016) — the paper's BIM(N).
#pragma once

#include <vector>

#include "attack/attack.h"

namespace satd::attack {

/// Iterative l-inf attack: N FGSM steps of size eps_step, each projected
/// onto the eps-ball around the clean input and onto [0,1].
///
/// The paper's notation BIM(N) fixes the total budget eps and uses
/// eps_step = eps / N (Section II); the two-argument constructor applies
/// that convention. The three-argument constructor decouples the step
/// size, which Section IV's analysis needs.
class Bim : public Attack {
 public:
  /// BIM(N) with the paper's eps_step = eps / N convention.
  Bim(float eps, std::size_t iterations);

  /// Fully general variant with an explicit per-step size.
  Bim(float eps, std::size_t iterations, float eps_step);

  /// Iterates in place: one perturbation buffer and one gradient scratch
  /// are reused across all N steps (and across calls).
  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  /// Like perturb, but also returns every intermediate iterate
  /// x_1 .. x_N (the quantity Figure 2 evaluates). trace[i] is the batch
  /// after i+1 iterations; trace.back() equals the final result.
  std::vector<Tensor> perturb_with_trace(nn::Sequential& model,
                                         const Tensor& x,
                                         std::span<const std::size_t> labels);

  float epsilon() const override { return eps_; }
  std::size_t iterations() const { return iterations_; }
  float step_size() const { return eps_step_; }
  std::string name() const override;

 private:
  float eps_;
  std::size_t iterations_;
  float eps_step_;
  GradientScratch scratch_;
};

}  // namespace satd::attack
