// Targeted l-inf attacks (Kurakin et al. 2016's "least-likely class"
// formulation) — extensions beyond the paper's untargeted evaluation.
//
// An untargeted attack ASCENDS the loss of the true label; a targeted
// attack DESCENDS the loss of a chosen target label, steering the
// prediction to a specific class. The library supports two target
// selection policies: the model's least-likely class for each input
// (the classic "step l.l." attack) and a fixed label offset
// (y + k mod num_classes), useful for controlled experiments.
#pragma once

#include <vector>

#include "attack/attack.h"

namespace satd::attack {

/// How targeted attacks choose their target class.
enum class TargetPolicy {
  kLeastLikely,  ///< the class the model currently rates least probable
  kNextClass,    ///< (true label + 1) mod num_classes
};

/// Returns the least-likely class per row of the model's prediction.
std::vector<std::size_t> least_likely_labels(nn::Sequential& model,
                                             const Tensor& x);

/// Resolves a target policy into concrete per-example target labels.
std::vector<std::size_t> resolve_targets(nn::Sequential& model,
                                         const Tensor& x,
                                         std::span<const std::size_t> labels,
                                         std::size_t num_classes,
                                         TargetPolicy policy);

/// One targeted descent step: x' = project(x_start - step * sign(dL_t/dx))
/// where L_t is the cross-entropy towards `targets`.
Tensor targeted_step(nn::Sequential& model, const Tensor& x_start,
                     const Tensor& x_origin,
                     std::span<const std::size_t> targets, float step_size,
                     float eps);

/// Buffer-reuse form of targeted_step. `adv` may alias `x_start` (the
/// in-place update TargetedBim uses); it must not alias `x_origin`.
void targeted_step_into(nn::Sequential& model, const Tensor& x_start,
                        const Tensor& x_origin,
                        std::span<const std::size_t> targets,
                        float step_size, float eps, Tensor& adv,
                        GradientScratch& scratch);

/// Single-step targeted FGSM.
class TargetedFgsm : public Attack {
 public:
  TargetedFgsm(float eps, std::size_t num_classes,
               TargetPolicy policy = TargetPolicy::kLeastLikely);

  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  float epsilon() const override { return eps_; }
  std::string name() const override;

 private:
  float eps_;
  std::size_t num_classes_;
  TargetPolicy policy_;
  GradientScratch scratch_;
};

/// Iterative targeted attack (targets fixed from the initial prediction,
/// per Kurakin's iterative least-likely-class method).
class TargetedBim : public Attack {
 public:
  TargetedBim(float eps, std::size_t iterations, float eps_step,
              std::size_t num_classes,
              TargetPolicy policy = TargetPolicy::kLeastLikely);

  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  float epsilon() const override { return eps_; }
  std::size_t iterations() const { return iterations_; }
  std::string name() const override;

 private:
  float eps_;
  std::size_t iterations_;
  float eps_step_;
  std::size_t num_classes_;
  TargetPolicy policy_;
  GradientScratch scratch_;
};

/// Fraction of examples the attack successfully steered to its target.
float targeted_success_rate(nn::Sequential& model, const Tensor& clean,
                            const Tensor& adversarial,
                            std::span<const std::size_t> labels,
                            std::size_t num_classes, TargetPolicy policy);

}  // namespace satd::attack
