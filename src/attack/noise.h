// Random-noise baseline "attack".
//
// Perturbs each pixel by a uniformly random amount in [-eps, +eps]
// (or by exactly +-eps with `corners`). Not an attack in any real
// sense — it exists to quantify how much of a model's accuracy drop is
// due to the ADVERSARIAL direction of FGSM/BIM rather than to mere
// input corruption of the same magnitude. A defense evaluation that
// cannot beat this baseline is measuring noise robustness, not
// adversarial robustness.
#pragma once

#include "attack/attack.h"
#include "common/rng.h"

namespace satd::attack {

/// Uniform (or corner) random perturbation of l-inf magnitude <= eps.
class RandomNoise : public Attack {
 public:
  /// `corners` draws each coordinate as exactly +-eps (the distribution
  /// FGSM's outputs live in), otherwise uniform in [-eps, +eps].
  RandomNoise(float eps, Rng& rng, bool corners = false);

  void perturb_into(nn::Sequential& model, const Tensor& x,
                    std::span<const std::size_t> labels,
                    Tensor& adv) override;

  float epsilon() const override { return eps_; }
  std::string name() const override;

 private:
  float eps_;
  Rng rng_;
  bool corners_;
};

}  // namespace satd::attack
