#include "attack/restart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "attack/pgd.h"
#include "common/contract.h"
#include "common/rng.h"

namespace satd::attack {

RestartPgd::RestartPgd(float eps, std::size_t iterations, float eps_step,
                       std::size_t restarts, std::uint64_t seed)
    : eps_(eps),
      iterations_(iterations),
      eps_step_(eps_step > 0.0f
                    ? eps_step
                    : eps / static_cast<float>(iterations)),
      restarts_(restarts),
      seed_(seed) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  SATD_EXPECT(iterations > 0, "restart PGD needs at least one iteration");
  SATD_EXPECT(restarts > 0, "restart PGD needs at least one restart");
}

void per_row_cross_entropy(const Tensor& logits,
                           std::span<const std::size_t> labels,
                           std::vector<float>& out) {
  const auto& dims = logits.shape().dims();
  SATD_EXPECT(dims.size() == 2, "logits must be [N, K]");
  const std::size_t n = dims[0], k = dims[1];
  SATD_EXPECT(labels.size() == n, "label count must match logit rows");
  out.resize(n);
  const float* p = logits.raw();
  for (std::size_t i = 0; i < n; ++i) {
    SATD_EXPECT(labels[i] < k, "label out of range");
    const float* row = p + i * k;
    float mx = row[0];
    for (std::size_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double acc = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      acc += std::exp(static_cast<double>(row[j] - mx));
    }
    out[i] = static_cast<float>(mx + std::log(acc)) - row[labels[i]];
  }
}

void RestartPgd::perturb_restart_into(nn::Sequential& model, const Tensor& x,
                                      std::span<const std::size_t> labels,
                                      std::size_t restart, Tensor& adv) {
  SATD_EXPECT(restart < restarts_, "restart index out of range");
  // The start-point stream depends only on (seed, restart): a fresh Pgd
  // per call keeps this attack stateless across calls, which is what
  // makes a resumed gauntlet cell bit-identical to an uninterrupted one.
  Rng base(seed_ ^ (0x9E3779B97F4A7C15ULL * (restart + 1)));
  Pgd pgd(eps_, iterations_, eps_step_, base);
  pgd.perturb_into(model, x, labels, adv);
}

void RestartPgd::perturb_into(nn::Sequential& model, const Tensor& x,
                              std::span<const std::size_t> labels,
                              Tensor& adv) {
  const std::size_t n = labels.size();
  std::vector<float> loss;
  best_loss_.assign(n, -std::numeric_limits<float>::infinity());
  for (std::size_t r = 0; r < restarts_; ++r) {
    perturb_restart_into(model, x, labels, r, candidate_);
    model.forward_into(candidate_, logits_, /*training=*/false);
    per_row_cross_entropy(logits_, labels, loss);
    if (r == 0) {
      // First restart seeds the running best (and sizes `adv`).
      adv = candidate_;
      best_loss_ = loss;
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Strict > keeps the earliest restart on ties, a fixed rule that
      // makes the selection deterministic.
      if (loss[i] > best_loss_[i]) {
        best_loss_[i] = loss[i];
        adv.set_row(i, candidate_.slice_row(i));
      }
    }
  }
}

std::string RestartPgd::name() const {
  return "PGD-R" + std::to_string(restarts_) + "(" +
         std::to_string(iterations_) + ", eps=" + std::to_string(eps_) +
         ", step=" + std::to_string(eps_step_) + ")";
}

}  // namespace satd::attack
