#include "attack/mifgsm.h"

#include <cmath>

#include "common/contract.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace satd::attack {

MiFgsm::MiFgsm(float eps, std::size_t iterations, float eps_step,
               float momentum)
    : eps_(eps),
      iterations_(iterations),
      eps_step_(eps_step),
      momentum_(momentum) {
  SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
  SATD_EXPECT(iterations > 0, "MI-FGSM needs at least one iteration");
  SATD_EXPECT(eps_step >= 0.0f, "eps_step must be non-negative");
  SATD_EXPECT(momentum >= 0.0f, "momentum must be non-negative");
}

void MiFgsm::perturb_into(nn::Sequential& model, const Tensor& x,
                          std::span<const std::size_t> labels, Tensor& adv) {
  ops::copy(x, adv);
  velocity_.ensure_shape(x.shape());
  velocity_.fill(0.0f);
  for (std::size_t t = 0; t < iterations_; ++t) {
    input_gradient_into(model, adv, labels, scratch_);
    const Tensor& g = scratch_.grad;
    // Normalize per batch by the mean absolute gradient so the momentum
    // accumulation is scale free (the l1 normalization of the paper).
    const float norm = ops::l1_norm(g) / static_cast<float>(g.numel());
    const float inv = norm > 0.0f ? 1.0f / norm : 0.0f;
    float* pv = velocity_.raw();
    const float* pg = g.raw();
    float* pa = adv.raw();
    const float momentum = momentum_;
    const float eps_step = eps_step_;
    parallel_for(adv.numel(), kElementGrain,
                 [pv, pg, pa, inv, momentum,
                  eps_step](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     pv[i] = momentum * pv[i] + pg[i] * inv;
                     const float s =
                         (pv[i] > 0.0f) ? 1.0f : (pv[i] < 0.0f ? -1.0f : 0.0f);
                     pa[i] += eps_step * s;
                   }
                 });
    ops::project_linf(x, eps_, kPixelMin, kPixelMax, adv);
  }
}

std::string MiFgsm::name() const {
  return "MI-FGSM(" + std::to_string(iterations_) + ", eps=" +
         std::to_string(eps_) + ")";
}

}  // namespace satd::attack
