#include "attack/attack.h"

#include <utility>

#include "common/contract.h"

namespace satd::attack {

Tensor input_gradient(nn::Sequential& model, const Tensor& x,
                      std::span<const std::size_t> labels) {
  GradientScratch scratch;
  input_gradient_into(model, x, labels, scratch);
  return std::move(scratch.grad);
}

void input_gradient_into(nn::Sequential& model, const Tensor& x,
                         std::span<const std::size_t> labels,
                         GradientScratch& scratch) {
  SATD_EXPECT(x.shape().rank() >= 2, "input batch must have a batch dim");
  SATD_EXPECT(x.shape()[0] == labels.size(), "batch/label size mismatch");
  model.forward_into(x, scratch.logits, /*training=*/false);
  nn::softmax_cross_entropy_into(scratch.logits, labels, scratch.loss);
  model.backward_into(scratch.loss.grad_logits, scratch.grad);
  model.zero_grad();  // discard parameter gradients accumulated en route
}

}  // namespace satd::attack
