#include "attack/attack.h"

#include "common/contract.h"
#include "nn/loss.h"

namespace satd::attack {

Tensor input_gradient(nn::Sequential& model, const Tensor& x,
                      std::span<const std::size_t> labels) {
  SATD_EXPECT(x.shape().rank() >= 2, "input batch must have a batch dim");
  SATD_EXPECT(x.shape()[0] == labels.size(), "batch/label size mismatch");
  const Tensor logits = model.forward(x, /*training=*/false);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  Tensor gx = model.backward(loss.grad_logits);
  model.zero_grad();  // discard parameter gradients accumulated en route
  return gx;
}

}  // namespace satd::attack
