// Kill-9-safe named-semaphore slot gate for multi-tenant spooling.
//
// Several bench_all invocations on one machine must cooperate: the total
// number of concurrently running experiment children is bounded by a
// POSIX named semaphore (sem_open), so independent spoolers queue
// against the same machine-wide budget instead of oversubscribing it.
//
// The classic failure mode of a named semaphore is the token leak: a
// holder that dies on SIGKILL never sem_post()s, and the budget shrinks
// forever. The gate closes that hole with a holder registry:
//
//   - Before sem_trywait, the acquiring process creates a *holder file*
//     in a shared registry directory and takes a flock(LOCK_EX) on it.
//     The kernel releases flocks on process death — even kill -9 — so a
//     live holder's file is always locked and a dead holder's never is.
//   - repair() (run by any waiter, serialized by a registry-wide lock
//     file) prunes every holder file it can flock (owner dead), then
//     computes leaked = slots - sem_value - live_holders and posts the
//     difference back. A file created before a failed trywait counts as
//     live-but-tokenless and simply makes the estimate conservative —
//     repair never over-posts.
//
// try_acquire() is non-blocking on purpose: the spooler interleaves slot
// acquisition with child polling in its own event loop, so the gate
// never needs to block the supervisor.
#pragma once

#include <string>
#include <vector>

namespace satd::runtime {

/// One process's view of a machine-wide concurrency budget.
class SlotGate {
 public:
  /// Opens (creating if absent) the named semaphore `name` with `slots`
  /// initial tokens and its holder registry. `name` is sanitized into a
  /// valid sem_open name ("/" + [A-Za-z0-9_.-]). `registry_dir` defaults
  /// to <tmp>/satd_gate_<sanitized-name>. If the semaphore already
  /// exists, its current budget wins and `slots` is only recorded for
  /// repair accounting — first creator fixes the budget.
  /// Throws std::runtime_error when the semaphore cannot be opened.
  SlotGate(const std::string& name, unsigned slots,
           std::string registry_dir = "");

  /// Releases every held token (normal-exit path) and closes the
  /// semaphore. Does NOT unlink it: the budget outlives one invocation.
  ~SlotGate();

  SlotGate(const SlotGate&) = delete;
  SlotGate& operator=(const SlotGate&) = delete;

  /// Tries to take one token without blocking. Returns true on success.
  bool try_acquire();

  /// Returns one token. Must be balanced with a successful try_acquire.
  void release();

  /// Scans the holder registry for dead holders and restores their
  /// leaked tokens. Safe (and cheap) to call any time; waiters call it
  /// between failed try_acquire attempts.
  void repair();

  /// Tokens this SlotGate instance currently holds.
  std::size_t held() const { return held_.size(); }

  /// Current semaphore value (free tokens) — diagnostic/tests.
  int value() const;

  /// The budget recorded at creation (or adopted from the registry).
  unsigned slots() const { return slots_; }

  const std::string& sem_name() const { return sem_name_; }
  const std::string& registry_dir() const { return registry_dir_; }

  /// Simulates kill -9 for tests: drops every held token's file lock
  /// and forgets it WITHOUT sem_post or unlink — exactly the state a
  /// SIGKILLed holder leaves behind. repair() must recover the tokens.
  void abandon_for_test();

  /// Removes the named semaphore and its registry from the machine
  /// (tests; production budgets persist).
  static void unlink(const std::string& name, const std::string&
                     registry_dir = "");

  /// The sem_open name `name` maps to (exposed for tests).
  static std::string sanitize_name(const std::string& name);

 private:
  struct Held {
    int fd = -1;          // flock-held holder file
    std::string path;
  };

  std::string make_holder_file();  // process-wide-unique holder path
  static std::string default_registry(const std::string& sem_name);

  std::string sem_name_;
  std::string registry_dir_;
  unsigned slots_ = 0;
  void* sem_ = nullptr;  // sem_t*, kept opaque to spare headers
  std::vector<Held> held_;
};

}  // namespace satd::runtime
