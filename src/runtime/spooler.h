// Multi-process job spooler: fork/exec isolation for the experiment
// matrix.
//
// The in-process Supervisor (runtime/supervisor.h) shares one address
// space with its jobs, so a segfault, OOM-kill or runaway attack loop in
// any job takes the whole matrix down. The Spooler runs every attempt as
// a supervised CHILD PROCESS instead (bench_all re-enters itself with
// `--run-job <name>`), which buys:
//
//   - Crash isolation: a child can die of anything — signal, OOM, hard
//     hang — and the spooler just reaps it, journals the failure kind
//     (FAILED / TIMEOUT / CRASHED + exit status) and retries on the
//     seeded backoff. Supervisor state can never be corrupted by a job.
//   - Hard watchdogs: a child past its deadline (plus kill_grace for the
//     cooperative stop check to act) is SIGKILLed, not asked nicely.
//   - A machine-wide concurrency budget: children only launch under a
//     named-semaphore slot gate (runtime/semaphore.h), so several
//     bench_all invocations cooperate as a multi-tenant farm.
//   - A core budget: each child is pinned to its own CPU set
//     (sched_setaffinity) with SATD_THREADS exported to match, so
//     children never fight over cores.
//   - Resource accounting: peak RSS (periodic /proc sampling merged with
//     wait4 ru_maxrss), wall/user/sys time and the assigned core set are
//     journaled per attempt and surface in the report and bench JSON.
//   - kill-9-of-anything recovery: SIGKILL a child — it is retried;
//     SIGKILL the spooler — a rerun resumes from the manifest journal
//     and every RUNNING record's (pid, start-time) identity is checked
//     against /proc: a still-live orphan is ADOPTED (supervised to
//     completion, outputs honored), a dead one is declared crashed and
//     retried. Either way the rerun's artifacts are bit-identical,
//     because jobs are deterministic and completed work is cached.
//
// All process operations go through an injectable ProcessRunner
// (runtime/process.h), so the entire state machine is unit-testable on a
// FakeClock with scripted fake children — no real timing anywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "runtime/job.h"
#include "runtime/manifest.h"
#include "runtime/process.h"
#include "runtime/report.h"

namespace satd::runtime {

class SlotGate;

/// The multi-process orchestrator. Register jobs with add(), then run()
/// once. Jobs do not need a `run` function — the SpawnFactory says how
/// to launch each attempt as a child process.
class Spooler {
 public:
  /// Builds the child command for one attempt of a job (argv, extra env,
  /// log redirection). The spooler itself fills in the CPU set and the
  /// matching SATD_THREADS when a core budget is configured.
  using SpawnFactory =
      std::function<SpawnSpec(const Job& job, std::size_t attempt)>;

  struct Options {
    /// Journal path; empty = memory-only (no resume across processes).
    std::string manifest_path;
    /// Identifies the run config; a manifest with a different
    /// fingerprint is ignored on load.
    std::string fingerprint = "default";
    BackoffPolicy backoff{};
    std::uint64_t backoff_seed = 0x5AD0FFULL;
    /// Borrowed time source; nullptr = the shared SystemClock.
    Clock* clock = nullptr;
    /// Borrowed process layer; nullptr = the shared ForkExecRunner.
    ProcessRunner* runner = nullptr;

    /// Concurrent children THIS spooler may run.
    std::size_t slots = 2;
    /// CPU ids handed out to children, cores.size()/slots at a time;
    /// empty = no affinity pinning and SATD_THREADS is left alone.
    std::vector<int> cores;
    /// Named machine-wide slot gate; empty = this invocation only
    /// respects its own `slots` budget.
    std::string gate_name;
    /// Holder-registry override for the gate (tests).
    std::string gate_registry;
    /// Directory for per-child stdout/stderr logs; empty = inherit.
    std::string log_dir;

    /// Event-loop pause when nothing progressed, seconds.
    double poll_interval = 0.05;
    /// Cadence of /proc peak-RSS sampling per child, seconds.
    double rss_sample_interval = 0.25;
    /// Grace past the deadline before SIGKILL (gives the child's
    /// cooperative stop check a chance to exit cleanly first).
    double kill_grace = 5.0;
    /// Watchdog for adopted orphans whose job has no deadline, seconds.
    double orphan_deadline = 3600.0;
  };

  Spooler(Options options, SpawnFactory factory);
  ~Spooler();

  /// Registers a job. Names must be unique and non-empty; `job.run` is
  /// ignored (children are spawned via the factory).
  void add(Job job);

  /// Executes the matrix. Throws std::invalid_argument on an unknown
  /// dependency or cycle; propagates SimulatedCrashError from the chaos
  /// hook (leaving children running and the journal mid-flight, exactly
  /// like kill -9). Everything else degrades instead of throwing.
  MatrixReport run();

  const Manifest& manifest() const { return manifest_; }

  /// Exit code a child uses to report a *cooperative* watchdog overrun
  /// (it noticed its own deadline and bailed at a safe boundary).
  /// BSD's EX_TEMPFAIL — retryable by convention.
  static constexpr int kExitOverrun = 75;

 private:
  struct Child;  // one running (or adopted) child process

  bool outputs_present(const Job& job) const;
  std::size_t cores_per_child() const;
  void lock_manifest();
  void reap(Child& child, const ChildStatus& status);
  void finish_failure(std::size_t idx, std::size_t attempt,
                      FailureKind kind, const std::string& reason,
                      int exit_code, int exit_signal,
                      const ResourceUsage& usage,
                      const std::vector<int>& cores);
  void finish_done(std::size_t idx, std::size_t attempt, bool adopted,
                   const ResourceUsage& usage,
                   const std::vector<int>& cores);

  Options options_;
  SpawnFactory factory_;
  Clock& clock_;
  ProcessRunner& runner_;
  Backoff backoff_;
  Manifest manifest_;
  std::vector<Job> jobs_;
  std::unique_ptr<SlotGate> gate_;

  // run() state
  struct Track;
  std::vector<Track> track_;
  std::vector<Child> children_;
  std::vector<int> free_cores_;
  double next_gate_repair_ = 0.0;
  /// flock on <manifest>.lock for the spooler's lifetime: two live
  /// spoolers must never share a journal (their atomic writes would
  /// race). kill -9 drops the lock, so resume is never blocked.
  int manifest_lock_fd_ = -1;
};

// ---- chaos fault injection (tests only) ----
namespace fault {

/// Arms a simulated `kill -9` OF THE SPOOLER ITSELF: right after the
/// named job's child for this attempt has been spawned and journaled
/// RUNNING, run() unwinds with SimulatedCrashError (supervisor.h),
/// leaving the child alive and orphaned — exactly the state a real
/// SIGKILL leaves. Cleared by disarm_spool_faults().
void arm_spool_crash(const std::string& job, std::size_t attempt = 1);

/// Clears all armed spooler faults.
void disarm_spool_faults();

}  // namespace fault

}  // namespace satd::runtime
