#include "runtime/report.h"

#include <algorithm>
#include <cstring>
#include <csignal>
#include <sstream>

namespace satd::runtime {

std::string describe_exit(int exit_code, int exit_signal) {
  if (exit_signal > 0) {
    std::string text = "signal " + std::to_string(exit_signal);
    if (const char* name = strsignal(exit_signal)) {
      text += " (SIG";
      // strsignal gives "Killed"; sigabbrev_np is glibc>=2.32, so map the
      // common ones by hand and fall back to the description.
      switch (exit_signal) {
        case SIGKILL: text += "KILL)"; break;
        case SIGSEGV: text += "SEGV)"; break;
        case SIGABRT: text += "ABRT)"; break;
        case SIGTERM: text += "TERM)"; break;
        case SIGINT: text += "INT)"; break;
        case SIGBUS: text += "BUS)"; break;
        default:
          text.resize(text.size() - 4);  // drop " (SIG"
          text += std::string(" (") + name + ")";
          break;
      }
    }
    return text;
  }
  if (exit_code != 0) return "exit " + std::to_string(exit_code);
  return "";
}

std::size_t MatrixReport::done() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(), [](const JobOutcome& j) {
        return j.state == JobState::kDone;
      }));
}

std::size_t MatrixReport::degraded() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(), [](const JobOutcome& j) {
        return j.state == JobState::kDegraded;
      }));
}

std::string MatrixReport::to_string() const {
  std::ostringstream ss;
  ss << "supervised matrix: " << done() << "/" << jobs.size() << " done";
  if (degraded() > 0) ss << ", " << degraded() << " DEGRADED";
  ss << "\n";
  for (const auto& job : jobs) {
    ss << "  " << runtime::to_string(job.state) << "  " << job.name
       << "  attempts=" << job.attempts;
    if (job.resumed) ss << "  (resumed)";
    if (!job.cores.empty()) {
      ss << "  cores=";
      for (std::size_t i = 0; i < job.cores.size(); ++i) {
        if (i > 0) ss << ",";
        ss << job.cores[i];
      }
    }
    if (job.usage.any()) ss << "  {" << job.usage.to_string() << "}";
    if (job.kind != FailureKind::kNone) {
      ss << "  " << runtime::to_string(job.kind);
      const std::string exit = describe_exit(job.exit_code, job.exit_signal);
      if (!exit.empty()) ss << "(" << exit << ")";
    }
    if (!job.reason.empty()) ss << "  [" << job.reason << "]";
    ss << "\n";
  }
  return ss.str();
}

}  // namespace satd::runtime
