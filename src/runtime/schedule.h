// Deterministic dependency scheduling shared by the Supervisor (which
// runs jobs in-process, one at a time) and the Spooler (which fork/execs
// them concurrently under a slot budget).
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/job.h"

namespace satd::runtime {

/// Stable topological order of the job graph: Kahn's algorithm, always
/// draining the lowest-index ready job, so the schedule is deterministic
/// in registration order. Throws std::invalid_argument on an unknown
/// dependency name or a cycle.
std::vector<std::size_t> topological_order(const std::vector<Job>& jobs);

}  // namespace satd::runtime
