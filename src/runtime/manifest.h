// Crash-only durable job journal for the supervisor.
//
// The manifest records, for every job of a supervised run, its lifecycle
// state, attempt count, last failure reason and declared output files.
// Every state transition rewrites the whole journal atomically through
// common/durable_io (write-to-tmp + fsync + rename + parent-dir fsync,
// CRC-framed), so the on-disk journal is always a consistent snapshot of
// some prefix of the run — `kill -9` at any instant leaves either the
// previous snapshot or the new one, never a torn file.
//
// Recovery is crash-only: there is no shutdown path to get right. A rerun
// loads the journal; jobs recorded DONE (with outputs still present) are
// skipped, a job recorded RUNNING crashed mid-attempt and resumes with
// that attempt counted against its budget, everything else starts fresh.
// A corrupt journal is quarantined (`*.corrupt`) and treated as absent;
// a fingerprint mismatch (the run's config changed) also starts fresh.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/job.h"

namespace satd::runtime {

/// Journal entry for one job.
struct JobRecord {
  std::string name;
  JobState state = JobState::kPending;
  std::size_t attempts = 0;  ///< attempts started (incl. a crashed one)
  std::string reason;        ///< last failure/degradation reason
  std::vector<std::string> outputs;
};

/// The durable journal. With an empty path the manifest is memory-only
/// (used by tests and ad-hoc supervisors); all operations work the same
/// but nothing touches disk.
class Manifest {
 public:
  /// `fingerprint` identifies the run configuration (scale, seed, model
  /// ...). A journal written under a different fingerprint is ignored on
  /// load so stale state can never satisfy a changed matrix.
  Manifest(std::string path, std::string fingerprint);

  /// Adopts the on-disk journal if present, intact and fingerprint-
  /// matching. Returns true when prior state was adopted. A damaged
  /// journal is renamed `<path>.corrupt` and ignored (fresh start).
  bool load();

  /// Upserts a record and durably rewrites the journal.
  void record(JobRecord rec);

  /// Looks up a record by job name; nullptr when absent.
  const JobRecord* find(const std::string& name) const;

  const std::vector<JobRecord>& records() const { return records_; }
  const std::string& path() const { return path_; }
  const std::string& fingerprint() const { return fingerprint_; }

 private:
  void flush() const;

  std::string path_;
  std::string fingerprint_;
  std::vector<JobRecord> records_;
};

}  // namespace satd::runtime
