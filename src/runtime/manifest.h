// Crash-only durable job journal for the supervisor.
//
// The manifest records, for every job of a supervised run, its lifecycle
// state, attempt count, last failure reason and declared output files.
// Every state transition rewrites the whole journal atomically through
// common/durable_io (write-to-tmp + fsync + rename + parent-dir fsync,
// CRC-framed), so the on-disk journal is always a consistent snapshot of
// some prefix of the run — `kill -9` at any instant leaves either the
// previous snapshot or the new one, never a torn file.
//
// Recovery is crash-only: there is no shutdown path to get right. A rerun
// loads the journal; jobs recorded DONE (with outputs still present) are
// skipped, a job recorded RUNNING crashed mid-attempt and resumes with
// that attempt counted against its budget, everything else starts fresh.
// A corrupt journal is quarantined (`*.corrupt`) and treated as absent;
// a fingerprint mismatch (the run's config changed) also starts fresh.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/job.h"
#include "runtime/rusage.h"

namespace satd::runtime {

/// Journal entry for one job.
///
/// Format v2 ("SATDMAN2") extends the v1 lifecycle triple with process
/// supervision fields: the failure kind (FAILED vs TIMEOUT vs CRASHED),
/// the child's exit code / terminating signal, the (pid, start-time)
/// identity a resumed spooler needs to adopt or declare dead an orphaned
/// child, the CPU set the attempt was pinned to, and its measured
/// resource cost. v1 journals load with these fields defaulted.
struct JobRecord {
  JobRecord() = default;
  JobRecord(std::string name_, JobState state_, std::size_t attempts_,
            std::string reason_, std::vector<std::string> outputs_)
      : name(std::move(name_)),
        state(state_),
        attempts(attempts_),
        reason(std::move(reason_)),
        outputs(std::move(outputs_)) {}

  std::string name;
  JobState state = JobState::kPending;
  std::size_t attempts = 0;  ///< attempts started (incl. a crashed one)
  std::string reason;        ///< last failure/degradation reason
  std::vector<std::string> outputs;

  FailureKind kind = FailureKind::kNone;  ///< last attempt's failure kind
  int exit_code = 0;         ///< child exit code, 0 when n/a
  int exit_signal = 0;       ///< terminating signal, 0 = none
  int pid = 0;               ///< child pid while RUNNING (spooled jobs)
  std::string start_id;      ///< /proc start-time identity of that pid
  std::vector<int> cores;    ///< CPU set assigned to the attempt
  ResourceUsage usage;       ///< measured cost of the last attempt
};

/// The durable journal. With an empty path the manifest is memory-only
/// (used by tests and ad-hoc supervisors); all operations work the same
/// but nothing touches disk.
class Manifest {
 public:
  /// `fingerprint` identifies the run configuration (scale, seed, model
  /// ...). A journal written under a different fingerprint is ignored on
  /// load so stale state can never satisfy a changed matrix.
  Manifest(std::string path, std::string fingerprint);

  /// Adopts the on-disk journal if present, intact and fingerprint-
  /// matching. Returns true when prior state was adopted. A damaged
  /// journal is renamed `<path>.corrupt` and ignored (fresh start).
  bool load();

  /// Upserts a record and durably rewrites the journal.
  void record(JobRecord rec);

  /// Looks up a record by job name; nullptr when absent.
  const JobRecord* find(const std::string& name) const;

  const std::vector<JobRecord>& records() const { return records_; }
  const std::string& path() const { return path_; }
  const std::string& fingerprint() const { return fingerprint_; }

 private:
  void flush() const;

  std::string path_;
  std::string fingerprint_;
  std::vector<JobRecord> records_;
};

}  // namespace satd::runtime
