#include "runtime/supervisor.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <sstream>

#include "common/contract.h"
#include "common/log.h"
#include "runtime/schedule.h"

namespace satd::runtime {

namespace fs = std::filesystem;

namespace {

// ---- chaos registry (tests only, single-threaded by design) ----

enum class FaultKind { kCrash, kHang };

struct ArmedFault {
  std::string job;
  std::size_t attempt;
  FaultKind kind;
};

std::vector<ArmedFault>& armed_faults() {
  static std::vector<ArmedFault> faults;
  return faults;
}

/// Consumes (one-shot) an armed fault matching this attempt, if any.
bool take_fault(const std::string& job, std::size_t attempt,
                FaultKind kind) {
  auto& faults = armed_faults();
  for (auto it = faults.begin(); it != faults.end(); ++it) {
    if (it->kind == kind && it->job == job && it->attempt == attempt) {
      faults.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace

namespace fault {

void arm_job_crash(const std::string& job, std::size_t attempt) {
  armed_faults().push_back({job, attempt, FaultKind::kCrash});
}

void arm_job_hang(const std::string& job, std::size_t attempt) {
  armed_faults().push_back({job, attempt, FaultKind::kHang});
}

void disarm() { armed_faults().clear(); }

}  // namespace fault

Supervisor::Supervisor(Options options)
    : options_(std::move(options)),
      clock_(options_.clock ? *options_.clock : SystemClock::instance()),
      backoff_(options_.backoff, options_.backoff_seed),
      manifest_(options_.manifest_path, options_.fingerprint) {}

void Supervisor::add(Job job) {
  SATD_EXPECT(!job.name.empty(), "job needs a name");
  SATD_EXPECT(static_cast<bool>(job.run), "job needs a run function");
  SATD_EXPECT(job.max_attempts > 0, "job needs at least one attempt");
  for (const auto& existing : jobs_) {
    SATD_EXPECT(existing.name != job.name,
                "duplicate job name: " + job.name);
  }
  jobs_.push_back(std::move(job));
}

bool Supervisor::outputs_present(const Job& job) const {
  for (const auto& out : job.outputs) {
    if (!fs::exists(out)) return false;
  }
  return true;
}

MatrixReport Supervisor::run() {
  const std::vector<std::size_t> order = topological_order(jobs_);
  if (manifest_.load()) {
    log::info() << "supervisor: adopted manifest " << manifest_.path()
                << " (" << manifest_.records().size() << " prior records)";
  }

  std::vector<JobOutcome> outcomes(jobs_.size());
  for (std::size_t idx : order) {
    const Job& job = jobs_[idx];
    JobOutcome& outcome = outcomes[idx];
    outcome.name = job.name;

    // A job whose dependency did not finish degrades instead of running
    // against missing inputs; independent jobs are unaffected.
    const char* broken_dep = nullptr;
    for (const auto& dep : job.deps) {
      const JobRecord* rec = manifest_.find(dep);
      if (rec == nullptr || rec->state != JobState::kDone) {
        broken_dep = dep.c_str();
        break;
      }
    }
    if (broken_dep != nullptr) {
      outcome.state = JobState::kDegraded;
      outcome.reason = std::string("dependency not satisfied: ") + broken_dep;
      manifest_.record({job.name, JobState::kDegraded, 0, outcome.reason,
                        job.outputs});
      log::warn() << "supervisor: " << job.name << " degraded ("
                  << outcome.reason << ")";
      continue;
    }

    // Crash-only resume: a DONE record whose outputs survive is adopted
    // verbatim — the job (and its training cost) is skipped entirely.
    const JobRecord* prior = manifest_.find(job.name);
    if (prior != nullptr && prior->state == JobState::kDone) {
      if (outputs_present(job)) {
        outcome.state = JobState::kDone;
        outcome.attempts = prior->attempts;
        outcome.resumed = true;
        log::info() << "supervisor: " << job.name
                    << " already done, skipping";
        continue;
      }
      log::warn() << "supervisor: " << job.name
                  << " recorded done but outputs are missing; re-running";
    }

    // A RUNNING record means the process died mid-attempt: that attempt
    // counts against the budget, and the journal is amended to say so —
    // CRASHED, not a generic failure — so a postmortem can tell a kill-9
    // from an ordinary error. FAILED/DEGRADED records belong to a
    // previous supervision episode and get a fresh budget (the operator
    // re-launched the matrix on purpose).
    std::size_t attempts = 0;
    if (prior != nullptr && prior->state == JobState::kRunning) {
      attempts = prior->attempts;
      JobRecord crashed = *prior;
      crashed.state = JobState::kFailed;
      crashed.kind = FailureKind::kCrashed;
      crashed.reason = "crashed: process died mid-attempt";
      manifest_.record(std::move(crashed));
      log::warn() << "supervisor: " << job.name << " attempt " << attempts
                  << " crashed in a previous run; retrying";
    }

    for (;;) {
      ++attempts;
      manifest_.record(
          {job.name, JobState::kRunning, attempts, "", job.outputs});

      if (take_fault(job.name, attempts, FaultKind::kCrash)) {
        // Simulated SIGKILL: unwind with the journal showing the attempt
        // in flight, exactly as a dead process would leave it.
        throw SimulatedCrashError("injected crash during " + job.name +
                                  " attempt " + std::to_string(attempts));
      }

      const double deadline_at =
          job.deadline_seconds > kNoDeadline
              ? clock_.now() + job.deadline_seconds
              : std::numeric_limits<double>::infinity();
      JobContext ctx(clock_, deadline_at);

      JobResult result;
      if (take_fault(job.name, attempts, FaultKind::kHang)) {
        // Simulated hang: the attempt consumes its whole watchdog budget
        // and produces nothing.
        clock_.sleep_for(job.deadline_seconds > kNoDeadline
                             ? job.deadline_seconds * 1.25
                             : fault::kHangForeverSeconds);
        result = JobResult::overrun("injected hang");
      } else {
        try {
          result = job.run(ctx);
        } catch (const SimulatedCrashError&) {
          throw;
        } catch (const std::exception& e) {
          result = JobResult::failed(e.what());
        }
      }
      if (result.status == JobResult::Status::kFailed && ctx.expired()) {
        // A failure that surfaced after the watchdog fired is an overrun
        // for retry accounting (the stop check aborts work mid-flight).
        result.status = JobResult::Status::kOverrun;
      }

      if (result.status == JobResult::Status::kOk) {
        if (ctx.expired()) {
          log::warn() << "supervisor: " << job.name
                      << " finished past its deadline (accepted)";
        }
        outcome.state = JobState::kDone;
        outcome.attempts = attempts;
        manifest_.record(
            {job.name, JobState::kDone, attempts, "", job.outputs});
        break;
      }

      const bool overrun = result.status == JobResult::Status::kOverrun;
      const FailureKind kind =
          overrun ? FailureKind::kTimeout : FailureKind::kFailed;
      const std::string reason =
          (overrun ? std::string("deadline_overrun")
                   : std::string("failed")) +
          (result.message.empty() ? "" : ": " + result.message);

      if (attempts >= job.max_attempts) {
        outcome.state = JobState::kDegraded;
        outcome.attempts = attempts;
        outcome.reason = reason;
        outcome.kind = kind;
        JobRecord rec{job.name, JobState::kDegraded, attempts, reason,
                      job.outputs};
        rec.kind = kind;
        manifest_.record(std::move(rec));
        log::warn() << "supervisor: " << job.name << " degraded after "
                    << attempts << " attempts (" << reason << ")";
        break;
      }

      JobRecord rec{job.name, JobState::kFailed, attempts, reason,
                    job.outputs};
      rec.kind = kind;
      manifest_.record(std::move(rec));
      const double delay = backoff_.delay(attempts - 1);
      log::warn() << "supervisor: " << job.name << " attempt " << attempts
                  << " " << reason << "; retrying in " << delay << "s";
      clock_.sleep_for(delay);
    }
  }

  MatrixReport report;
  report.jobs = std::move(outcomes);
  return report;
}

}  // namespace satd::runtime
