#include "runtime/semaphore.h"

#include <fcntl.h>
#include <semaphore.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/contract.h"
#include "common/log.h"

namespace satd::runtime {

namespace fs = std::filesystem;

namespace {

sem_t* as_sem(void* p) { return static_cast<sem_t*>(p); }

/// RAII flock on the registry-wide repair lock file: at most one process
/// repairs at a time, so leaked tokens are never double-posted.
class RegistryLock {
 public:
  explicit RegistryLock(const std::string& registry_dir) {
    const std::string path = registry_dir + "/.repair.lock";
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
  }
  ~RegistryLock() {
    if (fd_ >= 0) ::close(fd_);  // close drops the flock
  }
  bool locked() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace

std::string SlotGate::sanitize_name(const std::string& name) {
  std::string out = "/";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    out.push_back(ok ? c : '_');
  }
  if (out.size() > 200) out.resize(200);  // well under NAME_MAX
  if (out.size() == 1) out += "satd_gate";
  return out;
}

std::string SlotGate::default_registry(const std::string& sem_name) {
  return (fs::temp_directory_path() /
          ("satd_gate_" + sem_name.substr(1)))
      .string();
}

SlotGate::SlotGate(const std::string& name, unsigned slots,
                   std::string registry_dir)
    : sem_name_(sanitize_name(name)),
      registry_dir_(std::move(registry_dir)),
      slots_(slots) {
  SATD_EXPECT(slots > 0, "slot gate needs at least one slot");
  if (registry_dir_.empty()) registry_dir_ = default_registry(sem_name_);
  fs::create_directories(registry_dir_);

  sem_t* sem = ::sem_open(sem_name_.c_str(), O_CREAT, 0644, slots);
  if (sem == SEM_FAILED) {
    throw std::runtime_error("sem_open(" + sem_name_ + ") failed: " +
                             std::strerror(errno));
  }
  sem_ = sem;

  // Record the budget for repair accounting. The first creator wins; a
  // later invocation asking for a different budget is warned — the
  // semaphore's initial value was fixed at creation and cannot change.
  const std::string slots_path = registry_dir_ + "/slots";
  {
    RegistryLock lock(registry_dir_);
    std::ifstream in(slots_path);
    unsigned recorded = 0;
    if (in >> recorded && recorded > 0) {
      if (recorded != slots) {
        log::warn() << "slot gate " << sem_name_ << " already has a budget "
                    << "of " << recorded << " (requested " << slots
                    << "); keeping " << recorded;
      }
      slots_ = recorded;
    } else {
      std::ofstream out(slots_path, std::ios::trunc);
      out << slots << "\n";
    }
  }
}

SlotGate::~SlotGate() {
  while (!held_.empty()) release();
  if (sem_ != nullptr) ::sem_close(as_sem(sem_));
}

std::string SlotGate::make_holder_file() {
  // The sequence is process-wide, not per-instance: two SlotGates in one
  // process (several spoolers, or tests) must never reuse a holder path,
  // or the second's uncontended flock below would deadlock on the first.
  static std::atomic<unsigned> seq{0};
  return registry_dir_ + "/h" + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1));
}

bool SlotGate::try_acquire() {
  // Claim file first: from here on, a kill -9 at ANY point leaves either
  // a locked file (we are alive and will proceed) or an unlocked one
  // (we died; repair prunes it and re-posts our token if we held one).
  Held h;
  h.path = make_holder_file();
  h.fd = ::open(h.path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (h.fd < 0) {
    log::warn() << "slot gate " << sem_name_ << ": cannot create holder "
                << h.path << " (" << std::strerror(errno)
                << "); acquiring without leak protection";
  } else {
    ::flock(h.fd, LOCK_EX);  // uncontended: the file name is ours
  }

  if (::sem_trywait(as_sem(sem_)) != 0) {
    if (h.fd >= 0) ::close(h.fd);
    ::unlink(h.path.c_str());
    return false;
  }
  held_.push_back(h);
  return true;
}

void SlotGate::release() {
  SATD_EXPECT(!held_.empty(), "release without a held slot");
  const Held h = held_.back();
  held_.pop_back();
  // Post before dropping the claim: between the two, repair sees a live
  // holder and a returned token and clamps the leak estimate at zero.
  ::sem_post(as_sem(sem_));
  if (h.fd >= 0) ::close(h.fd);
  ::unlink(h.path.c_str());
}

void SlotGate::repair() {
  RegistryLock lock(registry_dir_);
  if (!lock.locked()) return;

  std::size_t live = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(registry_dir_, ec)) {
    const std::string leaf = entry.path().filename().string();
    if (leaf.empty() || leaf[0] != 'h') continue;
    const int fd = ::open(entry.path().c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) continue;  // raced with the owner's own unlink
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
      // Nobody holds the lock: the owner is dead. Prune; the token it
      // may have held is restored by the arithmetic below.
      ::unlink(entry.path().c_str());
      ::close(fd);
    } else {
      ++live;  // locked by a live process (holder or in-flight waiter)
      ::close(fd);
    }
  }

  int value = 0;
  if (::sem_getvalue(as_sem(sem_), &value) != 0) return;
  const long leaked = static_cast<long>(slots_) - value -
                      static_cast<long>(live);
  for (long i = 0; i < leaked; ++i) {
    log::warn() << "slot gate " << sem_name_
                << ": restoring a token leaked by a dead holder";
    ::sem_post(as_sem(sem_));
  }
}

int SlotGate::value() const {
  int v = 0;
  ::sem_getvalue(as_sem(sem_), &v);
  return v;
}

void SlotGate::abandon_for_test() {
  for (const Held& h : held_) {
    if (h.fd >= 0) ::close(h.fd);  // drops the flock, leaves the file
  }
  held_.clear();
}

void SlotGate::unlink(const std::string& name,
                      const std::string& registry_dir) {
  const std::string sem_name = sanitize_name(name);
  ::sem_unlink(sem_name.c_str());
  std::error_code ec;
  fs::remove_all(registry_dir.empty() ? default_registry(sem_name)
                                      : registry_dir,
                 ec);
}

}  // namespace satd::runtime
