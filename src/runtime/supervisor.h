// Resilient experiment orchestrator: a dependency-aware job supervisor
// with watchdog deadlines, retry/backoff and crash-only resume.
//
// The headline artifacts of this reproduction (Table I, the figures, the
// ablation CSVs) are hours of training spread over many independent
// pieces; an unsupervised hang or crash used to lose all of it. The
// Supervisor runs the matrix as named jobs (runtime/job.h), journaling
// every state transition in a durable manifest (runtime/manifest.h):
//
//   - Jobs run in dependency order (stable topological order); a job
//     whose dependency is not DONE is marked DEGRADED and skipped, but
//     independent jobs keep running — the matrix never aborts because
//     one corner of it failed.
//   - Each attempt gets a cooperative wall-clock watchdog deadline
//     (JobContext::expired / stop_check); a failed or overrun attempt is
//     retried with exponential backoff plus deterministic seeded jitter
//     (common/backoff.h) until the attempt budget is exhausted, at which
//     point the job degrades instead of killing the run.
//   - `kill -9` mid-matrix is the *designed* shutdown path: a rerun
//     adopts the manifest, skips DONE jobs whose outputs still exist,
//     counts a crashed RUNNING attempt against its budget and finishes
//     the rest. Because training is deterministic and the model cache
//     absorbs completed work, the resumed run's artifacts are
//     bit-identical to an uninterrupted run's.
//
// Chaos hooks (runtime::fault) let tests inject a process crash or a
// hung attempt at an exact (job, attempt) coordinate to prove all of the
// above without real signals or real hangs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "runtime/job.h"
#include "runtime/manifest.h"
#include "runtime/report.h"

namespace satd::runtime {

/// Thrown by the chaos crash hook to simulate `kill -9` mid-matrix: the
/// manifest is left exactly as a dead process would leave it (the
/// victim's record durably RUNNING). Tests catch it, re-create the
/// supervisor and prove resume.
class SimulatedCrashError : public std::runtime_error {
 public:
  explicit SimulatedCrashError(const std::string& what)
      : std::runtime_error(what) {}
};

// JobOutcome / MatrixReport (shared with the multi-process Spooler) live
// in runtime/report.h.

/// The orchestrator. Register jobs with add(), then run() once.
class Supervisor {
 public:
  struct Options {
    /// Journal path; empty = memory-only (no resume across processes).
    std::string manifest_path;
    /// Identifies the run config; a manifest with a different
    /// fingerprint is ignored on load.
    std::string fingerprint = "default";
    BackoffPolicy backoff{};
    /// Seed for the backoff jitter stream (deterministic schedules).
    std::uint64_t backoff_seed = 0x5AD0FFULL;
    /// Borrowed time source; nullptr = the shared SystemClock.
    Clock* clock = nullptr;
  };

  explicit Supervisor(Options options);

  /// Registers a job. Names must be unique and non-empty; `run` must be
  /// callable. Throws ContractViolation otherwise.
  void add(Job job);

  /// Executes the matrix. Throws std::invalid_argument on an unknown
  /// dependency or a dependency cycle; propagates SimulatedCrashError
  /// from the chaos hook. Everything else — failures, overruns,
  /// exhausted retries — is absorbed into DEGRADED outcomes.
  MatrixReport run();

  const Manifest& manifest() const { return manifest_; }

 private:
  bool outputs_present(const Job& job) const;

  Options options_;
  Clock& clock_;
  Backoff backoff_;
  Manifest manifest_;
  std::vector<Job> jobs_;
};

// ---- chaos fault injection (tests only) ----
//
// Extends the durable_io fault philosophy to whole jobs: faults are
// armed at a (job name, attempt number) coordinate (attempts are
// 1-based) and fire exactly once.
namespace fault {

/// The named attempt dies as if the process were SIGKILLed: the manifest
/// records the attempt RUNNING, then SimulatedCrashError unwinds run().
void arm_job_crash(const std::string& job, std::size_t attempt = 1);

/// The named attempt hangs past its watchdog deadline: the supervisor
/// burns the job's full deadline on the clock and records an overrun
/// (a job without a deadline hangs for kHangForeverSeconds instead).
void arm_job_hang(const std::string& job, std::size_t attempt = 1);

/// Clears all armed job faults.
void disarm();

/// Simulated duration of a hang when the job has no deadline.
inline constexpr double kHangForeverSeconds = 86400.0;

}  // namespace fault

}  // namespace satd::runtime
