// Job model for the experiment supervisor (src/runtime/supervisor.h).
//
// A Job is one named, resumable unit of the experiment matrix: a training
// run, a table/figure evaluation, an export. Jobs declare dependencies by
// name, the files they promise to produce, a wall-clock watchdog deadline
// and a bounded attempt budget. The Supervisor runs them in dependency
// order, journals every state transition durably, and resumes a crashed
// matrix from the last completed job.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/clock.h"

namespace satd::runtime {

/// Lifecycle of a supervised job (the manifest journals these).
///   PENDING  — registered, not yet attempted
///   RUNNING  — an attempt is in flight (a manifest left in this state
///              means the process crashed mid-attempt)
///   DONE     — completed; outputs are on disk
///   FAILED   — last attempt failed, retries remain
///   DEGRADED — attempt budget exhausted (or a dependency degraded); the
///              matrix keeps running, the final report flags the gap
enum class JobState { kPending, kRunning, kDone, kFailed, kDegraded };

const char* to_string(JobState state);

/// Why an attempt did not finish cleanly. Journaled next to the state so
/// a postmortem can tell a watchdog kill from a crash from an ordinary
/// error without parsing reason strings.
///   NONE    — no failure (DONE, or never attempted)
///   FAILED  — the attempt errored (nonzero exit / thrown exception)
///   TIMEOUT — the watchdog deadline fired (cooperative overrun, or the
///             spooler SIGKILLed the child past its deadline)
///   CRASHED — the process died under it (signal, OOM-kill, or the
///             supervising process itself was killed mid-attempt)
enum class FailureKind { kNone, kFailed, kTimeout, kCrashed };

const char* to_string(FailureKind kind);

/// What one attempt of a job reports back to the supervisor.
struct JobResult {
  enum class Status {
    kOk,       ///< finished; outputs written
    kFailed,   ///< errored; retry may help
    kOverrun,  ///< bailed out because the watchdog deadline expired
  };
  Status status = Status::kOk;
  std::string message;

  static JobResult ok() { return {}; }
  static JobResult failed(std::string why) {
    return {Status::kFailed, std::move(why)};
  }
  static JobResult overrun(std::string why) {
    return {Status::kOverrun, std::move(why)};
  }
};

/// Per-attempt context handed to the job body. The deadline is
/// cooperative: long-running work polls expired() (typically via
/// stop_check() wired into Trainer::set_stop_check) and bails out with
/// JobResult::overrun when the watchdog fires.
class JobContext {
 public:
  JobContext(Clock& clock, double deadline_at)
      : clock_(clock), deadline_at_(deadline_at) {}

  Clock& clock() { return clock_; }

  /// Absolute deadline on the clock; +inf when the job has none.
  double deadline_at() const { return deadline_at_; }

  /// True once the watchdog deadline has passed.
  bool expired() { return clock_.now() > deadline_at_; }

  /// Adapter for Trainer::set_stop_check and similar poll points: a
  /// cheap predicate that turns true when the deadline expires.
  std::function<bool()> stop_check() {
    return [this] { return expired(); };
  }

 private:
  Clock& clock_;
  double deadline_at_;
};

inline constexpr double kNoDeadline = 0.0;

/// One supervised unit of work.
struct Job {
  std::string name;
  std::function<JobResult(JobContext&)> run;
  std::vector<std::string> deps;     ///< names of jobs that must be DONE
  std::vector<std::string> outputs;  ///< files the job promises to produce
  /// Wall-clock watchdog budget per attempt, seconds; kNoDeadline = none.
  double deadline_seconds = kNoDeadline;
  std::size_t max_attempts = 3;
};

}  // namespace satd::runtime
