// Injectable child-process layer for the job spooler.
//
// The Spooler never calls fork/exec/waitpid directly: every spawn, poll,
// kill and RSS sample goes through a ProcessRunner. Production uses
// ForkExecRunner (real processes, CPU affinity, env exports, wait4
// rusage at reap). Unit tests use FakeProcessRunner, whose "children"
// are scripted outcomes advanced by a FakeClock — so the whole
// watchdog / retry / orphan state machine runs deterministically in
// microseconds, with no dependence on real child-process timing.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "runtime/rusage.h"

namespace satd::runtime {

/// Identity of a spawned process: the pid plus the /proc start-time tag
/// that survives in the manifest so a resumed spooler can distinguish
/// its orphaned child from an unrelated pid reuse.
struct ProcessId {
  int pid = -1;
  std::string start_id;
};

/// What to launch and how to confine it.
struct SpawnSpec {
  std::vector<std::string> argv;  ///< argv[0] is the executable path
  /// Extra environment exported to the child (on top of the inherited
  /// environment), e.g. {"SATD_THREADS", "2"}.
  std::vector<std::pair<std::string, std::string>> env;
  /// CPU ids the child is pinned to (sched_setaffinity); empty =
  /// inherit the parent's mask.
  std::vector<int> cpus;
  /// Redirect the child's stdout+stderr (appending) into this file;
  /// empty = inherit.
  std::string log_path;
};

/// Result of polling a child.
struct ChildStatus {
  bool running = true;
  bool signaled = false;  ///< terminated by a signal
  int exit_code = 0;      ///< valid when !running && !signaled
  int term_signal = 0;    ///< valid when signaled
  ResourceUsage usage;    ///< filled at reap (user/sys/maxrss)
};

/// The abstract process layer.
class ProcessRunner {
 public:
  virtual ~ProcessRunner() = default;

  /// Launches a child. Throws std::runtime_error when the spawn itself
  /// fails (fork/exec errors inside the child surface as exit 127).
  virtual ProcessId spawn(const SpawnSpec& spec) = 0;

  /// Non-blocking status check; reaps the child (collecting rusage)
  /// the first time it reports !running. Only valid for ids returned by
  /// this runner's spawn().
  virtual ChildStatus poll(const ProcessId& id) = 0;

  /// Sends a signal to the child (ESRCH is ignored).
  virtual void kill(const ProcessId& id, int signal) = 0;

  /// Current peak-RSS sample in kB; 0 when unavailable. Valid for any
  /// live process, not just our children (used for adopted orphans).
  virtual long sample_rss_kb(const ProcessId& id) = 0;

  /// Identity-checked liveness: true while a process with this pid AND
  /// this start_id exists. Works for non-children (orphan adoption).
  virtual bool alive(const ProcessId& id) = 0;
};

/// Real processes: fork + sched_setaffinity + setenv + exec, waitpid
/// with WNOHANG for polling, wait4 rusage at reap, /proc VmHWM samples.
class ForkExecRunner : public ProcessRunner {
 public:
  ProcessId spawn(const SpawnSpec& spec) override;
  ChildStatus poll(const ProcessId& id) override;
  void kill(const ProcessId& id, int signal) override;
  long sample_rss_kb(const ProcessId& id) override;
  bool alive(const ProcessId& id) override;

  /// Shared instance (the Spooler's default runner).
  static ForkExecRunner& instance();

 private:
  struct Tracked {
    double spawned_at = 0.0;  // SystemClock seconds
    long peak_rss_kb = 0;     // max of samples, merged with ru_maxrss
  };
  std::map<int, Tracked> tracked_;  // pid -> bookkeeping until reaped
};

/// Scripted processes for unit tests, advanced by the test's Clock.
///
/// Outcomes are enqueued per *key* — the first argv element — and
/// consumed in order, so a test can script "attempt 1 crashes, attempt 2
/// succeeds" for one job. An empty queue yields the default outcome
/// (immediate clean exit).
class FakeProcessRunner : public ProcessRunner {
 public:
  struct Script {
    double duration = 0.0;   ///< clock-seconds until the child exits
    int exit_code = 0;
    int term_signal = 0;     ///< nonzero = dies by signal instead
    long peak_rss_kb = 0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
    /// Runs when the exit is first observed by poll() (models the child
    /// writing its outputs just before exiting).
    std::function<void()> on_exit;
  };

  explicit FakeProcessRunner(Clock& clock) : clock_(clock) {}

  /// Scripts the next spawn whose argv[0] == key.
  void enqueue(const std::string& key, Script script);

  /// Registers an "orphan": a process that exists independently of any
  /// spawn (models a child surviving its spooler's kill -9). It stays
  /// alive until the clock passes dies_at, then `on_death` runs once.
  void add_orphan(int pid, const std::string& start_id, double dies_at,
                  std::function<void()> on_death = nullptr);

  // -- introspection for assertions --
  std::size_t spawn_count() const { return spawn_count_; }
  std::size_t max_concurrent() const { return max_concurrent_; }
  /// Every spec ever spawned, in order.
  const std::vector<SpawnSpec>& spawned() const { return spawned_; }
  /// Signals delivered via kill(), as (pid, signal).
  const std::vector<std::pair<int, int>>& kills() const { return kills_; }

  ProcessId spawn(const SpawnSpec& spec) override;
  ChildStatus poll(const ProcessId& id) override;
  void kill(const ProcessId& id, int signal) override;
  long sample_rss_kb(const ProcessId& id) override;
  bool alive(const ProcessId& id) override;

 private:
  struct Fake {
    Script script;
    double started_at = 0.0;
    bool killed = false;
    int kill_signal = 0;
    double killed_at = 0.0;
    bool reaped = false;
  };
  struct Orphan {
    std::string start_id;
    double dies_at = 0.0;
    std::function<void()> on_death;
    bool death_ran = false;
  };

  bool fake_exited(const Fake& f) const;

  Clock& clock_;
  std::map<std::string, std::vector<Script>> scripts_;
  std::map<int, Fake> fakes_;
  std::map<int, Orphan> orphans_;
  std::vector<SpawnSpec> spawned_;
  std::vector<std::pair<int, int>> kills_;
  int next_pid_ = 1000;
  std::size_t spawn_count_ = 0;
  std::size_t live_ = 0;
  std::size_t max_concurrent_ = 0;
};

}  // namespace satd::runtime
