// Per-process resource accounting for the job spooler.
//
// Every spooled attempt is a real child process, so its cost can be
// measured instead of estimated: wall time from the supervising clock,
// user/sys CPU time from wait4()'s rusage at reap, and peak resident set
// from periodic /proc/<pid>/status sampling (VmHWM) merged with
// ru_maxrss. The numbers land in the manifest journal and in
// BENCH_matrix.json so a degraded or OOM-killed job can be diagnosed
// from its row alone.
//
// The /proc helpers also expose the process *identity* primitive the
// orphan-adoption protocol needs: a pid alone is recyclable, but the
// pair (pid, starttime-from-/proc/<pid>/stat) is unique for the life of
// the machine, so a resumed spooler can tell "my orphaned child is still
// running" from "some unrelated process reused the pid".
#pragma once

#include <string>

namespace satd::runtime {

/// What one attempt of a job cost. Zero-initialized means "not
/// measured" (e.g. the in-process Supervisor, or a v1 manifest).
struct ResourceUsage {
  double wall_seconds = 0.0;  ///< spawn-to-reap on the supervising clock
  double user_seconds = 0.0;  ///< ru_utime at reap
  double sys_seconds = 0.0;   ///< ru_stime at reap
  long peak_rss_kb = 0;       ///< max(VmHWM samples, ru_maxrss)

  /// True when any field was actually measured.
  bool any() const {
    return wall_seconds > 0.0 || user_seconds > 0.0 || sys_seconds > 0.0 ||
           peak_rss_kb > 0;
  }

  /// Compact human rendering, e.g. "rss=182MB wall=12.3s user=11.8s
  /// sys=0.3s" (omitting unmeasured fields).
  std::string to_string() const;
};

/// Peak resident set (VmHWM) of a live process in kB from
/// /proc/<pid>/status; 0 when the process is gone or the field is
/// unavailable.
long read_proc_peak_rss_kb(int pid);

/// Process start-time identity: field 22 (starttime, in clock ticks
/// since boot) of /proc/<pid>/stat, as text. Empty when the process does
/// not exist. Stable across exec, unique per pid incarnation.
std::string read_proc_start_id(int pid);

/// True when a process with this pid exists AND matches the recorded
/// start identity (empty `start_id` degrades to a bare existence check).
bool process_matches(int pid, const std::string& start_id);

}  // namespace satd::runtime
