// Matrix outcome report shared by the in-process Supervisor and the
// multi-process Spooler.
//
// A run of either orchestrator produces one JobOutcome per job. On top
// of the original state/attempts/reason triple, outcomes now carry the
// failure *kind* (FAILED vs TIMEOUT vs CRASHED), the child's exit code
// or terminating signal, the CPU set it ran on and what the attempt cost
// (runtime/rusage.h) — so a DEGRADED row in the report or the bench JSON
// explains itself without grepping logs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/job.h"
#include "runtime/rusage.h"

namespace satd::runtime {

/// Final state of one job after a run — the matrix report row.
struct JobOutcome {
  std::string name;
  JobState state = JobState::kPending;
  std::size_t attempts = 0;
  std::string reason;
  bool resumed = false;  ///< DONE was adopted from a previous run
  FailureKind kind = FailureKind::kNone;  ///< last attempt's failure kind
  int exit_code = 0;     ///< child exit code (spooled jobs; 0 otherwise)
  int exit_signal = 0;   ///< terminating signal, 0 = none
  std::vector<int> cores;  ///< CPU set the last attempt was pinned to
  ResourceUsage usage;     ///< last attempt's measured cost
};

/// Renders "signal 9 (SIGKILL)" / "exit 3" for report rows; empty when
/// the outcome carries neither.
std::string describe_exit(int exit_code, int exit_signal);

/// Summary of a whole supervised run.
struct MatrixReport {
  std::vector<JobOutcome> jobs;

  std::size_t done() const;
  std::size_t degraded() const;
  bool all_done() const { return degraded() == 0 && done() == jobs.size(); }

  /// Human-readable table; DEGRADED rows carry their failure kind,
  /// exit status and reason, DONE rows their resource cost.
  std::string to_string() const;
};

}  // namespace satd::runtime
