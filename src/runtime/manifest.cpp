#include "runtime/manifest.h"

#include <filesystem>
#include <sstream>

#include "common/contract.h"
#include "common/durable_io.h"
#include "common/log.h"
#include "tensor/serialize.h"

namespace satd::runtime {

namespace fs = std::filesystem;

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

namespace {

constexpr char kManifestMagic[] = "SATDMAN1";

JobState state_from_u64(std::uint64_t v, const std::string& context) {
  if (v > static_cast<std::uint64_t>(JobState::kDegraded)) {
    throw durable::CorruptFileError("manifest holds unknown job state " +
                                    std::to_string(v) + ": " + context);
  }
  return static_cast<JobState>(v);
}

}  // namespace

Manifest::Manifest(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint)) {}

bool Manifest::load() {
  records_.clear();
  if (path_.empty() || !fs::exists(path_)) return false;
  try {
    std::istringstream is(durable::read_file_verified(path_),
                          std::ios::binary);
    char magic[8];
    is.read(magic, 8);
    if (!is || std::string(magic, 8) != kManifestMagic) {
      throw durable::CorruptFileError("bad manifest magic: " + path_);
    }
    const std::string stored_fp = read_string(is);
    const std::uint64_t count = read_u64(is);
    std::vector<JobRecord> loaded;
    loaded.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      JobRecord rec;
      rec.name = read_string(is);
      rec.state = state_from_u64(read_u64(is), path_);
      rec.attempts = read_u64(is);
      rec.reason = read_string(is);
      const std::uint64_t outputs = read_u64(is);
      for (std::uint64_t k = 0; k < outputs; ++k) {
        rec.outputs.push_back(read_string(is));
      }
      loaded.push_back(std::move(rec));
    }
    if (!is) {
      throw durable::CorruptFileError("truncated manifest: " + path_);
    }
    if (stored_fp != fingerprint_) {
      log::warn() << "manifest " << path_ << " belongs to a different run ("
                  << stored_fp << " != " << fingerprint_
                  << "); starting fresh";
      return false;
    }
    records_ = std::move(loaded);
    return true;
  } catch (const durable::CorruptFileError& e) {
    // Crash-only recovery: a damaged journal is moved aside and the run
    // starts from scratch — the cache layer still absorbs the rework.
    std::error_code ec;
    fs::rename(path_, path_ + ".corrupt", ec);
    if (ec) fs::remove(path_, ec);
    log::warn() << "manifest quarantined (" << e.what() << ")";
    return false;
  } catch (const durable::IoError& e) {
    log::warn() << "manifest unreadable, starting fresh: " << e.what();
    return false;
  }
}

void Manifest::record(JobRecord rec) {
  SATD_EXPECT(!rec.name.empty(), "job record needs a name");
  bool replaced = false;
  for (auto& existing : records_) {
    if (existing.name == rec.name) {
      existing = std::move(rec);
      replaced = true;
      break;
    }
  }
  if (!replaced) records_.push_back(std::move(rec));
  flush();
}

const JobRecord* Manifest::find(const std::string& name) const {
  for (const auto& rec : records_) {
    if (rec.name == name) return &rec;
  }
  return nullptr;
}

void Manifest::flush() const {
  if (path_.empty()) return;
  // The journal often lives inside a cache directory that nothing has
  // created yet on a fresh run.
  const fs::path parent = fs::path(path_).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
  durable::write_file_checksummed(path_, [this](std::ostream& os) {
    os.write(kManifestMagic, 8);
    write_string(os, fingerprint_);
    write_u64(os, records_.size());
    for (const auto& rec : records_) {
      write_string(os, rec.name);
      write_u64(os, static_cast<std::uint64_t>(rec.state));
      write_u64(os, rec.attempts);
      write_string(os, rec.reason);
      write_u64(os, rec.outputs.size());
      for (const auto& out : rec.outputs) write_string(os, out);
    }
  });
}

}  // namespace satd::runtime
