#include "runtime/manifest.h"

#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/contract.h"
#include "common/durable_io.h"
#include "common/log.h"
#include "tensor/serialize.h"

namespace satd::runtime {

namespace fs = std::filesystem;

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "NONE";
    case FailureKind::kFailed:
      return "FAILED";
    case FailureKind::kTimeout:
      return "TIMEOUT";
    case FailureKind::kCrashed:
      return "CRASHED";
  }
  return "UNKNOWN";
}

namespace {

// v1 journaled only the lifecycle triple; v2 adds failure kind, exit
// status, child identity, the core set and resource accounting. Both
// load; v2 is always written.
constexpr char kManifestMagicV1[] = "SATDMAN1";
constexpr char kManifestMagicV2[] = "SATDMAN2";

JobState state_from_u64(std::uint64_t v, const std::string& context) {
  if (v > static_cast<std::uint64_t>(JobState::kDegraded)) {
    throw durable::CorruptFileError("manifest holds unknown job state " +
                                    std::to_string(v) + ": " + context);
  }
  return static_cast<JobState>(v);
}

FailureKind kind_from_u64(std::uint64_t v, const std::string& context) {
  if (v > static_cast<std::uint64_t>(FailureKind::kCrashed)) {
    throw durable::CorruptFileError("manifest holds unknown failure kind " +
                                    std::to_string(v) + ": " + context);
  }
  return static_cast<FailureKind>(v);
}

// Doubles travel as their IEEE-754 bit pattern inside the CRC frame, the
// same trick tensor serialization uses for floats.
void write_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(os, bits);
}

double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Manifest::Manifest(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint)) {}

bool Manifest::load() {
  records_.clear();
  if (path_.empty() || !fs::exists(path_)) return false;
  try {
    std::istringstream is(durable::read_file_verified(path_),
                          std::ios::binary);
    char magic[8];
    is.read(magic, 8);
    const std::string magic_text(magic, is ? 8 : 0);
    const bool v2 = magic_text == kManifestMagicV2;
    if (!is || (!v2 && magic_text != kManifestMagicV1)) {
      throw durable::CorruptFileError("bad manifest magic: " + path_);
    }
    const std::string stored_fp = read_string(is);
    const std::uint64_t count = read_u64(is);
    std::vector<JobRecord> loaded;
    loaded.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      JobRecord rec;
      rec.name = read_string(is);
      rec.state = state_from_u64(read_u64(is), path_);
      rec.attempts = read_u64(is);
      rec.reason = read_string(is);
      const std::uint64_t outputs = read_u64(is);
      for (std::uint64_t k = 0; k < outputs; ++k) {
        rec.outputs.push_back(read_string(is));
      }
      if (v2) {
        rec.kind = kind_from_u64(read_u64(is), path_);
        rec.exit_code = static_cast<int>(
            static_cast<std::int64_t>(read_u64(is)));
        rec.exit_signal = static_cast<int>(read_u64(is));
        rec.pid = static_cast<int>(read_u64(is));
        rec.start_id = read_string(is);
        const std::uint64_t cores = read_u64(is);
        for (std::uint64_t k = 0; k < cores; ++k) {
          rec.cores.push_back(static_cast<int>(read_u64(is)));
        }
        rec.usage.wall_seconds = read_f64(is);
        rec.usage.user_seconds = read_f64(is);
        rec.usage.sys_seconds = read_f64(is);
        rec.usage.peak_rss_kb = static_cast<long>(read_u64(is));
      }
      loaded.push_back(std::move(rec));
    }
    if (!is) {
      throw durable::CorruptFileError("truncated manifest: " + path_);
    }
    if (stored_fp != fingerprint_) {
      log::warn() << "manifest " << path_ << " belongs to a different run ("
                  << stored_fp << " != " << fingerprint_
                  << "); starting fresh";
      return false;
    }
    records_ = std::move(loaded);
    return true;
  } catch (const durable::CorruptFileError& e) {
    // Crash-only recovery: a damaged journal is moved aside and the run
    // starts from scratch — the cache layer still absorbs the rework.
    std::error_code ec;
    fs::rename(path_, path_ + ".corrupt", ec);
    if (ec) fs::remove(path_, ec);
    log::warn() << "manifest quarantined (" << e.what() << ")";
    return false;
  } catch (const durable::IoError& e) {
    log::warn() << "manifest unreadable, starting fresh: " << e.what();
    return false;
  }
}

void Manifest::record(JobRecord rec) {
  SATD_EXPECT(!rec.name.empty(), "job record needs a name");
  bool replaced = false;
  for (auto& existing : records_) {
    if (existing.name == rec.name) {
      existing = std::move(rec);
      replaced = true;
      break;
    }
  }
  if (!replaced) records_.push_back(std::move(rec));
  flush();
}

const JobRecord* Manifest::find(const std::string& name) const {
  for (const auto& rec : records_) {
    if (rec.name == name) return &rec;
  }
  return nullptr;
}

void Manifest::flush() const {
  if (path_.empty()) return;
  // The journal often lives inside a cache directory that nothing has
  // created yet on a fresh run.
  const fs::path parent = fs::path(path_).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
  durable::write_file_checksummed(path_, [this](std::ostream& os) {
    os.write(kManifestMagicV2, 8);
    write_string(os, fingerprint_);
    write_u64(os, records_.size());
    for (const auto& rec : records_) {
      write_string(os, rec.name);
      write_u64(os, static_cast<std::uint64_t>(rec.state));
      write_u64(os, rec.attempts);
      write_string(os, rec.reason);
      write_u64(os, rec.outputs.size());
      for (const auto& out : rec.outputs) write_string(os, out);
      write_u64(os, static_cast<std::uint64_t>(rec.kind));
      write_u64(os, static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(rec.exit_code)));
      write_u64(os, static_cast<std::uint64_t>(rec.exit_signal));
      write_u64(os, static_cast<std::uint64_t>(rec.pid));
      write_string(os, rec.start_id);
      write_u64(os, rec.cores.size());
      for (int core : rec.cores) {
        write_u64(os, static_cast<std::uint64_t>(core));
      }
      write_f64(os, rec.usage.wall_seconds);
      write_f64(os, rec.usage.user_seconds);
      write_f64(os, rec.usage.sys_seconds);
      write_u64(os, static_cast<std::uint64_t>(rec.usage.peak_rss_kb));
    }
  });
}

}  // namespace satd::runtime
