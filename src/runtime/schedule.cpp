#include "runtime/schedule.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace satd::runtime {

std::vector<std::size_t> topological_order(const std::vector<Job>& jobs) {
  const std::size_t n = jobs.size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);
  auto index_of = [&jobs](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].name == name) return i;
    }
    throw std::invalid_argument("unknown dependency: " + name);
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& dep : jobs[i].deps) {
      const std::size_t d = index_of(dep);
      ++indegree[i];
      dependents[d].push_back(i);
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const auto it = std::min_element(ready.begin(), ready.end());
    const std::size_t i = *it;
    ready.erase(it);
    order.push_back(i);
    for (std::size_t child : dependents[i]) {
      if (--indegree[child] == 0) ready.push_back(child);
    }
  }
  if (order.size() != n) {
    throw std::invalid_argument("dependency cycle in the job graph");
  }
  return order;
}

}  // namespace satd::runtime
