#include "runtime/spooler.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "common/contract.h"
#include "common/log.h"
#include "runtime/schedule.h"
#include "runtime/semaphore.h"
#include "runtime/supervisor.h"  // SimulatedCrashError

namespace satd::runtime {

namespace fs = std::filesystem;

namespace {

// ---- chaos registry (tests only, single-threaded by design) ----

struct ArmedSpoolCrash {
  std::string job;
  std::size_t attempt;
};

std::vector<ArmedSpoolCrash>& armed_spool_crashes() {
  static std::vector<ArmedSpoolCrash> faults;
  return faults;
}

bool take_spool_crash(const std::string& job, std::size_t attempt) {
  auto& faults = armed_spool_crashes();
  for (auto it = faults.begin(); it != faults.end(); ++it) {
    if (it->job == job && it->attempt == attempt) {
      faults.erase(it);
      return true;
    }
  }
  return false;
}

std::string sanitize_leaf(const std::string& name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

namespace fault {

void arm_spool_crash(const std::string& job, std::size_t attempt) {
  armed_spool_crashes().push_back({job, attempt});
}

void disarm_spool_faults() { armed_spool_crashes().clear(); }

}  // namespace fault

/// Per-job scheduling state for one run().
struct Spooler::Track {
  enum class Phase { kWaiting, kRunning, kDone, kDegraded };
  Phase phase = Phase::kWaiting;
  std::size_t attempts = 0;   ///< attempts started so far
  double eligible_at = 0.0;   ///< backoff gate for the next attempt
};

/// One running (owned or adopted) child.
struct Spooler::Child {
  std::size_t idx = 0;        ///< index into jobs_
  ProcessId id;
  std::size_t attempt = 0;
  bool adopted = false;       ///< orphan from a previous spooler
  double kill_at = 0.0;       ///< hard watchdog; 0 = none
  bool kill_sent = false;
  bool deadline_kill = false; ///< we killed it for overrunning
  double spawned_at = 0.0;
  double next_rss_at = 0.0;
  long peak_rss_kb = 0;
  std::vector<int> cores;
  bool gate_held = false;
  bool done = false;          ///< reaped; remove from children_
};

Spooler::Spooler(Options options, SpawnFactory factory)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      clock_(options_.clock ? *options_.clock : SystemClock::instance()),
      runner_(options_.runner ? *options_.runner
                              : ForkExecRunner::instance()),
      backoff_(options_.backoff, options_.backoff_seed),
      manifest_(options_.manifest_path, options_.fingerprint) {
  SATD_EXPECT(static_cast<bool>(factory_), "spooler needs a spawn factory");
  SATD_EXPECT(options_.slots > 0, "spooler needs at least one slot");
  if (!options_.gate_name.empty()) {
    gate_ = std::make_unique<SlotGate>(options_.gate_name,
                                       static_cast<unsigned>(options_.slots),
                                       options_.gate_registry);
  }
}

Spooler::~Spooler() {
  if (manifest_lock_fd_ >= 0) ::close(manifest_lock_fd_);
}

void Spooler::lock_manifest() {
  if (options_.manifest_path.empty() || manifest_lock_fd_ >= 0) return;
  const fs::path path(options_.manifest_path + ".lock");
  std::error_code ec;
  if (path.has_parent_path()) fs::create_directories(path.parent_path(), ec);
  manifest_lock_fd_ =
      ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (manifest_lock_fd_ < 0) {
    log::warn() << "spooler: cannot create " << path.string() << " ("
                << std::strerror(errno)
                << "); running without double-spooler protection";
    return;
  }
  if (::flock(manifest_lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(manifest_lock_fd_);
    manifest_lock_fd_ = -1;
    throw std::runtime_error(
        "another live spooler already owns " + options_.manifest_path +
        " (two spoolers must not share a journal; a dead owner releases "
        "the lock automatically)");
  }
}

void Spooler::add(Job job) {
  SATD_EXPECT(!job.name.empty(), "job needs a name");
  SATD_EXPECT(job.max_attempts > 0, "job needs at least one attempt");
  for (const auto& existing : jobs_) {
    SATD_EXPECT(existing.name != job.name,
                "duplicate job name: " + job.name);
  }
  jobs_.push_back(std::move(job));
}

bool Spooler::outputs_present(const Job& job) const {
  for (const auto& out : job.outputs) {
    if (!fs::exists(out)) return false;
  }
  return true;
}

std::size_t Spooler::cores_per_child() const {
  if (options_.cores.empty()) return 0;
  const std::size_t per = options_.cores.size() / options_.slots;
  return per > 0 ? per : 1;
}

void Spooler::finish_done(std::size_t idx, std::size_t attempt,
                          bool adopted, const ResourceUsage& usage,
                          const std::vector<int>& cores) {
  const Job& job = jobs_[idx];
  track_[idx].phase = Track::Phase::kDone;
  track_[idx].attempts = attempt;
  JobRecord rec{job.name, JobState::kDone, attempt,
                adopted ? "adopted orphan finished" : "", job.outputs};
  rec.cores = cores;
  rec.usage = usage;
  manifest_.record(std::move(rec));
  log::info() << "spooler: " << job.name << " done (attempt " << attempt
              << (adopted ? ", adopted orphan" : "")
              << (usage.any() ? ", " + usage.to_string() : "") << ")";
}

void Spooler::finish_failure(std::size_t idx, std::size_t attempt,
                             FailureKind kind, const std::string& reason,
                             int exit_code, int exit_signal,
                             const ResourceUsage& usage,
                             const std::vector<int>& cores) {
  const Job& job = jobs_[idx];
  const bool exhausted = attempt >= job.max_attempts;
  JobRecord rec{job.name,
                exhausted ? JobState::kDegraded : JobState::kFailed,
                attempt, reason, job.outputs};
  rec.kind = kind;
  rec.exit_code = exit_code;
  rec.exit_signal = exit_signal;
  rec.cores = cores;
  rec.usage = usage;
  manifest_.record(std::move(rec));
  track_[idx].attempts = attempt;
  if (exhausted) {
    track_[idx].phase = Track::Phase::kDegraded;
    log::warn() << "spooler: " << job.name << " degraded after " << attempt
                << " attempts (" << reason << ")";
  } else {
    track_[idx].phase = Track::Phase::kWaiting;
    const double delay = backoff_.delay(attempt - 1);
    track_[idx].eligible_at = clock_.now() + delay;
    log::warn() << "spooler: " << job.name << " attempt " << attempt << " "
                << reason << "; retrying in " << delay << "s";
  }
}

void Spooler::reap(Child& child, const ChildStatus& status) {
  const Job& job = jobs_[child.idx];
  ResourceUsage usage = status.usage;
  if (child.peak_rss_kb > usage.peak_rss_kb) {
    usage.peak_rss_kb = child.peak_rss_kb;
  }
  if (usage.wall_seconds <= 0.0) {
    usage.wall_seconds = clock_.now() - child.spawned_at;
  }

  if (status.signaled) {
    if (child.deadline_kill) {
      finish_failure(child.idx, child.attempt, FailureKind::kTimeout,
                     "timeout: SIGKILLed past the watchdog deadline", 0,
                     status.term_signal, usage, child.cores);
    } else {
      finish_failure(child.idx, child.attempt, FailureKind::kCrashed,
                     "crashed: " + describe_exit(0, status.term_signal), 0,
                     status.term_signal, usage, child.cores);
    }
  } else if (status.exit_code == 0) {
    if (outputs_present(job)) {
      finish_done(child.idx, child.attempt, child.adopted, usage,
                  child.cores);
    } else {
      finish_failure(child.idx, child.attempt, FailureKind::kFailed,
                     "failed: exited 0 but declared outputs are missing",
                     0, 0, usage, child.cores);
    }
  } else if (status.exit_code == kExitOverrun) {
    finish_failure(child.idx, child.attempt, FailureKind::kTimeout,
                   "deadline_overrun: child stopped at its watchdog "
                   "deadline", status.exit_code, 0, usage, child.cores);
  } else {
    finish_failure(child.idx, child.attempt, FailureKind::kFailed,
                   "failed: " + describe_exit(status.exit_code, 0),
                   status.exit_code, 0, usage, child.cores);
  }

  for (int core : child.cores) free_cores_.push_back(core);
  if (child.gate_held && gate_) gate_->release();
  child.done = true;
}

MatrixReport Spooler::run() {
  const std::vector<std::size_t> order = topological_order(jobs_);
  lock_manifest();
  if (manifest_.load()) {
    log::info() << "spooler: adopted manifest " << manifest_.path() << " ("
                << manifest_.records().size() << " prior records)";
  }
  if (!options_.log_dir.empty()) fs::create_directories(options_.log_dir);

  track_.assign(jobs_.size(), Track{});
  children_.clear();
  free_cores_ = options_.cores;
  std::vector<bool> resumed(jobs_.size(), false);

  // ---- resume pass: adopt DONE work and orphaned children ----
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& job = jobs_[i];
    const JobRecord* prior = manifest_.find(job.name);
    if (prior == nullptr) continue;

    if (prior->state == JobState::kDone) {
      if (outputs_present(job)) {
        track_[i].phase = Track::Phase::kDone;
        track_[i].attempts = prior->attempts;
        resumed[i] = true;
        log::info() << "spooler: " << job.name << " already done, skipping";
      } else {
        log::warn() << "spooler: " << job.name
                    << " recorded done but outputs are missing; re-running";
      }
      continue;
    }

    if (prior->state != JobState::kRunning) continue;
    track_[i].attempts = prior->attempts;

    ProcessId id{prior->pid, prior->start_id};
    if (prior->pid > 0 && runner_.alive(id)) {
      // The previous spooler died but its child survived: adopt it.
      // We cannot reap a non-child, so completion is judged by the
      // process vanishing and the declared outputs appearing.
      Child child;
      child.idx = i;
      child.id = id;
      child.attempt = prior->attempts;
      child.adopted = true;
      child.spawned_at = clock_.now();
      child.next_rss_at = clock_.now();
      child.peak_rss_kb = prior->usage.peak_rss_kb;
      child.cores = prior->cores;
      const double budget = job.deadline_seconds > kNoDeadline
                                ? job.deadline_seconds
                                : options_.orphan_deadline;
      child.kill_at = clock_.now() + budget + options_.kill_grace;
      children_.push_back(std::move(child));
      track_[i].phase = Track::Phase::kRunning;
      log::info() << "spooler: adopted orphaned child of " << job.name
                  << " (pid " << prior->pid << ")";
    } else {
      // Dead (or pre-spawn) RUNNING record: the attempt crashed with its
      // supervisor. Journal it as CRASHED — distinguishable from an
      // ordinary failure — and let the normal retry path decide.
      JobRecord crashed = *prior;
      crashed.state = JobState::kFailed;
      crashed.kind = FailureKind::kCrashed;
      crashed.reason = prior->pid > 0
                           ? "crashed: spooler died mid-attempt; orphan pid " +
                                 std::to_string(prior->pid) + " is gone"
                           : "crashed: process died mid-attempt";
      manifest_.record(std::move(crashed));
      if (prior->attempts >= job.max_attempts) {
        JobRecord degraded = *manifest_.find(job.name);
        degraded.state = JobState::kDegraded;
        manifest_.record(std::move(degraded));
        track_[i].phase = Track::Phase::kDegraded;
        log::warn() << "spooler: " << job.name
                    << " crashed on its final attempt; degraded";
      } else {
        log::warn() << "spooler: " << job.name << " attempt "
                    << prior->attempts
                    << " crashed in a previous run; retrying";
      }
    }
  }

  const std::size_t per_child = cores_per_child();

  // ---- event loop ----
  for (;;) {
    bool all_terminal = true;
    for (const Track& t : track_) {
      if (t.phase != Track::Phase::kDone &&
          t.phase != Track::Phase::kDegraded) {
        all_terminal = false;
        break;
      }
    }
    if (all_terminal) break;

    bool progressed = false;
    const double now = clock_.now();

    // 1) Poll running children: sample RSS, enforce deadlines, reap.
    for (Child& child : children_) {
      if (child.done) continue;
      const Job& job = jobs_[child.idx];

      if (child.adopted) {
        // poll() covers both orphan flavors: a process that is still our
        // reapable child (the previous "spooler" died by simulated crash
        // in this very process) is wait4'd normally — real rusage and
        // all — while a true non-child orphan falls back to the
        // identity-checked liveness probe and reports a crash-like exit
        // once it vanishes. Either way success is judged by the declared
        // outputs, never by an exit code we may not have observed.
        const ChildStatus status = runner_.poll(child.id);
        if (status.running) {
          if (now >= child.next_rss_at) {
            const long kb = runner_.sample_rss_kb(child.id);
            if (kb > child.peak_rss_kb) child.peak_rss_kb = kb;
            child.next_rss_at = now + options_.rss_sample_interval;
          }
          if (child.kill_at > 0.0 && now > child.kill_at &&
              !child.kill_sent) {
            log::warn() << "spooler: adopted orphan of " << job.name
                        << " overran its watchdog; killing";
            runner_.kill(child.id, SIGKILL);
            child.kill_sent = true;
            child.deadline_kill = true;
          }
          continue;
        }
        ResourceUsage usage = status.usage;
        if (child.peak_rss_kb > usage.peak_rss_kb) {
          usage.peak_rss_kb = child.peak_rss_kb;
        }
        if (usage.wall_seconds <= 0.0) {
          usage.wall_seconds = now - child.spawned_at;
        }
        if (!child.deadline_kill && outputs_present(job)) {
          finish_done(child.idx, child.attempt, true, usage, child.cores);
        } else {
          finish_failure(
              child.idx, child.attempt,
              child.deadline_kill ? FailureKind::kTimeout
                                  : FailureKind::kCrashed,
              child.deadline_kill
                  ? "timeout: adopted orphan SIGKILLed past the deadline"
                  : "crashed: adopted orphan died without its outputs",
              0, child.deadline_kill ? SIGKILL : 0, usage, child.cores);
        }
        for (int core : child.cores) free_cores_.push_back(core);
        child.done = true;
        progressed = true;
        continue;
      }

      const ChildStatus status = runner_.poll(child.id);
      if (status.running) {
        if (now >= child.next_rss_at) {
          const long kb = runner_.sample_rss_kb(child.id);
          if (kb > child.peak_rss_kb) child.peak_rss_kb = kb;
          child.next_rss_at = now + options_.rss_sample_interval;
        }
        if (child.kill_at > 0.0 && now > child.kill_at &&
            !child.kill_sent) {
          log::warn() << "spooler: " << job.name
                      << " overran its watchdog deadline; killing pid "
                      << child.id.pid;
          runner_.kill(child.id, SIGKILL);
          child.kill_sent = true;
          child.deadline_kill = true;
        }
        continue;
      }
      reap(child, status);
      progressed = true;
    }
    std::erase_if(children_, [](const Child& c) { return c.done; });

    // 2) Launch ready jobs, in stable topological order.
    for (std::size_t idx : order) {
      Track& track = track_[idx];
      if (track.phase != Track::Phase::kWaiting) continue;
      const Job& job = jobs_[idx];

      // Dependency gating: a degraded dep degrades this job; a pending
      // or running dep just means "not yet".
      bool deps_done = true;
      const char* broken_dep = nullptr;
      for (const auto& dep : job.deps) {
        for (std::size_t d = 0; d < jobs_.size(); ++d) {
          if (jobs_[d].name != dep) continue;
          if (track_[d].phase == Track::Phase::kDegraded) {
            broken_dep = dep.c_str();
          } else if (track_[d].phase != Track::Phase::kDone) {
            deps_done = false;
          }
          break;
        }
        if (broken_dep != nullptr) break;
      }
      if (broken_dep != nullptr) {
        const std::string reason =
            std::string("dependency not satisfied: ") + broken_dep;
        manifest_.record({job.name, JobState::kDegraded, track.attempts,
                          reason, job.outputs});
        track.phase = Track::Phase::kDegraded;
        log::warn() << "spooler: " << job.name << " degraded (" << reason
                    << ")";
        progressed = true;
        continue;
      }
      if (!deps_done || now < track.eligible_at) continue;
      if (children_.size() >= options_.slots) continue;
      if (per_child > 0 && free_cores_.size() < per_child) continue;

      bool gate_held = false;
      if (gate_) {
        gate_held = gate_->try_acquire();
        if (!gate_held && now >= next_gate_repair_) {
          gate_->repair();
          next_gate_repair_ = now + 1.0;
          gate_held = gate_->try_acquire();
        }
        if (!gate_held) continue;  // farm is saturated; poll again later
      }

      const std::size_t attempt = ++track.attempts;
      Child child;
      child.idx = idx;
      child.attempt = attempt;
      child.spawned_at = now;
      child.next_rss_at = now + options_.rss_sample_interval;
      child.gate_held = gate_held;
      if (per_child > 0) {
        child.cores.assign(free_cores_.begin(),
                           free_cores_.begin() +
                               static_cast<std::ptrdiff_t>(per_child));
        free_cores_.erase(free_cores_.begin(),
                          free_cores_.begin() +
                              static_cast<std::ptrdiff_t>(per_child));
      }
      if (job.deadline_seconds > kNoDeadline) {
        child.kill_at = now + job.deadline_seconds + options_.kill_grace;
      }

      SpawnSpec spec = factory_(job, attempt);
      spec.cpus = child.cores;
      if (!child.cores.empty()) {
        spec.env.emplace_back("SATD_THREADS",
                              std::to_string(child.cores.size()));
      }
      if (!options_.log_dir.empty() && spec.log_path.empty()) {
        spec.log_path =
            options_.log_dir + "/" + sanitize_leaf(job.name) + ".log";
      }

      child.id = runner_.spawn(spec);
      JobRecord rec{job.name, JobState::kRunning, attempt, "",
                    job.outputs};
      rec.pid = child.id.pid;
      rec.start_id = child.id.start_id;
      rec.cores = child.cores;
      manifest_.record(std::move(rec));
      log::info() << "spooler: launched " << job.name << " attempt "
                  << attempt << " as pid " << child.id.pid;
      track.phase = Track::Phase::kRunning;
      children_.push_back(std::move(child));
      progressed = true;

      if (take_spool_crash(job.name, attempt)) {
        // Simulated kill -9 of the spooler: leak the children (they keep
        // running as orphans), leak any gate tokens (repair recovers
        // them), and unwind with the journal showing RUNNING + pid —
        // byte-for-byte what a dead spooler leaves behind.
        if (gate_) gate_->abandon_for_test();
        for (Child& c : children_) c.gate_held = false;
        throw SimulatedCrashError("injected spooler crash after launching " +
                                  job.name + " attempt " +
                                  std::to_string(attempt));
      }
    }

    if (!progressed) clock_.sleep_for(options_.poll_interval);
  }

  // ---- report ----
  MatrixReport report;
  report.jobs.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    JobOutcome& outcome = report.jobs[i];
    outcome.name = jobs_[i].name;
    outcome.state = track_[i].phase == Track::Phase::kDone
                        ? JobState::kDone
                        : JobState::kDegraded;
    outcome.attempts = track_[i].attempts;
    outcome.resumed = resumed[i];
    if (const JobRecord* rec = manifest_.find(jobs_[i].name)) {
      outcome.reason = rec->reason;
      outcome.kind = rec->kind;
      outcome.exit_code = rec->exit_code;
      outcome.exit_signal = rec->exit_signal;
      outcome.cores = rec->cores;
      outcome.usage = rec->usage;
    }
  }
  return report;
}

}  // namespace satd::runtime
