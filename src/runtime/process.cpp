#include "runtime/process.h"

#include <fcntl.h>
#include <sched.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/contract.h"
#include "common/log.h"

namespace satd::runtime {

// ---- ForkExecRunner ----

ForkExecRunner& ForkExecRunner::instance() {
  static ForkExecRunner runner;
  return runner;
}

ProcessId ForkExecRunner::spawn(const SpawnSpec& spec) {
  SATD_EXPECT(!spec.argv.empty(), "spawn needs an argv");

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Only async-signal-safe-ish setup; any failure exits 127.
    if (!spec.cpus.empty()) {
      cpu_set_t mask;
      CPU_ZERO(&mask);
      for (int cpu : spec.cpus) {
        if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &mask);
      }
      ::sched_setaffinity(0, sizeof(mask), &mask);  // best-effort
    }
    for (const auto& [key, value] : spec.env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    if (!spec.log_path.empty()) {
      const int fd = ::open(spec.log_path.c_str(),
                            O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    std::vector<char*> argv;
    argv.reserve(spec.argv.size() + 1);
    for (const auto& arg : spec.argv) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // exec failed; 127 is the shell's "command not found" convention.
    ::_exit(127);
  }

  // Parent. The child stays visible in /proc until reaped (zombies
  // included), so the start identity read here can never miss.
  ProcessId id;
  id.pid = static_cast<int>(pid);
  id.start_id = read_proc_start_id(id.pid);
  tracked_[id.pid] = {SystemClock::instance().now(), 0};
  return id;
}

ChildStatus ForkExecRunner::poll(const ProcessId& id) {
  ChildStatus status;
  int wstatus = 0;
  struct rusage ru{};
  const pid_t r = ::wait4(id.pid, &wstatus, WNOHANG, &ru);
  if (r == 0) return status;  // still running
  if (r < 0) {
    // Not our child (adopted orphan, or double-reap): fall back to the
    // identity check. A vanished process reports a crash-like exit.
    status.running = alive(id);
    if (!status.running) {
      status.signaled = true;
      status.term_signal = SIGKILL;
    }
    return status;
  }

  status.running = false;
  if (WIFSIGNALED(wstatus)) {
    status.signaled = true;
    status.term_signal = WTERMSIG(wstatus);
  } else {
    status.exit_code = WEXITSTATUS(wstatus);
  }
  status.usage.user_seconds =
      ru.ru_utime.tv_sec + ru.ru_utime.tv_usec / 1e6;
  status.usage.sys_seconds =
      ru.ru_stime.tv_sec + ru.ru_stime.tv_usec / 1e6;
  status.usage.peak_rss_kb = ru.ru_maxrss;  // kB on Linux
  auto it = tracked_.find(id.pid);
  if (it != tracked_.end()) {
    status.usage.wall_seconds =
        SystemClock::instance().now() - it->second.spawned_at;
    if (it->second.peak_rss_kb > status.usage.peak_rss_kb) {
      status.usage.peak_rss_kb = it->second.peak_rss_kb;
    }
    tracked_.erase(it);
  }
  return status;
}

void ForkExecRunner::kill(const ProcessId& id, int signal) {
  if (id.pid > 0) ::kill(id.pid, signal);
}

long ForkExecRunner::sample_rss_kb(const ProcessId& id) {
  const long kb = read_proc_peak_rss_kb(id.pid);
  auto it = tracked_.find(id.pid);
  if (it != tracked_.end() && kb > it->second.peak_rss_kb) {
    it->second.peak_rss_kb = kb;
  }
  return kb;
}

bool ForkExecRunner::alive(const ProcessId& id) {
  return process_matches(id.pid, id.start_id);
}

// ---- FakeProcessRunner ----

void FakeProcessRunner::enqueue(const std::string& key, Script script) {
  scripts_[key].push_back(std::move(script));
}

void FakeProcessRunner::add_orphan(int pid, const std::string& start_id,
                                   double dies_at,
                                   std::function<void()> on_death) {
  orphans_[pid] = Orphan{start_id, dies_at, std::move(on_death), false};
}

ProcessId FakeProcessRunner::spawn(const SpawnSpec& spec) {
  SATD_EXPECT(!spec.argv.empty(), "spawn needs an argv");
  Fake fake;
  auto it = scripts_.find(spec.argv[0]);
  if (it != scripts_.end() && !it->second.empty()) {
    fake.script = std::move(it->second.front());
    it->second.erase(it->second.begin());
  }
  fake.started_at = clock_.now();

  ProcessId id;
  id.pid = next_pid_++;
  id.start_id = "fake-" + std::to_string(id.pid);
  fakes_[id.pid] = std::move(fake);
  spawned_.push_back(spec);
  ++spawn_count_;
  ++live_;
  if (live_ > max_concurrent_) max_concurrent_ = live_;
  return id;
}

bool FakeProcessRunner::fake_exited(const Fake& f) const {
  if (f.killed) return true;
  return clock_.now() >= f.started_at + f.script.duration;
}

ChildStatus FakeProcessRunner::poll(const ProcessId& id) {
  ChildStatus status;
  if (orphans_.count(id.pid) != 0 && fakes_.count(id.pid) == 0) {
    // Non-child orphan: mirror ForkExecRunner's fallback — alive while
    // the identity matches, a crash-like exit once it vanishes.
    status.running = alive(id);
    if (!status.running) {
      status.signaled = true;
      status.term_signal = SIGKILL;
    }
    return status;
  }
  auto it = fakes_.find(id.pid);
  SATD_EXPECT(it != fakes_.end(), "poll of unknown fake pid");
  Fake& fake = it->second;
  if (!fake_exited(fake)) return status;

  status.running = false;
  if (fake.killed) {
    status.signaled = true;
    status.term_signal = fake.kill_signal;
    status.usage.wall_seconds = fake.killed_at - fake.started_at;
  } else {
    if (fake.script.term_signal > 0) {
      status.signaled = true;
      status.term_signal = fake.script.term_signal;
    } else {
      status.exit_code = fake.script.exit_code;
    }
    status.usage.wall_seconds = fake.script.duration;
  }
  status.usage.user_seconds = fake.script.user_seconds;
  status.usage.sys_seconds = fake.script.sys_seconds;
  status.usage.peak_rss_kb = fake.script.peak_rss_kb;
  if (!fake.reaped) {
    fake.reaped = true;
    --live_;
    if (fake.script.on_exit && !fake.killed) fake.script.on_exit();
  }
  return status;
}

void FakeProcessRunner::kill(const ProcessId& id, int signal) {
  kills_.emplace_back(id.pid, signal);
  auto it = fakes_.find(id.pid);
  if (it == fakes_.end()) {
    auto orphan = orphans_.find(id.pid);
    if (orphan != orphans_.end() && signal == SIGKILL) {
      // Dead immediately; a killed orphan never runs its natural-death
      // hook (it models the child writing outputs before exiting).
      orphan->second.dies_at = clock_.now();
      orphan->second.death_ran = true;
    }
    return;
  }
  if (signal == SIGKILL && !fake_exited(it->second)) {
    it->second.killed = true;
    it->second.kill_signal = signal;
    it->second.killed_at = clock_.now();
  }
}

long FakeProcessRunner::sample_rss_kb(const ProcessId& id) {
  auto it = fakes_.find(id.pid);
  if (it != fakes_.end() && !fake_exited(it->second)) {
    return it->second.script.peak_rss_kb;
  }
  return 0;
}

bool FakeProcessRunner::alive(const ProcessId& id) {
  auto orphan = orphans_.find(id.pid);
  if (orphan != orphans_.end() && orphan->second.start_id == id.start_id) {
    if (clock_.now() < orphan->second.dies_at) return true;
    if (!orphan->second.death_ran) {
      orphan->second.death_ran = true;
      if (orphan->second.on_death) orphan->second.on_death();
    }
    return false;
  }
  auto it = fakes_.find(id.pid);
  return it != fakes_.end() && !fake_exited(it->second);
}

}  // namespace satd::runtime
