#include "runtime/rusage.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace satd::runtime {

namespace {

std::string proc_path(int pid, const char* leaf) {
  return "/proc/" + std::to_string(pid) + "/" + leaf;
}

}  // namespace

std::string ResourceUsage::to_string() const {
  std::ostringstream ss;
  char buf[64];
  bool first = true;
  const auto emit = [&](const char* text) {
    if (!first) ss << " ";
    ss << text;
    first = false;
  };
  if (peak_rss_kb > 0) {
    if (peak_rss_kb >= 1024) {
      std::snprintf(buf, sizeof(buf), "rss=%.0fMB", peak_rss_kb / 1024.0);
    } else {
      std::snprintf(buf, sizeof(buf), "rss=%ldkB", peak_rss_kb);
    }
    emit(buf);
  }
  if (wall_seconds > 0.0) {
    std::snprintf(buf, sizeof(buf), "wall=%.1fs", wall_seconds);
    emit(buf);
  }
  if (user_seconds > 0.0) {
    std::snprintf(buf, sizeof(buf), "user=%.1fs", user_seconds);
    emit(buf);
  }
  if (sys_seconds > 0.0) {
    std::snprintf(buf, sizeof(buf), "sys=%.1fs", sys_seconds);
    emit(buf);
  }
  return ss.str();
}

long read_proc_peak_rss_kb(int pid) {
  std::ifstream status(proc_path(pid, "status"));
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      long kb = 0;
      if (std::sscanf(line.c_str(), "VmHWM: %ld", &kb) == 1) return kb;
      return 0;
    }
  }
  return 0;
}

std::string read_proc_start_id(int pid) {
  std::ifstream stat(proc_path(pid, "stat"));
  std::string contents;
  if (!std::getline(stat, contents)) return "";
  // Field 2 (comm) may contain spaces; everything after the closing ')'
  // is space-separated, with starttime at position 22 overall.
  const std::size_t paren = contents.rfind(')');
  if (paren == std::string::npos) return "";
  std::istringstream rest(contents.substr(paren + 1));
  std::string field;
  for (int i = 3; i <= 22; ++i) {
    if (!(rest >> field)) return "";
  }
  return field;
}

bool process_matches(int pid, const std::string& start_id) {
  if (pid <= 0) return false;
  const std::string current = read_proc_start_id(pid);
  if (current.empty()) return false;
  return start_id.empty() || current == start_id;
}

}  // namespace satd::runtime
