// Model registry for the inference server: named, versioned, hot-swappable
// model snapshots.
//
// A Sequential is NOT shareable across threads — forward_into mutates the
// internal activation tape — so the registry never hands out a live model.
// Instead publish() serializes the model (nn::save_model) into an immutable
// ModelSnapshot, and each serving worker *instantiates* a private replica
// from the snapshot it is currently batching against. Raw-float
// serialization makes every replica bit-identical to the published model,
// so hot-swapping is invisible to numerics: a response computed on version
// v is exactly what version v's weights produce.
//
// Hot swap: publish() atomically replaces the shared_ptr held under the
// registry mutex. Workers that already grabbed the old snapshot finish
// their in-flight batch on it (the shared_ptr keeps it alive); they pick up
// the new version at the next batch boundary. A batch therefore never
// mixes versions and a forward pass is never torn by a swap.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/quantized.h"
#include "nn/sequential.h"

namespace satd::serve {

/// Immutable published model: the zoo spec, a monotonically increasing
/// per-name version, and the serialized parameter payload. Alongside the
/// float payload, publish() bakes an int8 QuantizedModel of the same
/// weights; unlike a Sequential it is immutable and thread-safe, so
/// quantized-mode workers share it directly instead of instantiating
/// per-worker replicas.
struct ModelSnapshot {
  std::string name;
  std::uint64_t version = 0;
  std::string spec;     ///< zoo spec used to rebuild the architecture
  std::string payload;  ///< nn::save_model bytes (spec + params + state)
  std::shared_ptr<const nn::QuantizedModel> quantized;
};

using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

/// Thread-safe name -> snapshot map (see file comment for the swap
/// protocol).
class ModelRegistry {
 public:
  /// Serializes `model` and publishes it under `name`, replacing any
  /// previous version atomically. Returns the new version number
  /// (starting at 1). `spec` must be a known zoo spec — instantiate()
  /// rebuilds the architecture from it.
  std::uint64_t publish(const std::string& name, nn::Sequential& model,
                        const std::string& spec);

  /// Loads a model file (nn::load_model_file semantics: durable frame,
  /// spec header) and publishes it under `name`.
  std::uint64_t publish_file(const std::string& name,
                             const std::string& path);

  /// Republishes the weights of an existing snapshot under a NEW version
  /// (payload and quantized model reused verbatim, so the weights are
  /// bit-identical). The shard router's rollback: re-promote the
  /// last-good snapshot without holding the live Sequential around.
  std::uint64_t publish_snapshot(const std::string& name,
                                 const ModelSnapshot& from);

  /// Current snapshot for `name`, or nullptr when nothing is published.
  SnapshotPtr current(const std::string& name) const;

  /// Removes `name`; in-flight replicas keep working on their snapshot.
  void withdraw(const std::string& name);

  /// Published names (for diagnostics).
  std::vector<std::string> names() const;

  /// Builds a private, bit-identical replica of a snapshot. Each serving
  /// thread owns its replica; replicas are never shared.
  static nn::Sequential instantiate(const ModelSnapshot& snapshot);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, SnapshotPtr> models_;
};

}  // namespace satd::serve
