// Dynamic micro-batching: coalesces single-image requests into one
// forward pass.
//
// The static policy is the classic (max_batch, max_wait) pair: on popping
// the first request a worker opens a batching window of at most max_wait
// seconds and keeps popping until the batch is full or the window closes,
// then runs ONE workspace-based forward_into + softmax_into over the
// coalesced [B, C, H, W] tensor and scatters per-request
// probabilities/argmax back through each request's promise.
//
// The adaptive policy (BatchPolicy::adaptive) keeps max_wait only as a
// hard cap and decides *whether waiting is predicted to raise goodput*
// from two live estimates (serve/estimator.h): the EWMA inter-arrival
// gap and a per-batch-size service-time model learned online per model
// version. With b requests staged and the queue empty, the window stays
// open only while
//
//     (b+1) * s(b)  >  b * (w + s(b+1))
//
// — i.e. serving b now at rate b/s(b) is predicted to be beaten by
// waiting the expected w seconds for one more and serving b+1 at rate
// (b+1)/(w + s(b+1)). The window also closes when the predicted next
// arrival lands past the max_wait cap, when no service-time data exists
// (never speculate about an unmeasured model), when a staged deadline is
// one poll quantum + predicted service away from busting (deadline
// pressure), and the moment an URGENT request (queue priority lane) is
// staged — tight-deadline work preempts window forming outright.
//
// Numerics contract: the library's kernels compute each output row from
// its input row alone (independent-output decomposition), so a request's
// probabilities are bit-identical whether it was served in a batch of 1
// or coalesced with 31 strangers — pinned by tests/serve. That is what
// makes micro-batching safe to enable: it changes throughput, never
// answers. The adaptive policy only changes batch *composition*, so the
// contract is unaffected (re-pinned under adaptive in tests/serve).
//
// Time flows through the injected Clock; the window is a poll loop over
// clock.sleep_for rather than a condition variable, so a FakeClock drives
// the window/deadline state machine — including every adaptive close
// decision, which reads only the clock and the deterministic estimators —
// exactly in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "nn/sequential.h"
#include "serve/estimator.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/robustness_monitor.h"
#include "serve/stats.h"

namespace satd::serve {

/// Coalescing policy.
struct BatchPolicy {
  std::size_t max_batch = 8;      ///< hard batch-size cap
  double max_wait = 0.002;        ///< seconds to hold an open window
  double poll_interval = 0.0002;  ///< sleep granularity inside the window
  double idle_wait = 0.0005;      ///< sleep when the queue is empty
  /// Serve with the snapshot's int8 QuantizedModel instead of a float
  /// replica. The per-row activation quantization keeps the batch-of-1
  /// invariance, so micro-batching stays answer-preserving in this mode
  /// too; predictions may differ from the float path within the pinned
  /// quantization tolerance (tests/nn/quantized_test.cpp).
  bool quantized = false;
  /// SLO-aware window control (see file comment). Requires the arrival
  /// and service-time estimators to be wired in; max_wait becomes a hard
  /// cap instead of the default hold time.
  bool adaptive = false;
};

/// One serving worker's batching loop. Each worker owns a Microbatcher —
/// and through it a private model replica — so workers never share
/// mutable model state.
class Microbatcher {
 public:
  /// `monitor` may be null (monitoring disabled). `arrivals`/`service`
  /// may be null only when the policy is not adaptive; when present,
  /// every served batch feeds the service-time model (tagged with the
  /// replica version, so a hot swap resets the curve).
  Microbatcher(ModelRegistry& registry, std::string model_name,
               RequestQueue& queue, ServerStats& stats, Clock& clock,
               BatchPolicy policy, RobustnessMonitor* monitor = nullptr,
               ArrivalEstimator* arrivals = nullptr,
               ServiceTimeEstimator* service = nullptr);

  /// One batching cycle: pop the first request, hold the window, serve
  /// the coalesced batch. Returns false if the queue was empty (nothing
  /// was done). Exposed for deterministic single-threaded tests.
  bool step();

  /// Runs step() until the queue is drained (begin_drain + backlog empty).
  void run();

  /// Version of the replica that served the last batch (0 = none yet).
  std::uint64_t replica_version() const { return replica_version_; }

 private:
  /// Adaptive close decision with the queue momentarily empty and
  /// staged_ holding the current batch; true = spend one more poll
  /// quantum waiting (see file comment for the rule).
  bool keep_waiting(double now, double window_close) const;

  void refresh_replica();
  void serve_batch(std::vector<Request>& batch);

  ModelRegistry& registry_;
  std::string model_name_;
  RequestQueue& queue_;
  ServerStats& stats_;
  Clock& clock_;
  BatchPolicy policy_;
  RobustnessMonitor* monitor_;
  ArrivalEstimator* arrivals_;
  ServiceTimeEstimator* service_;

  std::optional<nn::Sequential> replica_;
  // Quantized mode: the snapshot's immutable QuantizedModel is shared
  // across workers (no per-worker instantiation); only the workspace is
  // worker-private.
  std::shared_ptr<const nn::QuantizedModel> qreplica_;
  nn::QuantizedWorkspace qws_;
  std::uint64_t replica_version_ = 0;

  // Reused across batches: the coalesced input, logits, probabilities
  // and argmax scratch (the steady state serves with no allocation
  // beyond per-response probability vectors).
  Tensor batch_, logits_, probs_;
  std::vector<std::size_t> preds_;
  std::vector<Request> staged_;
};

}  // namespace satd::serve
