// The inference server: worker threads around the queue/microbatcher
// core, plus optional robustness monitoring.
//
// Lifecycle: construct -> start() -> submit()* -> drain(). drain() closes
// admission (late submits get typed kStopping rejections), lets the
// workers finish the admitted backlog, joins them, and stops the monitor
// — no admitted request is ever dropped with an unresolved ticket. The
// destructor drains implicitly so a Server can never leak threads.
//
// Each worker owns a Microbatcher and through it a private replica of the
// published model; hot-swapping via the registry reaches workers at batch
// boundaries (see serve/registry.h for the swap protocol).
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "serve/estimator.h"
#include "serve/microbatcher.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/robustness_monitor.h"
#include "serve/stats.h"

namespace satd::serve {

/// Everything that shapes one server instance.
struct ServerConfig {
  std::string model_name = "default";  ///< registry name to serve
  std::size_t workers = 1;             ///< serving threads
  QueueConfig queue;                   ///< admission control
  BatchPolicy batch;                   ///< coalescing policy
  bool enable_monitor = false;         ///< robustness drift monitor
  MonitorConfig monitor;               ///< knobs when enabled
};

/// Multi-threaded micro-batching inference server (see file comment).
class Server {
 public:
  Server(ModelRegistry& registry, ServerConfig config,
         Clock& clock = SystemClock::instance());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the worker threads (and the monitor worker when enabled).
  /// Idempotent.
  void start();

  /// Submits one image. `timeout` is RELATIVE seconds (0 = no deadline);
  /// it becomes an absolute queue deadline against the server's clock.
  /// Never blocks: overload resolves the ticket immediately with a typed
  /// rejection. `id_out` (optional) receives the admission id usable
  /// with cancel(); 0 when the request was rejected.
  Ticket submit(const Tensor& image, double timeout = 0.0,
                std::uint64_t* id_out = nullptr);

  /// Cancels a still-queued request by admission id (see
  /// RequestQueue::cancel). Safe to race with serving: a request already
  /// popped is simply served into the abandoned ticket.
  bool cancel(std::uint64_t id) { return queue_.cancel(id); }

  /// Drain-then-stop: closes admission, serves the backlog, joins all
  /// workers. Idempotent; also runs from the destructor.
  void drain();

  ServerStats& stats() { return stats_; }
  RequestQueue& queue() { return queue_; }
  /// Live load/cost models feeding the adaptive policy and the queue's
  /// feasibility horizon (always maintained, even under the static
  /// policy — admission uses them either way).
  ArrivalEstimator& arrivals() { return arrivals_; }
  ServiceTimeEstimator& service_model() { return service_; }
  /// Null unless enable_monitor was set.
  RobustnessMonitor* monitor() { return monitor_.get(); }

 private:
  /// Expected window + service delay under the configured policy; the
  /// queue adds it to min_slack when judging deadline feasibility.
  double feasibility_horizon();

  ModelRegistry& registry_;
  ServerConfig config_;
  Clock& clock_;
  ServerStats stats_;
  ArrivalEstimator arrivals_;
  ServiceTimeEstimator service_;
  RequestQueue queue_;
  std::unique_ptr<RobustnessMonitor> monitor_;
  std::vector<std::unique_ptr<Microbatcher>> batchers_;
  std::vector<std::thread> threads_;
  bool started_ = false;
};

}  // namespace satd::serve
