// Multi-shard serving layer: N independent Server instances behind
// deterministic routing, with staged (canary) rollout and automatic
// rollback driven by the per-shard RobustnessMonitor.
//
// Each shard owns a PRIVATE ModelRegistry and Server, so a model pushed
// to one shard is invisible to the others — that isolation is what makes
// a canary a canary. publish() fans a model out to every shard;
// publish_canary() stages it on exactly one shard and diverts a
// configurable fraction of traffic there. From that point tick() runs
// the rollout state machine:
//
//   CANARY --alarm--------------------> rollback: the shard's registry is
//     |                                 republished with the saved
//     |                                 last-good snapshot (bit-identical
//     |                                 weights, new version), its
//     |                                 monitor is reset, and the shard
//     |                                 returns to SERVING. Journaled.
//     +--clean window + soak---------> promote: the canary snapshot is
//                                       republished to every other shard
//                                       and the canary returns to
//                                       SERVING. Journaled.
//
// A SERVING shard whose monitor alarms outside a rollout is EJECTED
// (removed from routing until reinstate()); DRAINING shards take no new
// traffic but keep their queues. When no shard is routable the router
// degrades to hashing over ALL shards rather than rejecting — the
// alternative turns one bad rollout into a full outage.
//
// Routing is deterministic: a request's route_key (or a round-robin
// counter when the client passes 0) is mixed through splitmix64, first
// deciding canary diversion (mix % 10000 against the traffic fraction)
// and then a weighted pick over routable shards. Identical keys always
// land on identical shards for a fixed router state, which is what the
// chaos drills pin.
//
// Every decision (publish, canary, alarm, rollback, promote, eject,
// drain, reinstate) is recorded in an in-memory history and, when
// journal_path is set, appended as a JSON line for audit.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "serve/server.h"

namespace satd::serve {

/// Per-shard health/rollout state.
enum class ShardState {
  kServing,   ///< in the routing set, stable weights
  kCanary,    ///< in the routing set at canary_fraction, staged weights
  kEjected,   ///< monitor alarmed outside a rollout; no traffic
  kDraining,  ///< operator-initiated; no new traffic
};

/// Stable textual tag ("serving", "canary", ...).
const char* to_string(ShardState s);

/// Router knobs. `server` is the per-shard template; enable_monitor is
/// forced on (the rollout state machine is built on monitor verdicts).
struct RouterConfig {
  std::size_t shards = 2;            ///< number of Server instances
  ServerConfig server;               ///< per-shard template
  double canary_fraction = 0.1;      ///< traffic share diverted to a canary
  std::size_t promote_after_probes = 32;  ///< clean probes before promote
  double min_soak = 0.0;             ///< min seconds staged before promote
  std::vector<double> weights;       ///< optional per-shard weights
  std::string journal_path;          ///< append JSONL audit here when set
};

/// One audited rollout decision.
struct RolloutEvent {
  double time = 0.0;        ///< router clock at the decision
  std::string action;       ///< publish|canary|alarm|rollback|promote|...
  std::size_t shard = 0;    ///< shard the decision concerns
  std::uint64_t version = 0;///< registry version involved (0 if n/a)
  std::string detail;       ///< human-readable context
};

/// N-shard router with canary rollout/rollback (see file comment).
class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config,
                       Clock& clock = SystemClock::instance());
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts every shard's server. Idempotent.
  void start();

  /// Drains every shard. Idempotent; also runs from the destructor.
  void drain();

  /// Publishes `model` to EVERY shard (the non-staged path). Returns the
  /// version assigned by shard 0 (all shards assign their own).
  std::uint64_t publish(nn::Sequential& model, const std::string& spec);

  /// Stages `model` on `shard` only and marks it CANARY. The shard's
  /// previous snapshot is saved as the rollback target and its monitor
  /// window is reset so the canary is judged on its own probes. At most
  /// one canary at a time. Returns the canary's registry version.
  std::uint64_t publish_canary(nn::Sequential& model,
                               const std::string& spec, std::size_t shard);

  /// Routes by key and submits to the chosen shard. key 0 means "don't
  /// care" and draws from a round-robin counter. `shard_out`/`id_out`
  /// (optional) receive the shard index and admission id for
  /// cancellation. Never blocks; overload yields a typed rejection.
  Ticket submit(const Tensor& image, double timeout = 0.0,
                std::uint64_t key = 0, std::uint32_t* shard_out = nullptr,
                std::uint64_t* id_out = nullptr);

  /// Cancels a queued request previously submitted (see Server::cancel).
  bool cancel(std::uint32_t shard, std::uint64_t id);

  /// The shard a key would route to right now (deterministic).
  std::size_t route(std::uint64_t key);

  /// Runs the rollout state machine once: canary alarm -> rollback,
  /// clean window + soak -> promote, serving-shard alarm -> eject.
  /// Call periodically (the network front end ticks it on its poll
  /// quantum); cheap when nothing changed.
  void tick();

  /// Returns an EJECTED or DRAINING shard to SERVING (monitor reset).
  bool reinstate(std::size_t shard);

  /// Marks a shard DRAINING (no new traffic; queue keeps draining).
  bool set_draining(std::size_t shard);

  ShardState state(std::size_t shard) const;
  std::size_t size() const { return shards_.size(); }
  Server& shard(std::size_t i) { return *shards_[i]->server; }
  ModelRegistry& registry(std::size_t i) { return *shards_[i]->registry; }

  /// Copy of the audit history (publishes, alarms, rollbacks, ...).
  std::vector<RolloutEvent> history() const;

 private:
  struct Shard {
    std::unique_ptr<ModelRegistry> registry;
    std::unique_ptr<Server> server;
    ShardState state = ShardState::kServing;
    SnapshotPtr rollback;           ///< last-good snapshot while canarying
    std::size_t probed_at_stage = 0;///< monitor probe count at staging
    double staged_at = 0.0;         ///< clock time at staging
  };

  std::size_t route_locked(std::uint64_t key);
  void record_locked(const std::string& action, std::size_t shard,
                     std::uint64_t version, const std::string& detail);

  RouterConfig config_;
  Clock& clock_;
  mutable std::mutex mutex_;  // guards states, rollback targets, history
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RolloutEvent> history_;
  std::uint64_t rr_ = 0;      ///< round-robin source for key==0
  bool started_ = false;
};

}  // namespace satd::serve
