#include "serve/server.h"

#include "common/contract.h"

namespace satd::serve {

Server::Server(ModelRegistry& registry, ServerConfig config, Clock& clock)
    : registry_(registry),
      config_(std::move(config)),
      clock_(clock),
      service_(config_.batch.max_batch),
      queue_(
          [this] {
            QueueConfig qc = config_.queue;
            qc.expected_delay = [this] { return feasibility_horizon(); };
            return qc;
          }(),
          stats_, clock_) {
  SATD_EXPECT(config_.workers > 0, "server needs at least one worker");
  if (config_.enable_monitor) {
    monitor_ = std::make_unique<RobustnessMonitor>(
        registry_, config_.model_name, config_.monitor, clock_);
  }
}

Server::~Server() { drain(); }

double Server::feasibility_horizon() {
  if (config_.batch.adaptive) {
    // The adaptive window: expected coalescing wait at the current
    // arrival rate plus the predicted service time of the planned batch.
    return service_.expected_delay(arrivals_.expected_gap(),
                                   config_.batch.max_wait);
  }
  // The static window waits out max_wait whenever the batch does not
  // fill, which is exactly the light-load case where feasibility
  // matters; add the measured cost of the largest batch on top.
  return config_.batch.max_wait + service_.predict(config_.batch.max_batch);
}

void Server::start() {
  if (started_) return;
  started_ = true;
  if (monitor_) monitor_->start();
  batchers_.reserve(config_.workers);
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    batchers_.push_back(std::make_unique<Microbatcher>(
        registry_, config_.model_name, queue_, stats_, clock_,
        config_.batch, monitor_.get(), &arrivals_, &service_));
    Microbatcher* b = batchers_.back().get();
    threads_.emplace_back([b] { b->run(); });
  }
}

Ticket Server::submit(const Tensor& image, double timeout,
                      std::uint64_t* id_out) {
  SATD_EXPECT(timeout >= 0.0, "timeout must be non-negative");
  const double now = clock_.now();
  // Every submit is offered load, admitted or not — the arrival-rate
  // estimate must see overload to predict it.
  arrivals_.observe_arrival(now);
  const double deadline = timeout > 0.0 ? now + timeout : 0.0;
  return queue_.submit(image, deadline, id_out);
}

void Server::drain() {
  queue_.begin_drain();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (monitor_) monitor_->stop();
  started_ = false;
}

}  // namespace satd::serve
