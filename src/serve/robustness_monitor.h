// Online robustness drift monitor for the inference server.
//
// Adversarially trained models can lose robustness silently — the serving
// path only sees clean accuracy-free traffic, so nothing on the request
// path would notice. Mirroring core/sentinel's training-time watchdog,
// this monitor samples 1-in-N admitted requests, and on a SEPARATE
// low-priority worker runs a small BIM probe against a private replica of
// the published model: does the model's own prediction survive the
// perturbation? The rolling fraction of surviving probes is the serving
// analogue of probe robust accuracy; a collapse below
// collapse_fraction * best-seen raises an alarm, exactly like the
// sentinel's verdict.
//
// Ground truth does not exist at serve time, so the probe uses the
// *predicted* label as the attack target. That measures prediction
// stability under perturbation — the quantity that drifts when a
// hot-swapped model is less robust than its predecessor.
//
// Isolation guarantees:
//   - observe() (called on the serving path) only bumps a counter and,
//     for sampled requests, copies one image under a mutex. No model
//     work happens on the request path.
//   - Probes run on a replica instantiated privately from the registry;
//     serving replicas are never touched, so enabling the monitor cannot
//     change any response (pinned by tests/serve/monitor_test.cpp).
//   - The pending buffer is bounded: when the probe worker falls behind,
//     samples are dropped (and counted), never queued unboundedly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "attack/bim.h"
#include "common/clock.h"
#include "nn/sequential.h"
#include "serve/registry.h"

namespace satd::serve {

/// Monitor knobs. Defaults mirror SentinelConfig's conservative posture:
/// the alarm arms only once the rolling fraction has ever reached
/// min_baseline, and trips only on a fall below half the best seen.
struct MonitorConfig {
  std::size_t sample_period = 64;  ///< probe 1 in this many observations
  std::size_t max_pending = 32;    ///< bounded sample buffer
  float eps = 0.1f;                ///< probe attack budget
  std::size_t iterations = 3;      ///< BIM iterations per probe
  std::size_t window = 64;         ///< rolling window of probe outcomes
  float collapse_fraction = 0.5f;  ///< alarm when fraction < this * best
  float min_baseline = 0.2f;       ///< arm only after best >= this
  double idle_wait = 0.001;        ///< worker sleep when nothing pending
};

/// Point-in-time monitor state.
struct MonitorReport {
  std::size_t observed = 0;   ///< requests seen by observe()
  std::size_t sampled = 0;    ///< accepted into the pending buffer
  std::size_t dropped = 0;    ///< sampled but buffer was full
  std::size_t probed = 0;     ///< probes actually executed
  float robust_fraction = -1.0f;  ///< rolling window; -1 before any probe
  float best_fraction = -1.0f;    ///< best rolling fraction seen
  std::size_t alarms = 0;     ///< collapse alarms raised
};

/// Sampling BIM-probe drift monitor (see file comment).
class RobustnessMonitor {
 public:
  RobustnessMonitor(ModelRegistry& registry, std::string model_name,
                    MonitorConfig config,
                    Clock& clock = SystemClock::instance());
  ~RobustnessMonitor();

  RobustnessMonitor(const RobustnessMonitor&) = delete;
  RobustnessMonitor& operator=(const RobustnessMonitor&) = delete;

  /// Serving-path hook: cheap counter bump; copies the image into the
  /// pending buffer for every sample_period-th call.
  void observe(const Tensor& image, std::size_t predicted);

  /// Processes one pending sample (refreshing the probe replica if the
  /// registry moved). Returns false when nothing was pending. Exposed so
  /// tests drive the probe loop deterministically without the thread.
  bool step();

  /// Spawns the low-priority probe worker. Idempotent.
  void start();

  /// Stops and joins the worker (pending samples may remain unprobed).
  void stop();

  MonitorReport report() const;

  /// Latched alarm state: true once any collapse alarm has fired (and
  /// until reset()). The programmatic twin of the warn-log/counter — the
  /// shard router's rollback decision reads this, it does not grep logs.
  bool alarmed() const;

  /// Hook invoked (from the probe thread, outside the monitor lock) each
  /// time a collapse alarm fires, with the report at that instant.
  /// Replaces any previous hook; pass nullptr to clear. The callback
  /// must not call back into stop() (it runs on the worker being
  /// stopped); report()/alarmed()/reset() are safe.
  void set_alarm_callback(std::function<void(const MonitorReport&)> cb);

  /// Clears the rolling window, best-seen baseline, latched alarms and
  /// pending samples — a fresh observation window. The router calls this
  /// at every canary publish/rollback so verdicts about one version
  /// never leak into the next. Cumulative observed/sampled/probed
  /// counters are kept (they are telemetry, not state).
  void reset();

 private:
  struct Sample {
    Tensor image;
    std::size_t predicted;
  };

  void run();
  void probe(const Sample& sample);
  MonitorReport report_locked() const;  // caller holds mutex_

  ModelRegistry& registry_;
  std::string model_name_;
  MonitorConfig config_;
  Clock& clock_;

  std::atomic<std::uint64_t> observed_{0};
  std::atomic<bool> stop_{false};
  std::thread worker_;
  bool started_ = false;

  mutable std::mutex mutex_;              // guards everything below
  std::deque<Sample> pending_;
  std::size_t sampled_ = 0;
  std::size_t dropped_ = 0;
  std::size_t probed_ = 0;
  std::deque<bool> outcomes_;             // rolling window
  float best_ = -1.0f;
  std::size_t alarms_ = 0;
  std::function<void(const MonitorReport&)> alarm_cb_;

  // Probe-thread-only state (never touched by observe()).
  std::optional<nn::Sequential> replica_;
  std::uint64_t replica_version_ = 0;
  attack::Bim bim_;
  Tensor batch_, adv_, logits_;
  std::vector<std::size_t> preds_;
};

}  // namespace satd::serve
