#include "serve/robustness_monitor.h"

#include <utility>

#include "common/contract.h"
#include "common/log.h"
#include "tensor/ops.h"

namespace satd::serve {

RobustnessMonitor::RobustnessMonitor(ModelRegistry& registry,
                                     std::string model_name,
                                     MonitorConfig config, Clock& clock)
    : registry_(registry),
      model_name_(std::move(model_name)),
      config_(config),
      clock_(clock),
      bim_(config.eps, config.iterations) {
  SATD_EXPECT(config.sample_period > 0, "sample_period must be positive");
  SATD_EXPECT(config.max_pending > 0, "max_pending must be positive");
  SATD_EXPECT(config.window > 0, "window must be positive");
  SATD_EXPECT(config.collapse_fraction > 0.0f &&
                  config.collapse_fraction < 1.0f,
              "collapse_fraction must be in (0, 1)");
}

RobustnessMonitor::~RobustnessMonitor() { stop(); }

void RobustnessMonitor::observe(const Tensor& image, std::size_t predicted) {
  const std::uint64_t n = observed_.fetch_add(1, std::memory_order_relaxed);
  if ((n + 1) % config_.sample_period != 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.size() >= config_.max_pending) {
    ++dropped_;
    return;
  }
  ++sampled_;
  pending_.push_back(Sample{image, predicted});
}

bool RobustnessMonitor::step() {
  Sample sample;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) return false;
    sample = std::move(pending_.front());
    pending_.pop_front();
  }
  probe(sample);
  return true;
}

void RobustnessMonitor::probe(const Sample& sample) {
  SnapshotPtr snapshot = registry_.current(model_name_);
  if (!snapshot) return;  // nothing published; skip quietly
  if (!replica_ || replica_version_ != snapshot->version) {
    replica_ = ModelRegistry::instantiate(*snapshot);
    replica_version_ = snapshot->version;
  }

  // Stage the single image as a batch of one and attack the model's own
  // prediction: survived == the prediction is stable inside the eps-ball.
  std::vector<std::size_t> batch_dims;
  batch_dims.push_back(1);
  for (std::size_t d : sample.image.shape().dims()) batch_dims.push_back(d);
  batch_.ensure_shape(Shape(batch_dims));
  std::copy(sample.image.raw(), sample.image.raw() + sample.image.numel(),
            batch_.raw());
  const std::size_t labels[1] = {sample.predicted};
  bim_.perturb_into(*replica_, batch_, labels, adv_);
  replica_->forward_into(adv_, logits_, /*training=*/false);
  ops::argmax_rows_into(logits_, preds_);
  const bool survived = preds_[0] == sample.predicted;

  bool alarm_fired = false;
  MonitorReport at_alarm;
  std::function<void(const MonitorReport&)> cb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++probed_;
    outcomes_.push_back(survived);
    while (outcomes_.size() > config_.window) outcomes_.pop_front();
    std::size_t ok = 0;
    for (bool b : outcomes_) ok += b ? 1 : 0;
    const float fraction =
        static_cast<float>(ok) / static_cast<float>(outcomes_.size());
    if (fraction > best_) best_ = fraction;
    // Arm only once the window is representative and the baseline has been
    // reached; then a collapse below the fraction of best trips an alarm.
    if (outcomes_.size() >= config_.window && best_ >= config_.min_baseline &&
        fraction < config_.collapse_fraction * best_) {
      ++alarms_;
      alarm_fired = true;
      at_alarm = report_locked();
      cb = alarm_cb_;
      log::warn() << "serve monitor: robust fraction " << fraction
                  << " collapsed below "
                  << config_.collapse_fraction * best_ << " (best " << best_
                  << ") for model '" << model_name_ << "' v"
                  << replica_version_;
    }
  }
  // The callback runs outside the monitor lock so it may freely query
  // report()/alarmed() (the shard router's rollback trigger does).
  if (alarm_fired && cb) cb(at_alarm);
}

void RobustnessMonitor::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false);
  worker_ = std::thread([this] { run(); });
}

void RobustnessMonitor::stop() {
  if (!started_) return;
  stop_.store(true);
  if (worker_.joinable()) worker_.join();
  started_ = false;
}

void RobustnessMonitor::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!step()) clock_.sleep_for(config_.idle_wait);
  }
}

MonitorReport RobustnessMonitor::report_locked() const {
  MonitorReport r;
  r.observed = observed_.load(std::memory_order_relaxed);
  r.sampled = sampled_;
  r.dropped = dropped_;
  r.probed = probed_;
  if (!outcomes_.empty()) {
    std::size_t ok = 0;
    for (bool b : outcomes_) ok += b ? 1 : 0;
    r.robust_fraction =
        static_cast<float>(ok) / static_cast<float>(outcomes_.size());
  }
  r.best_fraction = best_;
  r.alarms = alarms_;
  return r;
}

MonitorReport RobustnessMonitor::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_locked();
}

bool RobustnessMonitor::alarmed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alarms_ > 0;
}

void RobustnessMonitor::set_alarm_callback(
    std::function<void(const MonitorReport&)> cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  alarm_cb_ = std::move(cb);
}

void RobustnessMonitor::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  outcomes_.clear();
  best_ = -1.0f;
  alarms_ = 0;
}

}  // namespace satd::serve
