#include "serve/queue.h"

#include <utility>

#include "common/contract.h"

namespace satd::serve {

RequestQueue::RequestQueue(QueueConfig config, ServerStats& stats,
                           Clock& clock)
    : config_(config), stats_(stats), clock_(clock) {
  SATD_EXPECT(config.capacity > 0, "queue capacity must be positive");
  SATD_EXPECT(config.min_slack >= 0.0, "min_slack must be non-negative");
}

Ticket RequestQueue::submit(const Tensor& image, double deadline) {
  SATD_EXPECT(!image.empty(), "cannot serve an empty image");
  const double now = clock_.now();
  ServeError reject = ServeError::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      reject = ServeError::kStopping;
    } else if (queue_.size() >= config_.capacity) {
      reject = ServeError::kQueueFull;
    } else if (deadline != 0.0 && deadline < now + config_.min_slack) {
      reject = ServeError::kDeadlineInfeasible;
    } else {
      Request req;
      req.image = image;
      req.submit_time = now;
      req.deadline = deadline;
      Ticket ticket(req.promise.get_future());
      queue_.push_back(std::move(req));
      stats_.observe_queue_depth(queue_.size());
      return ticket;
    }
  }
  stats_.record_error(reject);
  return rejected_ticket(reject);
}

bool RequestQueue::pop(Request& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void RequestQueue::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool RequestQueue::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

bool RequestQueue::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ && queue_.empty();
}

}  // namespace satd::serve
