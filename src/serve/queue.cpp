#include "serve/queue.h"

#include <utility>

#include "common/contract.h"

namespace satd::serve {

RequestQueue::RequestQueue(QueueConfig config, ServerStats& stats,
                           Clock& clock)
    : config_(std::move(config)), stats_(stats), clock_(clock) {
  SATD_EXPECT(config_.capacity > 0, "queue capacity must be positive");
  SATD_EXPECT(config_.min_slack >= 0.0, "min_slack must be non-negative");
  SATD_EXPECT(config_.urgent_slack >= 0.0,
              "urgent_slack must be non-negative");
}

Ticket RequestQueue::submit(const Tensor& image, double deadline,
                            std::uint64_t* id_out) {
  SATD_EXPECT(!image.empty(), "cannot serve an empty image");
  if (id_out) *id_out = 0;
  const double now = clock_.now();
  ServeError reject = ServeError::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t depth = urgent_.size() + queue_.size();
    // The feasibility horizon: static slack plus whatever the serving
    // policy currently expects window + service to cost. A request whose
    // deadline sits inside the horizon would be admitted only to expire.
    const double horizon =
        config_.min_slack +
        (config_.expected_delay ? config_.expected_delay() : 0.0);
    if (draining_) {
      reject = ServeError::kStopping;
    } else if (depth >= config_.capacity) {
      reject = ServeError::kQueueFull;
    } else if (deadline != 0.0 && deadline < now + horizon) {
      reject = ServeError::kDeadlineInfeasible;
    } else {
      Request req;
      req.image = image;
      req.id = next_id_++;
      req.submit_time = now;
      req.deadline = deadline;
      req.urgent = deadline != 0.0 && config_.urgent_slack > 0.0 &&
                   deadline - now < config_.urgent_slack;
      if (id_out) *id_out = req.id;
      Ticket ticket(req.promise.get_future());
      (req.urgent ? urgent_ : queue_).push_back(std::move(req));
      stats_.observe_queue_depth(depth + 1);
      return ticket;
    }
  }
  stats_.record_error(reject);
  return rejected_ticket(reject);
}

bool RequestQueue::cancel(std::uint64_t id) {
  if (id == 0) return false;
  Request victim;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::deque<Request>* lane : {&urgent_, &queue_}) {
      for (auto it = lane->begin(); it != lane->end(); ++it) {
        if (it->id == id) {
          victim = std::move(*it);
          lane->erase(it);
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  if (!found) return false;
  // Resolve outside the lock: a waiter woken by set_value must never
  // contend with the queue mutex we still hold.
  stats_.record_error(ServeError::kCancelled);
  Response r;
  r.error = ServeError::kCancelled;
  r.latency = clock_.now() - victim.submit_time;
  victim.promise.set_value(std::move(r));
  return true;
}

bool RequestQueue::pop(Request& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::deque<Request>& lane = urgent_.empty() ? queue_ : urgent_;
  if (lane.empty()) return false;
  out = std::move(lane.front());
  lane.pop_front();
  return true;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return urgent_.size() + queue_.size();
}

void RequestQueue::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool RequestQueue::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

bool RequestQueue::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ && urgent_.empty() && queue_.empty();
}

}  // namespace satd::serve
