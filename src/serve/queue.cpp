#include "serve/queue.h"

#include <utility>

#include "common/contract.h"

namespace satd::serve {

RequestQueue::RequestQueue(QueueConfig config, ServerStats& stats,
                           Clock& clock)
    : config_(std::move(config)), stats_(stats), clock_(clock) {
  SATD_EXPECT(config_.capacity > 0, "queue capacity must be positive");
  SATD_EXPECT(config_.min_slack >= 0.0, "min_slack must be non-negative");
  SATD_EXPECT(config_.urgent_slack >= 0.0,
              "urgent_slack must be non-negative");
}

Ticket RequestQueue::submit(const Tensor& image, double deadline) {
  SATD_EXPECT(!image.empty(), "cannot serve an empty image");
  const double now = clock_.now();
  ServeError reject = ServeError::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t depth = urgent_.size() + queue_.size();
    // The feasibility horizon: static slack plus whatever the serving
    // policy currently expects window + service to cost. A request whose
    // deadline sits inside the horizon would be admitted only to expire.
    const double horizon =
        config_.min_slack +
        (config_.expected_delay ? config_.expected_delay() : 0.0);
    if (draining_) {
      reject = ServeError::kStopping;
    } else if (depth >= config_.capacity) {
      reject = ServeError::kQueueFull;
    } else if (deadline != 0.0 && deadline < now + horizon) {
      reject = ServeError::kDeadlineInfeasible;
    } else {
      Request req;
      req.image = image;
      req.submit_time = now;
      req.deadline = deadline;
      req.urgent = deadline != 0.0 && config_.urgent_slack > 0.0 &&
                   deadline - now < config_.urgent_slack;
      Ticket ticket(req.promise.get_future());
      (req.urgent ? urgent_ : queue_).push_back(std::move(req));
      stats_.observe_queue_depth(depth + 1);
      return ticket;
    }
  }
  stats_.record_error(reject);
  return rejected_ticket(reject);
}

bool RequestQueue::pop(Request& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::deque<Request>& lane = urgent_.empty() ? queue_ : urgent_;
  if (lane.empty()) return false;
  out = std::move(lane.front());
  lane.pop_front();
  return true;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return urgent_.size() + queue_.size();
}

void RequestQueue::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool RequestQueue::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

bool RequestQueue::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ && urgent_.empty() && queue_.empty();
}

}  // namespace satd::serve
