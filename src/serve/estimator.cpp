#include "serve/estimator.h"

#include <algorithm>
#include <limits>

#include "common/contract.h"

namespace satd::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ArrivalEstimator::ArrivalEstimator(double alpha) : alpha_(alpha) {
  SATD_EXPECT(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
}

void ArrivalEstimator::observe_arrival(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (has_last_) {
    const double gap = std::max(0.0, now - last_);
    gap_ = has_gap_ ? (1.0 - alpha_) * gap_ + alpha_ * gap : gap;
    has_gap_ = true;
  }
  last_ = now;
  has_last_ = true;
}

double ArrivalEstimator::expected_gap() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_gap_ ? gap_ : kInf;
}

double ArrivalEstimator::expected_wait(double now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!has_gap_) return kInf;
  return std::max(gap_, now - last_);
}

void ArrivalEstimator::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  has_gap_ = false;
  has_last_ = false;
  gap_ = 0.0;
  last_ = 0.0;
}

ServiceTimeEstimator::ServiceTimeEstimator(std::size_t max_batch, double alpha)
    : alpha_(alpha), ewma_(max_batch + 1, 0.0), seen_(max_batch + 1, false) {
  SATD_EXPECT(max_batch > 0, "max_batch must be positive");
  SATD_EXPECT(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
}

void ServiceTimeEstimator::observe(std::uint64_t version, std::size_t batch,
                                   double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (version != version_) {
    std::fill(ewma_.begin(), ewma_.end(), 0.0);
    std::fill(seen_.begin(), seen_.end(), false);
    version_ = version;
  }
  const std::size_t b = std::clamp<std::size_t>(batch, 1, max_batch());
  const double s = std::max(0.0, seconds);
  ewma_[b] = seen_[b] ? (1.0 - alpha_) * ewma_[b] + alpha_ * s : s;
  seen_[b] = true;
}

double ServiceTimeEstimator::predict(std::size_t batch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return predict_locked(batch);
}

double ServiceTimeEstimator::predict_locked(std::size_t batch) const {
  const std::size_t b = std::clamp<std::size_t>(batch, 1, max_batch());
  if (seen_[b]) return ewma_[b];

  // Nearest observed neighbours on each side of b.
  std::size_t lo = 0, hi = 0;
  for (std::size_t i = b; i-- > 1;) {
    if (seen_[i]) { lo = i; break; }
  }
  for (std::size_t i = b + 1; i <= max_batch(); ++i) {
    if (seen_[i]) { hi = i; break; }
  }
  if (lo && hi) {  // interpolate
    const double t = static_cast<double>(b - lo) / static_cast<double>(hi - lo);
    return ewma_[lo] + t * (ewma_[hi] - ewma_[lo]);
  }
  if (lo) {  // extrapolate above the largest observation
    // Per-request slope from the top two observed sizes; with a single
    // observation, assume proportional cost (the conservative, linear
    // guess — sublinearity must be measured before it is believed).
    std::size_t lo2 = 0;
    for (std::size_t i = lo; i-- > 1;) {
      if (seen_[i]) { lo2 = i; break; }
    }
    const double slope =
        lo2 ? std::max(0.0, (ewma_[lo] - ewma_[lo2]) /
                                static_cast<double>(lo - lo2))
            : ewma_[lo] / static_cast<double>(lo);
    return ewma_[lo] + slope * static_cast<double>(b - lo);
  }
  if (hi) {  // scale down below the smallest observation
    return ewma_[hi] * static_cast<double>(b) / static_cast<double>(hi);
  }
  return 0.0;
}

std::size_t ServiceTimeEstimator::planned_batch(double gap,
                                                double max_wait) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return planned_locked(gap, max_wait);
}

std::size_t ServiceTimeEstimator::planned_locked(double gap,
                                                 double max_wait) const {
  if (!(gap < kInf)) return 1;
  std::size_t best = 1;
  double best_score = -1.0;
  for (std::size_t b = 1; b <= max_batch(); ++b) {
    const double window = static_cast<double>(b - 1) * gap;
    if (window > max_wait) break;  // the hard cap bounds every plan
    const double s = predict_locked(b);
    if (s <= 0.0) {
      // No cost data: only b == 1 (serve immediately) is plannable.
      if (b == 1) return 1;
      break;
    }
    const double score = static_cast<double>(b) / (window + s);
    if (score > best_score) {  // strict: ties keep the smaller batch
      best_score = score;
      best = b;
    }
  }
  return best;
}

double ServiceTimeEstimator::expected_delay(double gap, double max_wait) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t b = planned_locked(gap, max_wait);
  const double window =
      gap < kInf ? std::min(max_wait, static_cast<double>(b - 1) * gap) : 0.0;
  return window + predict_locked(b);
}

std::uint64_t ServiceTimeEstimator::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

void ServiceTimeEstimator::reset(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(ewma_.begin(), ewma_.end(), 0.0);
  std::fill(seen_.begin(), seen_.end(), false);
  version_ = version;
}

}  // namespace satd::serve
