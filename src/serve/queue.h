// Bounded MPMC request queue with deadline-aware admission control and a
// priority lane.
//
// Admission is where backpressure becomes *typed*: a submit against a full
// queue resolves immediately with kQueueFull, an absolute deadline that is
// already unmeetable resolves with kDeadlineInfeasible, and a queue that
// has begun draining resolves with kStopping. Clients therefore never
// block on an overloaded server and always learn *why* they were turned
// away.
//
// Feasibility is policy-aware: beyond the static min_slack, the config can
// carry an expected_delay callback (installed by the Server from its live
// service-time/arrival estimators) so the horizon tracks what the batching
// window + forward pass will actually cost. A request that could only be
// served dead is rejected at admission — it never occupies a queue slot
// and never counts as a deadline miss.
//
// The priority lane: a request whose deadline slack at admission is below
// urgent_slack is marked urgent and queued ahead of the normal lane, so
// tight-deadline work is popped first and (in the adaptive batcher)
// preempts window forming instead of waiting behind it.
//
// Cancellation: every admitted request carries a queue-assigned id
// (returned through submit's optional out-param). cancel(id) removes a
// still-queued request outright — the slot is freed immediately, the
// ticket resolves with a typed kCancelled, and the batcher never stages
// it — so a client that disconnects mid-wait (the socket front end's
// bread and butter) cannot leak capacity or stall a window on work
// nobody will read. Cancelling a request that was already popped is a
// benign no-op: the batcher serves it into an abandoned future.
//
// Shutdown is drain-then-stop: begin_drain() closes admission but every
// already-admitted request stays poppable, so workers finish the backlog
// before exiting (drained() flips true only when draining AND empty).
// Time flows through an injected Clock so tests drive deadline semantics
// with a FakeClock.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

#include "common/clock.h"
#include "serve/stats.h"
#include "serve/types.h"

namespace satd::serve {

/// Admission-control knobs.
struct QueueConfig {
  std::size_t capacity = 256;  ///< max admitted-but-unserved requests
  /// A deadline closer than now + min_slack + expected_delay() (seconds)
  /// is rejected as infeasible — the request could not clear the window
  /// and forward pass in time anyway. 0 with no expected_delay rejects
  /// only deadlines that have already passed.
  double min_slack = 0.0;
  /// Optional policy-provided feasibility horizon (seconds): the serving
  /// stack's current expected batching-window + service delay. Called
  /// under the queue mutex; must not call back into the queue.
  std::function<double()> expected_delay;
  /// Deadline slack below which an admitted request enters the priority
  /// lane (popped before the normal lane; preempts adaptive window
  /// forming). 0 disables the lane.
  double urgent_slack = 0.0;
};

/// Bounded multi-producer / multi-consumer queue (see file comment).
class RequestQueue {
 public:
  RequestQueue(QueueConfig config, ServerStats& stats, Clock& clock);

  /// Admits one image. `deadline` is an ABSOLUTE clock time (0 = none).
  /// On rejection the returned ticket is already resolved with the
  /// matching typed error and the image is not copied into the queue.
  /// When `id_out` is non-null and the request was ADMITTED it receives
  /// the admission id usable with cancel(); rejections write 0.
  Ticket submit(const Tensor& image, double deadline = 0.0,
                std::uint64_t* id_out = nullptr);

  /// Cancels a still-queued request: frees its slot, resolves its ticket
  /// with kCancelled and records the outcome. Returns false when the id
  /// is no longer queued (already popped, served, or never admitted) —
  /// that race is benign and the caller just drops its ticket.
  bool cancel(std::uint64_t id);

  /// Pops the oldest urgent request, else the oldest normal one.
  /// Non-blocking: returns false when empty.
  bool pop(Request& out);

  std::size_t depth() const;

  /// Closes admission; the backlog remains poppable.
  void begin_drain();

  bool draining() const;

  /// True once draining AND the backlog is empty — workers may exit.
  bool drained() const;

 private:
  QueueConfig config_;
  ServerStats& stats_;
  Clock& clock_;
  mutable std::mutex mutex_;
  std::deque<Request> urgent_;  ///< priority lane (popped first)
  std::deque<Request> queue_;
  std::uint64_t next_id_ = 1;   ///< admission ids (0 = invalid)
  bool draining_ = false;
};

}  // namespace satd::serve
