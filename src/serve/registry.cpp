#include "serve/registry.h"

#include <sstream>
#include <utility>

#include "common/contract.h"
#include "common/rng.h"
#include "nn/model_io.h"
#include "nn/zoo.h"

namespace satd::serve {

std::uint64_t ModelRegistry::publish(const std::string& name,
                                     nn::Sequential& model,
                                     const std::string& spec) {
  SATD_EXPECT(!name.empty(), "model name must be non-empty");
  SATD_EXPECT(nn::zoo::is_known_spec(spec),
              "cannot publish unknown spec: " + spec);
  std::ostringstream os;
  nn::save_model(os, model, spec);

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->name = name;
  snapshot->spec = spec;
  snapshot->payload = os.str();
  snapshot->quantized =
      std::make_shared<const nn::QuantizedModel>(nn::QuantizedModel::from(model));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(name);
  snapshot->version = (it == models_.end()) ? 1 : it->second->version + 1;
  models_[name] = std::move(snapshot);
  return models_[name]->version;
}

std::uint64_t ModelRegistry::publish_snapshot(const std::string& name,
                                              const ModelSnapshot& from) {
  SATD_EXPECT(!name.empty(), "model name must be non-empty");
  SATD_EXPECT(!from.payload.empty(), "cannot republish an empty snapshot");
  // Reuses the serialized payload and the baked quantized model verbatim
  // — the republished weights are bit-identical to the source snapshot —
  // under a fresh version number so workers notice the swap.
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->name = name;
  snapshot->spec = from.spec;
  snapshot->payload = from.payload;
  snapshot->quantized = from.quantized;

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(name);
  snapshot->version = (it == models_.end()) ? 1 : it->second->version + 1;
  models_[name] = std::move(snapshot);
  return models_[name]->version;
}

std::uint64_t ModelRegistry::publish_file(const std::string& name,
                                          const std::string& path) {
  const std::string spec = nn::peek_spec_file(path);
  nn::Sequential model = nn::load_model_file(path);
  return publish(name, model, spec);
}

SnapshotPtr ModelRegistry::current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

void ModelRegistry::withdraw(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  models_.erase(name);
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, _] : models_) out.push_back(name);
  return out;
}

nn::Sequential ModelRegistry::instantiate(const ModelSnapshot& snapshot) {
  // The freshly initialized weights are immediately overwritten by
  // load_parameters, so the seed is irrelevant to the result.
  Rng rng(snapshot.version);
  nn::Sequential model = nn::zoo::build(snapshot.spec, rng);
  std::istringstream is(snapshot.payload);
  nn::load_parameters(is, model);
  return model;
}

}  // namespace satd::serve
