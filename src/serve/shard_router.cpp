#include "serve/shard_router.h"

#include <cmath>
#include <fstream>

#include "common/contract.h"
#include "common/log.h"

namespace satd::serve {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and the same on every build,
/// so routing decisions are reproducible across processes and platforms.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* to_string(ShardState s) {
  switch (s) {
    case ShardState::kServing: return "serving";
    case ShardState::kCanary: return "canary";
    case ShardState::kEjected: return "ejected";
    case ShardState::kDraining: return "draining";
  }
  return "unknown";
}

ShardRouter::ShardRouter(RouterConfig config, Clock& clock)
    : config_(std::move(config)), clock_(clock) {
  SATD_EXPECT(config_.shards >= 1, "router needs at least one shard");
  SATD_EXPECT(config_.canary_fraction >= 0.0 &&
                  config_.canary_fraction <= 1.0,
              "canary_fraction must be in [0, 1]");
  SATD_EXPECT(config_.weights.empty() ||
                  config_.weights.size() == config_.shards,
              "weights must be empty or one per shard");
  for (double w : config_.weights) {
    SATD_EXPECT(w >= 0.0 && std::isfinite(w), "weights must be finite, >= 0");
  }
  // The rollout state machine decides from monitor verdicts; a shard
  // without a monitor could never be promoted or rolled back.
  config_.server.enable_monitor = true;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->registry = std::make_unique<ModelRegistry>();
    shard->server = std::make_unique<Server>(*shard->registry,
                                             config_.server, clock_);
    shards_.push_back(std::move(shard));
  }
}

ShardRouter::~ShardRouter() { drain(); }

void ShardRouter::start() {
  if (started_) return;
  started_ = true;
  for (auto& s : shards_) s->server->start();
}

void ShardRouter::drain() {
  for (auto& s : shards_) s->server->drain();
}

void ShardRouter::record_locked(const std::string& action, std::size_t shard,
                                std::uint64_t version,
                                const std::string& detail) {
  RolloutEvent ev;
  ev.time = clock_.now();
  ev.action = action;
  ev.shard = shard;
  ev.version = version;
  ev.detail = detail;
  history_.push_back(ev);
  log::info() << "router: " << action << " shard=" << shard
              << " version=" << version
              << (detail.empty() ? "" : " (" + detail + ")");
  if (config_.journal_path.empty()) return;
  std::ofstream out(config_.journal_path, std::ios::app);
  if (!out) {
    log::warn() << "router: cannot append journal " << config_.journal_path;
    return;
  }
  out << "{\"t\":" << ev.time << ",\"action\":\"" << json_escape(action)
      << "\",\"shard\":" << shard << ",\"version\":" << version
      << ",\"detail\":\"" << json_escape(detail) << "\"}\n";
}

std::uint64_t ShardRouter::publish(nn::Sequential& model,
                                   const std::string& spec) {
  std::uint64_t version = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t v = shards_[i]->registry->publish(
        config_.server.model_name, model, spec);
    if (i == 0) version = v;
  }
  std::lock_guard<std::mutex> lk(mutex_);
  record_locked("publish", 0, version, "fanned out to all shards");
  return version;
}

std::uint64_t ShardRouter::publish_canary(nn::Sequential& model,
                                          const std::string& spec,
                                          std::size_t shard) {
  SATD_EXPECT(shard < shards_.size(), "canary shard out of range");
  {
    std::lock_guard<std::mutex> lk(mutex_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      SATD_EXPECT(shards_[i]->state != ShardState::kCanary,
                  "one canary at a time: promote or roll back first");
    }
    SATD_EXPECT(shards_[shard]->state == ShardState::kServing,
                "canary target must be a serving shard");
  }
  Shard& s = *shards_[shard];
  // Snapshot-before-stage is the rollback contract: whatever was live on
  // this shard is what an alarm restores, bit for bit.
  SnapshotPtr previous = s.registry->current(config_.server.model_name);
  const std::uint64_t version =
      s.registry->publish(config_.server.model_name, model, spec);
  RobustnessMonitor* monitor = s.server->monitor();
  SATD_ENSURE(monitor != nullptr, "shard servers always carry a monitor");
  monitor->reset();  // judge the canary on its own probes only

  std::lock_guard<std::mutex> lk(mutex_);
  s.state = ShardState::kCanary;
  s.rollback = std::move(previous);
  s.probed_at_stage = monitor->report().probed;
  s.staged_at = clock_.now();
  record_locked("canary", shard, version,
                "staged at fraction " +
                    std::to_string(config_.canary_fraction));
  return version;
}

std::size_t ShardRouter::route_locked(std::uint64_t key) {
  if (key == 0) key = ++rr_;
  const std::uint64_t h = mix(key);

  // Canary diversion first: a fixed slice of the keyspace goes to the
  // staged shard so the same key consistently sees the same version.
  std::size_t canary = shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->state == ShardState::kCanary) {
      canary = i;
      break;
    }
  }
  if (canary < shards_.size()) {
    const auto cut =
        static_cast<std::uint64_t>(config_.canary_fraction * 10000.0);
    if (h % 10000 < cut) return canary;
  }

  // Weighted pick over routable shards (serving; the canary also takes
  // its ordinary share of non-diverted traffic at weight 0 — diverted
  // traffic IS its share).
  double total = 0.0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->state != ShardState::kServing) continue;
    total += config_.weights.empty() ? 1.0 : config_.weights[i];
  }
  if (total <= 0.0) {
    // Nothing routable: degrade to hashing over all shards instead of
    // turning a bad rollout into a full outage.
    return mix(h) % shards_.size();
  }
  const double r =
      (static_cast<double>(mix(h) % 1000000) / 1000000.0) * total;
  double acc = 0.0;
  std::size_t last = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->state != ShardState::kServing) continue;
    acc += config_.weights.empty() ? 1.0 : config_.weights[i];
    last = i;
    if (r < acc) return i;
  }
  return last;
}

std::size_t ShardRouter::route(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mutex_);
  return route_locked(key);
}

Ticket ShardRouter::submit(const Tensor& image, double timeout,
                           std::uint64_t key, std::uint32_t* shard_out,
                           std::uint64_t* id_out) {
  std::size_t idx;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    idx = route_locked(key);
  }
  if (shard_out) *shard_out = static_cast<std::uint32_t>(idx);
  return shards_[idx]->server->submit(image, timeout, id_out);
}

bool ShardRouter::cancel(std::uint32_t shard, std::uint64_t id) {
  if (shard >= shards_.size()) return false;
  return shards_[shard]->server->cancel(id);
}

void ShardRouter::tick() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    RobustnessMonitor* monitor = s.server->monitor();
    if (monitor == nullptr) continue;

    if (s.state == ShardState::kCanary) {
      const MonitorReport r = monitor->report();
      if (monitor->alarmed()) {
        // Rollback: restore the saved snapshot under a fresh version —
        // bit-identical weights, so the shard is exactly what it was
        // before the stage.
        record_locked("alarm", i, 0,
                      "canary robust fraction " +
                          std::to_string(r.robust_fraction));
        std::uint64_t restored = 0;
        const bool had_last_good = s.rollback != nullptr;
        if (had_last_good) {
          restored = s.registry->publish_snapshot(config_.server.model_name,
                                                  *s.rollback);
        } else {
          s.registry->withdraw(config_.server.model_name);
        }
        monitor->reset();
        s.state = ShardState::kServing;
        s.rollback = nullptr;
        record_locked("rollback", i, restored,
                      had_last_good ? "restored last-good snapshot"
                                    : "no prior snapshot; withdrawn");
        continue;
      }
      const std::size_t clean = r.probed - s.probed_at_stage;
      const double soaked = clock_.now() - s.staged_at;
      if (clean >= config_.promote_after_probes &&
          soaked >= config_.min_soak) {
        // Promote: the canary's snapshot becomes everyone's snapshot.
        SnapshotPtr staged = s.registry->current(config_.server.model_name);
        SATD_ENSURE(staged != nullptr, "a canary shard has a snapshot");
        for (std::size_t j = 0; j < shards_.size(); ++j) {
          if (j == i) continue;
          shards_[j]->registry->publish_snapshot(config_.server.model_name,
                                                 *staged);
        }
        s.state = ShardState::kServing;
        s.rollback = nullptr;
        record_locked("promote", i, staged->version,
                      std::to_string(clean) + " clean probes over " +
                          std::to_string(soaked) + "s");
      }
    } else if (s.state == ShardState::kServing && monitor->alarmed()) {
      // A stable shard drifting on its own is ejected, not rolled back:
      // there is no staged version to blame, so a human (reinstate())
      // decides when it rejoins.
      const MonitorReport r = monitor->report();
      s.state = ShardState::kEjected;
      record_locked("eject", i, 0,
                    "robust fraction " + std::to_string(r.robust_fraction));
    }
  }
}

bool ShardRouter::reinstate(std::size_t shard) {
  if (shard >= shards_.size()) return false;
  std::lock_guard<std::mutex> lk(mutex_);
  Shard& s = *shards_[shard];
  if (s.state != ShardState::kEjected && s.state != ShardState::kDraining) {
    return false;
  }
  if (RobustnessMonitor* monitor = s.server->monitor()) monitor->reset();
  s.state = ShardState::kServing;
  record_locked("reinstate", shard, 0, "");
  return true;
}

bool ShardRouter::set_draining(std::size_t shard) {
  if (shard >= shards_.size()) return false;
  std::lock_guard<std::mutex> lk(mutex_);
  Shard& s = *shards_[shard];
  if (s.state == ShardState::kDraining) return true;
  if (s.state != ShardState::kServing) return false;
  s.state = ShardState::kDraining;
  record_locked("drain", shard, 0, "");
  return true;
}

ShardState ShardRouter::state(std::size_t shard) const {
  SATD_EXPECT(shard < shards_.size(), "shard index out of range");
  std::lock_guard<std::mutex> lk(mutex_);
  return shards_[shard]->state;
}

std::vector<RolloutEvent> ShardRouter::history() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return history_;
}

}  // namespace satd::serve
