// Serving telemetry: latency percentiles, batch shape, queue pressure.
//
// The histogram uses fixed log-spaced buckets so recording is O(log B)
// with no allocation and percentile readout is deterministic (a percentile
// is the upper edge of the bucket containing that rank — the same stream
// of samples always yields the same p50/p95/p99, regardless of arrival
// interleaving). Counters are guarded by one mutex; the serving hot path
// touches it once per request, which is negligible next to a forward pass.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

#include "serve/types.h"

namespace satd::serve {

/// Fixed-bucket log-spaced latency histogram (seconds).
///
/// Buckets span 1 microsecond to ~20 minutes with a geometric ratio of
/// 1.25 (~96 buckets, ~25% worst-case percentile quantization). Samples
/// below/above the span clamp to the first/last bucket.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 96;

  LatencyHistogram();

  void record(double seconds);

  /// Upper edge of the bucket holding the p-th percentile sample
  /// (p in [0, 1]). Returns 0 when empty.
  double percentile(double p) const;

  std::size_t count() const { return count_; }

  void merge(const LatencyHistogram& other);

 private:
  std::array<double, kBuckets> upper_;   ///< bucket upper edges
  std::array<std::size_t, kBuckets> counts_{};
  std::size_t count_ = 0;
};

/// Point-in-time copy of every serving counter.
struct StatsSnapshot {
  std::size_t served = 0;            ///< responses with error == kNone
  std::size_t batches = 0;           ///< coalesced batches executed
  double mean_batch = 0.0;           ///< served / batches
  std::size_t deadline_misses = 0;   ///< admitted but expired in queue
  std::size_t rejected_full = 0;
  std::size_t rejected_infeasible = 0;
  std::size_t rejected_stopping = 0;
  std::size_t no_model = 0;
  std::size_t max_queue_depth = 0;   ///< high-water mark observed at submit
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< latency, seconds
};

/// Thread-safe counter hub shared by queue, workers and the server.
class ServerStats {
 public:
  /// Records one successfully served response latency (seconds).
  void record_served(double latency);

  /// Records a coalesced batch of the given size.
  void record_batch(std::size_t size);

  /// Records a non-success outcome (admission reject, deadline miss,
  /// missing model).
  void record_error(ServeError e);

  /// Updates the queue-depth high-water mark.
  void observe_queue_depth(std::size_t depth);

  StatsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  LatencyHistogram latency_;
  std::size_t served_ = 0;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  std::size_t deadline_misses_ = 0;
  std::size_t rejected_full_ = 0;
  std::size_t rejected_infeasible_ = 0;
  std::size_t rejected_stopping_ = 0;
  std::size_t no_model_ = 0;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace satd::serve
