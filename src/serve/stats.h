// Serving telemetry: latency percentiles, jitter, batch shape, queue
// pressure.
//
// Percentiles are deterministic functions of the sample multiset. Below
// kExactCap samples the histogram keeps every raw sample and reads
// percentiles as exact order statistics (nearest-rank), so small-N runs —
// every committed bench point is 256 requests — report real p95/p99
// instead of one shared bucket edge. Past the cap it falls back to fixed
// log-spaced buckets: recording stays O(log B) with no allocation and a
// percentile is the upper edge of the bucket containing that rank. Either
// way the same stream of samples always yields the same p50/p95/p99,
// regardless of arrival interleaving.
//
// Jitter is a first-class stat: StreamingMoments aggregates count / sum /
// sum-of-squares (the classic fixed-size streaming idiom), so mean and
// stddev ride alongside the histogram at O(1) space. Counters are guarded
// by one mutex; the serving hot path touches it once per request, which is
// negligible next to a forward pass.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

#include "serve/types.h"

namespace satd::serve {

/// Streaming count/sum/sum-of-squares aggregation: O(1) space mean and
/// standard deviation of a sample stream.
class StreamingMoments {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

  /// Population standard deviation; 0 when empty. The variance is
  /// clamped at 0 against floating-point cancellation in sum_sq - mean².
  double stddev() const;

  void merge(const StreamingMoments& other) {
    n_ += other.n_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
  }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Deterministic latency distribution (seconds): exact order statistics
/// up to kExactCap samples, fixed-bucket log-spaced histogram beyond.
///
/// Buckets span 1 microsecond to ~45 minutes with a geometric ratio of
/// 1.12 (~192 buckets, ~12% worst-case percentile quantization once the
/// exact path is exceeded). Samples below/above the span clamp to the
/// first/last bucket.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 192;
  /// Up to this many samples percentiles are exact order statistics.
  static constexpr std::size_t kExactCap = 1024;

  LatencyHistogram();

  void record(double seconds);

  /// p-th percentile (p in [0, 1]) by nearest rank: the exact sample
  /// while count() <= kExactCap, else the upper edge of the bucket
  /// holding that rank. Returns 0 when empty.
  double percentile(double p) const;

  std::size_t count() const { return count_; }

  void merge(const LatencyHistogram& other);

 private:
  std::array<double, kBuckets> upper_;   ///< bucket upper edges
  std::array<std::size_t, kBuckets> counts_{};
  std::size_t count_ = 0;
  /// Complete raw-sample record iff count_ <= kExactCap (record() stops
  /// appending at the cap; merge() clears it when the union overflows).
  std::vector<double> exact_;
};

/// Point-in-time copy of every serving counter.
struct StatsSnapshot {
  std::size_t served = 0;            ///< responses with error == kNone
  std::size_t batches = 0;           ///< coalesced batches executed
  double mean_batch = 0.0;           ///< served / batches
  std::size_t deadline_misses = 0;   ///< admitted but expired in queue
  std::size_t rejected_full = 0;
  std::size_t rejected_infeasible = 0;
  std::size_t rejected_stopping = 0;
  std::size_t no_model = 0;
  std::size_t cancelled = 0;         ///< admitted, then cancelled in queue
  std::size_t max_queue_depth = 0;   ///< high-water mark observed at submit
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< latency, seconds
  double mean = 0.0;    ///< mean served latency, seconds
  double stddev = 0.0;  ///< latency jitter (stddev of served latency), seconds
};

/// Thread-safe counter hub shared by queue, workers and the server.
class ServerStats {
 public:
  /// Records one successfully served response latency (seconds).
  void record_served(double latency);

  /// Records a coalesced batch of the given size.
  void record_batch(std::size_t size);

  /// Records a non-success outcome (admission reject, deadline miss,
  /// missing model).
  void record_error(ServeError e);

  /// Updates the queue-depth high-water mark.
  void observe_queue_depth(std::size_t depth);

  StatsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  LatencyHistogram latency_;
  StreamingMoments moments_;
  std::size_t served_ = 0;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  std::size_t deadline_misses_ = 0;
  std::size_t rejected_full_ = 0;
  std::size_t rejected_infeasible_ = 0;
  std::size_t rejected_stopping_ = 0;
  std::size_t no_model_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace satd::serve
