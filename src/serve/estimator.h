// Online load and cost models for SLO-aware adaptive batching.
//
// The static (max_batch, max_wait) window has a pathology the committed
// baseline records: under light load the window always waits out max_wait,
// so enabling batching *lowers* throughput (closed_w1_b8 vs closed_w1_b1
// in bench/baseline/BENCH_serve.json). The fix is to make the batcher
// reason about whether waiting is predicted to raise goodput, which needs
// two live estimates:
//
//   ArrivalEstimator     — EWMA of the inter-arrival gap, fed on every
//                          submit. expected_wait() additionally ages the
//                          estimate against the silence since the last
//                          arrival, so a stalled stream (closed-loop
//                          clients all blocked on us) stops promising
//                          imminent arrivals.
//   ServiceTimeEstimator — per-batch-size EWMA of measured batch service
//                          seconds, tagged with the model version that
//                          produced it and reset wholesale on hot swap
//                          (a new checkpoint has a new cost curve).
//                          Unobserved sizes are interpolated between
//                          observed neighbours, so the model captures the
//                          *measured* sublinearity of batching instead of
//                          assuming one.
//
// Both are deterministic functions of their observation sequence (fixed
// EWMA alpha, no randomness, no wall-clock reads of their own), which is
// what lets tests/serve drive the whole adaptive policy exactly on a
// FakeClock. Each estimator carries its own mutex; they are leaves in the
// lock order (they never call back into queue or batcher).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace satd::serve {

/// EWMA inter-arrival gap tracker (see file comment).
class ArrivalEstimator {
 public:
  explicit ArrivalEstimator(double alpha = 0.2);

  /// Records one arrival at clock time `now` (seconds). Fed on every
  /// submit — rejected requests are still offered load.
  void observe_arrival(double now);

  /// EWMA inter-arrival gap in seconds; +inf until two arrivals have
  /// been seen.
  double expected_gap() const;

  /// Expected wait for the NEXT arrival as seen at `now`:
  /// max(expected_gap, silence since the last arrival). The max() is the
  /// staleness guard — once the stream has been quiet for longer than the
  /// historical gap, the gap estimate is evidence about the past, not the
  /// future, and the predicted wait must grow with the silence.
  double expected_wait(double now) const;

  void reset();

 private:
  mutable std::mutex mutex_;
  double alpha_;
  double gap_ = 0.0;
  bool has_gap_ = false;
  double last_ = 0.0;
  bool has_last_ = false;
};

/// Per-batch-size EWMA service-time model, version-tagged (see file
/// comment). Sizes are 1..max_batch; observations outside clamp.
class ServiceTimeEstimator {
 public:
  explicit ServiceTimeEstimator(std::size_t max_batch, double alpha = 0.2);

  /// Records one measured batch: `seconds` of service for `batch`
  /// requests computed by model `version`. A version change discards the
  /// previous model's curve first — service cost is a property of the
  /// checkpoint being served, not of the server.
  void observe(std::uint64_t version, std::size_t batch, double seconds);

  /// Predicted service seconds for a batch of `batch`. Exact EWMA for
  /// observed sizes; linear interpolation between the nearest observed
  /// neighbours otherwise (extrapolated by the top-two slope above the
  /// largest observed size, scaled linearly below the smallest). 0.0
  /// when nothing has been observed — "no model" reads as "do not
  /// speculate about waiting".
  double predict(std::size_t batch) const;

  /// Goodput-optimal target batch size for an arrival stream with the
  /// given expected inter-arrival `gap`: the smallest argmax over
  /// b in [1, max_batch] of b / ((b-1)*gap + predict(b)), restricted to
  /// windows (b-1)*gap that fit under `max_wait`. 1 when gap is not
  /// finite or no service data exists.
  std::size_t planned_batch(double gap, double max_wait) const;

  /// Expected admission-to-response delay under the current plan:
  /// expected window ((planned_batch-1)*gap, capped at max_wait) plus
  /// predicted service time for the planned batch. The queue uses this
  /// as its feasibility horizon.
  double expected_delay(double gap, double max_wait) const;

  /// Model version the current curve was measured on (0 = none yet).
  std::uint64_t version() const;

  /// Discards the curve and re-tags the estimator with `version`.
  void reset(std::uint64_t version);

  std::size_t max_batch() const { return ewma_.size() - 1; }

 private:
  double predict_locked(std::size_t batch) const;
  std::size_t planned_locked(double gap, double max_wait) const;

  mutable std::mutex mutex_;
  double alpha_;
  std::uint64_t version_ = 0;
  std::vector<double> ewma_;  ///< indexed by batch size, [0] unused
  std::vector<bool> seen_;
};

}  // namespace satd::serve
