#include "serve/microbatcher.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/contract.h"
#include "metrics/evaluator.h"
#include "nn/loss.h"

namespace satd::serve {

Microbatcher::Microbatcher(ModelRegistry& registry, std::string model_name,
                           RequestQueue& queue, ServerStats& stats,
                           Clock& clock, BatchPolicy policy,
                           RobustnessMonitor* monitor,
                           ArrivalEstimator* arrivals,
                           ServiceTimeEstimator* service)
    : registry_(registry),
      model_name_(std::move(model_name)),
      queue_(queue),
      stats_(stats),
      clock_(clock),
      policy_(policy),
      monitor_(monitor),
      arrivals_(arrivals),
      service_(service) {
  SATD_EXPECT(policy.max_batch > 0, "max_batch must be positive");
  SATD_EXPECT(policy.max_wait >= 0.0, "max_wait must be non-negative");
  SATD_EXPECT(policy.poll_interval > 0.0, "poll_interval must be positive");
  SATD_EXPECT(!policy.adaptive || (arrivals && service),
              "adaptive batching requires arrival and service estimators");
}

bool Microbatcher::step() {
  staged_.clear();
  Request first;
  if (!queue_.pop(first)) return false;
  bool urgent = first.urgent;
  staged_.push_back(std::move(first));

  // Batching window. Static policy: keep popping until full or max_wait
  // has elapsed. Adaptive policy: max_wait is only a hard cap — the
  // window closes as soon as waiting is no longer predicted to raise
  // goodput (keep_waiting), and an urgent request ends window forming
  // outright. Available requests are always taken (a non-blocking pop
  // costs no wall time). The deadline is measured on the injected clock,
  // so a FakeClock test steps through the window in exact poll_interval
  // quanta.
  const double window_close = clock_.now() + policy_.max_wait;
  while (staged_.size() < policy_.max_batch && !urgent) {
    Request next;
    if (queue_.pop(next)) {
      urgent = next.urgent;
      staged_.push_back(std::move(next));
      continue;
    }
    const double now = clock_.now();
    if (now >= window_close) break;
    if (policy_.adaptive && !keep_waiting(now, window_close)) break;
    clock_.sleep_for(policy_.poll_interval);
  }

  serve_batch(staged_);
  staged_.clear();
  return true;
}

bool Microbatcher::keep_waiting(double now, double window_close) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t b = staged_.size();
  const double sb = service_->predict(b);

  // Deadline pressure: if one more poll quantum plus the predicted
  // service time would bust a staged deadline, serve now — a late batch
  // helps nobody.
  double nearest = kInf;
  for (const Request& req : staged_) {
    if (req.deadline != 0.0) nearest = std::min(nearest, req.deadline);
  }
  if (nearest < kInf && now + policy_.poll_interval + sb >= nearest) {
    return false;
  }

  // Expected wait for the next arrival; aged by the silence since the
  // last one, so a stalled stream (e.g. closed-loop clients all blocked
  // on this very batch) talks itself out of waiting.
  const double w = arrivals_->expected_wait(now);
  if (!(w < kInf)) return false;              // no arrival data
  if (now + w > window_close) return false;   // predicted past the cap
  const double sb1 = service_->predict(b + 1);
  if (sb <= 0.0 || sb1 <= 0.0) return false;  // no service model yet
  // Goodput rule: wait only if (b+1)/(w + s(b+1)) beats b/s(b).
  return static_cast<double>(b + 1) * sb >
         static_cast<double>(b) * (w + sb1);
}

void Microbatcher::run() {
  for (;;) {
    if (step()) continue;
    if (queue_.drained()) return;
    clock_.sleep_for(policy_.idle_wait);
  }
}

void Microbatcher::refresh_replica() {
  SnapshotPtr snapshot = registry_.current(model_name_);
  if (!snapshot) {
    replica_.reset();
    qreplica_.reset();
    replica_version_ = 0;
    return;
  }
  if (policy_.quantized) {
    // The quantized snapshot is immutable and thread-safe: adopt the
    // shared object instead of instantiating a private replica.
    if (!qreplica_ || replica_version_ != snapshot->version) {
      qreplica_ = snapshot->quantized;
      replica_version_ = snapshot->version;
    }
    return;
  }
  if (!replica_ || replica_version_ != snapshot->version) {
    replica_ = ModelRegistry::instantiate(*snapshot);
    replica_version_ = snapshot->version;
  }
}

void Microbatcher::serve_batch(std::vector<Request>& batch) {
  // Expire requests whose deadline passed while queued; they must not
  // consume forward-pass work.
  const double now = clock_.now();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (Request& req : batch) {
    if (req.deadline != 0.0 && now > req.deadline) {
      stats_.record_error(ServeError::kDeadlineMiss);
      Response miss;
      miss.error = ServeError::kDeadlineMiss;
      miss.latency = now - req.submit_time;
      req.promise.set_value(std::move(miss));
    } else {
      live.push_back(&req);
    }
  }
  if (live.empty()) return;

  // The replica is refreshed at the batch boundary only: every request in
  // this batch is answered by exactly one model version.
  refresh_replica();
  if (policy_.quantized ? !qreplica_ : !replica_) {
    for (Request* req : live) {
      stats_.record_error(ServeError::kNoModel);
      Response r;
      r.error = ServeError::kNoModel;
      r.latency = clock_.now() - req->submit_time;
      req->promise.set_value(std::move(r));
    }
    return;
  }

  // Coalesce into [B, ...image dims]; all images must share one shape
  // (the server serves a single model).
  const std::size_t b = live.size();
  const Tensor& proto = live[0]->image;
  std::vector<std::size_t> dims;
  dims.reserve(proto.shape().rank() + 1);
  dims.push_back(b);
  for (std::size_t d : proto.shape().dims()) dims.push_back(d);
  batch_.ensure_shape(Shape(dims));
  const std::size_t example = proto.numel();
  for (std::size_t i = 0; i < b; ++i) {
    const Tensor& img = live[i]->image;
    SATD_EXPECT(img.numel() == example,
                "all images in a serving batch must share one shape");
    std::copy(img.raw(), img.raw() + example, batch_.raw() + i * example);
  }

  // The shared evaluation/serving inference path (metrics::predict_into
  // or its quantized twin): one inference-mode forward plus row argmaxes,
  // so a served prediction is bit-identical to what the evaluators would
  // report for this image under the same numerics mode.
  if (policy_.quantized) {
    metrics::predict_quantized_into(*qreplica_, batch_, b, logits_, preds_,
                                    qws_);
  } else {
    metrics::predict_into(*replica_, batch_, b, logits_, preds_);
  }
  nn::softmax_into(logits_, probs_);
  stats_.record_batch(b);

  const std::size_t classes = probs_.shape()[1];
  const double done = clock_.now();
  // Feed the service-time model: this batch of b cost (done - now)
  // seconds on replica_version_. A hot swap shows up as a version change
  // and resets the curve (a new checkpoint has a new cost curve).
  if (service_) service_->observe(replica_version_, b, done - now);
  for (std::size_t i = 0; i < b; ++i) {
    Request* req = live[i];
    Response r;
    r.predicted = preds_[i];
    r.probabilities.assign(probs_.raw() + i * classes,
                           probs_.raw() + (i + 1) * classes);
    r.model_version = replica_version_;
    r.batch_size = b;
    r.latency = done - req->submit_time;
    stats_.record_served(r.latency);
    if (monitor_) monitor_->observe(req->image, r.predicted);
    req->promise.set_value(std::move(r));
  }
}

}  // namespace satd::serve
