#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"

namespace satd::serve {

const char* to_string(ServeError e) {
  switch (e) {
    case ServeError::kNone: return "ok";
    case ServeError::kQueueFull: return "queue_full";
    case ServeError::kDeadlineInfeasible: return "deadline_infeasible";
    case ServeError::kStopping: return "stopping";
    case ServeError::kDeadlineMiss: return "deadline_miss";
    case ServeError::kNoModel: return "no_model";
    case ServeError::kCancelled: return "cancelled";
  }
  return "unknown";
}

double StreamingMoments::stddev() const {
  if (n_ == 0) return 0.0;
  const double m = mean();
  const double var =
      std::max(0.0, sum_sq_ / static_cast<double>(n_) - m * m);
  return std::sqrt(var);
}

LatencyHistogram::LatencyHistogram() {
  double edge = 1e-6;  // 1 microsecond
  for (std::size_t i = 0; i < kBuckets; ++i) {
    upper_[i] = edge;
    edge *= 1.12;
  }
}

void LatencyHistogram::record(double seconds) {
  auto it = std::lower_bound(upper_.begin(), upper_.end(), seconds);
  const std::size_t idx =
      it == upper_.end() ? kBuckets - 1
                         : static_cast<std::size_t>(it - upper_.begin());
  ++counts_[idx];
  ++count_;
  if (exact_.size() < kExactCap) exact_.push_back(seconds);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p * static_cast<double>(count_))));
  if (count_ <= kExactCap) {
    // Exact nearest-rank order statistic: sort a copy of the complete
    // sample record. Deterministic for any arrival interleaving — a
    // percentile depends only on the multiset.
    std::vector<double> sorted(exact_);
    std::sort(sorted.begin(), sorted.end());
    return sorted[target - 1];
  }
  std::size_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += counts_[i];
    if (cum >= target) return upper_[i];
  }
  return upper_[kBuckets - 1];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  if (count_ <= kExactCap) {
    exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
  } else {
    exact_.clear();  // no longer a complete record; histogram takes over
  }
}

void ServerStats::record_served(double latency) {
  std::lock_guard<std::mutex> lock(mutex_);
  latency_.record(latency);
  moments_.add(latency);
  ++served_;
}

void ServerStats::record_batch(std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batched_requests_ += size;
}

void ServerStats::record_error(ServeError e) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (e) {
    case ServeError::kQueueFull: ++rejected_full_; break;
    case ServeError::kDeadlineInfeasible: ++rejected_infeasible_; break;
    case ServeError::kStopping: ++rejected_stopping_; break;
    case ServeError::kDeadlineMiss: ++deadline_misses_; break;
    case ServeError::kNoModel: ++no_model_; break;
    case ServeError::kCancelled: ++cancelled_; break;
    case ServeError::kNone:
      SATD_EXPECT(false, "record_error called with kNone");
  }
}

void ServerStats::observe_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

StatsSnapshot ServerStats::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StatsSnapshot s;
  s.served = served_;
  s.batches = batches_;
  s.mean_batch = batches_ == 0 ? 0.0
                               : static_cast<double>(batched_requests_) /
                                     static_cast<double>(batches_);
  s.deadline_misses = deadline_misses_;
  s.rejected_full = rejected_full_;
  s.rejected_infeasible = rejected_infeasible_;
  s.rejected_stopping = rejected_stopping_;
  s.no_model = no_model_;
  s.cancelled = cancelled_;
  s.max_queue_depth = max_queue_depth_;
  s.p50 = latency_.percentile(0.50);
  s.p95 = latency_.percentile(0.95);
  s.p99 = latency_.percentile(0.99);
  s.mean = moments_.mean();
  s.stddev = moments_.stddev();
  return s;
}

}  // namespace satd::serve
