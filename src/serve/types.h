// Shared request/response vocabulary of the serving subsystem.
//
// Every outcome a client can observe is a Response carrying a typed
// ServeError, so backpressure (queue full), infeasible deadlines, shutdown
// and deadline misses are distinguishable programmatically — not stringly.
// Rejections resolve the client's Ticket immediately; accepted requests
// resolve when a serving worker completes (or expires) them.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

#include "tensor/tensor.h"

namespace satd::serve {

/// Typed outcome of a serve request.
enum class ServeError {
  kNone = 0,             ///< served successfully
  kQueueFull,            ///< rejected at admission: queue at capacity
  kDeadlineInfeasible,   ///< rejected at admission: deadline already unmeetable
  kStopping,             ///< rejected at admission: server draining/stopped
  kDeadlineMiss,         ///< admitted, but expired before a worker served it
  kNoModel,              ///< no model published under the served name
  kCancelled,            ///< admitted, then cancelled (client abandoned it)
};

/// Stable textual tag for logs and JSON (e.g. "queue_full").
const char* to_string(ServeError e);

/// What the client gets back for one image.
struct Response {
  ServeError error = ServeError::kNone;
  std::size_t predicted = 0;          ///< argmax class (valid when kNone)
  std::vector<float> probabilities;   ///< softmax row (valid when kNone)
  std::uint64_t model_version = 0;    ///< registry version that served it
  std::size_t batch_size = 0;         ///< size of the coalesced batch
  double latency = 0.0;               ///< seconds from submit to response
};

/// One admitted unit of work inside the queue. Move-only (owns the
/// client's promise).
struct Request {
  Tensor image;           ///< single example, e.g. [1, 28, 28]
  std::uint64_t id = 0;   ///< queue-assigned admission id (cancellation key)
  double submit_time = 0; ///< clock time at admission
  double deadline = 0;    ///< absolute clock time; 0 = no deadline
  bool urgent = false;    ///< priority lane (slack < queue urgent_slack)
  std::promise<Response> promise;
};

/// Client handle for one submitted request. wait() blocks until the
/// server resolves it (rejections resolve immediately).
class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::future<Response> future)
      : future_(std::move(future)) {}

  bool valid() const { return future_.valid(); }

  /// True once the response is available — wait() would not block. The
  /// network front end's event loop harvests resolved tickets with this
  /// instead of parking a thread per request.
  bool ready() const {
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
  }

  /// Blocks for the response. One-shot: the ticket is invalid afterwards.
  Response wait() { return future_.get(); }

 private:
  std::future<Response> future_;
};

/// Builds a pre-resolved ticket (used for admission rejections).
inline Ticket rejected_ticket(ServeError error) {
  std::promise<Response> p;
  Response r;
  r.error = error;
  p.set_value(std::move(r));
  return Ticket(p.get_future());
}

}  // namespace satd::serve
