// Eps-sweep collapse profiler: where does a defense's robustness fall
// off a cliff?
//
// A single-budget robust accuracy hides the shape of the defense: two
// methods with the same accuracy at eps=0.3 can differ wildly in how
// gracefully they degrade on the way there. The profiler sweeps the
// attack budget, takes the running-minimum envelope of the measured
// accuracies (robustness at budget e must bound robustness at any larger
// budget — an adversary with budget e' > e can always play the smaller
// perturbation, so a non-monotone raw curve is attack noise, not signal)
// and records the KNEE: the first budget where the envelope drops below
// half the clean accuracy. The knee is the gauntlet's scalar summary of
// collapse onset.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "metrics/evaluator.h"
#include "nn/sequential.h"

namespace satd::gauntlet {

/// Result of an eps sweep over one model.
struct EpsProfile {
  float clean_accuracy = 0.0f;
  /// Raw measured accuracy at each swept budget (strictly increasing eps).
  std::vector<metrics::EpsPoint> points;
  /// Running-minimum envelope of points[i].accuracy — the monotone
  /// non-increasing robustness bound.
  std::vector<float> envelope;
  /// True when the envelope dropped below 0.5 * clean_accuracy within
  /// the sweep.
  bool collapsed = false;
  /// First swept eps where the envelope is below 0.5 * clean_accuracy;
  /// -1 when the sweep never collapses (collapsed == false).
  float knee_eps = -1.0f;
};

/// Pure post-processing step: envelope + knee from raw sweep points.
/// Requires strictly increasing eps values. Exposed separately so the
/// knee rule is unit-testable without training anything.
EpsProfile finish_profile(float clean_accuracy,
                          const std::vector<metrics::EpsPoint>& points);

/// Runs the sweep: clean accuracy, then BIM(iterations) robust accuracy
/// at each budget in `eps_values` (paper convention eps_step = eps / N),
/// then finish_profile.
EpsProfile profile_collapse(nn::Sequential& model, const data::Dataset& test,
                            const std::vector<float>& eps_values,
                            std::size_t iterations,
                            std::size_t batch_size = 64);

}  // namespace satd::gauntlet
