// Attack-plan registry: the named attack menu the gauntlet crosses
// against every defense.
//
// Robustness numbers are only as strong as the weakest attack they were
// NOT measured against (Athalye et al. 2018), so the gauntlet fixes a
// standard plan — single-step FGSM, iterative BIM, momentum MI-FGSM and
// best-of-R random-restart PGD — and builds each attack fresh per cell
// from a named spec. Specs are factories rather than instances because a
// cell owns its attack's scratch state: two matrix cells never share
// mutable attack state, which keeps cells order-independent and lets a
// resumed run recompute any cell bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack.h"

namespace satd::gauntlet {

/// A named recipe producing a concrete white-box attack at a given total
/// l-inf budget.
struct AttackSpec {
  /// Stable column identifier ("fgsm", "bim10", "mifgsm10",
  /// "restart_pgd") — used as the matrix CSV column header.
  std::string name;
  /// Builds a fresh attack instance with total budget `eps`.
  std::function<std::unique_ptr<attack::Attack>(float eps)> make;
};

/// Knobs for the standard plan. Iterative attacks use the paper's
/// eps_step = eps / iterations convention.
struct PlanConfig {
  std::size_t bim_iterations = 10;
  std::size_t mifgsm_iterations = 10;
  float mifgsm_momentum = 1.0f;
  std::size_t pgd_iterations = 10;
  std::size_t pgd_restarts = 3;
  std::uint64_t pgd_seed = 0x5EEDULL;  ///< restart-PGD start-point stream
};

/// The standard white-box plan, in fixed column order:
/// fgsm, bim<N>, mifgsm<N>, restart_pgd.
std::vector<AttackSpec> white_box_plan(const PlanConfig& config = {});

/// Looks up a spec by name; throws std::invalid_argument listing the
/// plan's known names when absent.
const AttackSpec& find_spec(const std::vector<AttackSpec>& plan,
                            const std::string& name);

}  // namespace satd::gauntlet
