// GauntletRunner: every defense crossed against every adaptive attack.
//
// The paper's evaluation (Table I) scores each defense against the
// attack family it was trained on. The gauntlet is the adversarial
// complement: a fixed defense-vs-attack matrix whose columns are chosen
// to expose gradient masking rather than confirm training — single-step
// FGSM, iterative BIM and MI-FGSM, best-of-R restart PGD
// (attack_plan.h), a black-box transfer column crafted on held-out
// surrogates (transfer.h) and the eps-sweep collapse knee
// (eps_profile.h). One row is one defense; rows are independent and
// deterministic, which is what lets the bench runner compute them as
// separately resumable jobs and still merge a bit-identical matrix.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "gauntlet/attack_plan.h"
#include "metrics/transfer.h"

namespace satd::gauntlet {

/// Knobs for a full gauntlet run.
struct GauntletConfig {
  /// Total l-inf budget for every fixed-budget column.
  float eps = 0.3f;
  /// White-box attack plan (attack_plan.h).
  PlanConfig plan{};
  /// BIM depth of the black-box transfer column.
  std::size_t transfer_iterations = 10;
  /// Budgets of the collapse sweep (strictly increasing).
  std::vector<float> eps_sweep = {0.05f, 0.1f, 0.2f, 0.3f, 0.4f};
  /// BIM depth used at each sweep point.
  std::size_t sweep_iterations = 10;
  std::size_t batch_size = 64;
};

/// One matrix row: a defense's value per column, aligned with
/// GauntletRunner::columns().
struct GauntletRow {
  std::string method;
  std::vector<float> values;
};

/// Builds rows of the defense-vs-attack matrix.
class GauntletRunner {
 public:
  explicit GauntletRunner(GauntletConfig config);

  /// Fixed column order: "clean", the white-box plan columns,
  /// "transfer_bim<N>" (worst-case held-out surrogate), "eps_knee"
  /// (collapse-onset budget; -1 = no collapse within the sweep).
  const std::vector<std::string>& columns() const { return columns_; }

  const GauntletConfig& config() const { return config_; }

  /// Evaluates `defense` against every column. `pool` is the full set of
  /// trained participants (the defense itself included — it is excluded
  /// from its own transfer surrogates by transfer_cell).
  GauntletRow run_row(const metrics::TransferModel& defense,
                      const std::vector<metrics::TransferModel>& pool,
                      const data::Dataset& test) const;

  /// "method,<col>,<col>,..." — the matrix CSV header line (no newline).
  std::string csv_header() const;

  /// "name,%.6f,..." — one CSV line (no newline); fixed-precision so two
  /// runs of the same row are byte-identical.
  std::string csv_row(const GauntletRow& row) const;

 private:
  GauntletConfig config_;
  std::vector<AttackSpec> plan_;
  std::vector<std::string> columns_;
};

}  // namespace satd::gauntlet
