#include "gauntlet/transfer.h"

#include <algorithm>

#include "common/contract.h"

namespace satd::gauntlet {

std::vector<metrics::TransferModel> select_surrogates(
    const metrics::TransferModel& defense,
    const std::vector<metrics::TransferModel>& pool) {
  SATD_EXPECT(defense.model != nullptr, "null defense model");
  std::vector<metrics::TransferModel> surrogates;
  for (const auto& candidate : pool) {
    SATD_EXPECT(candidate.model != nullptr, "null model in surrogate pool");
    if (candidate.name == defense.name ||
        candidate.model == defense.model) {
      continue;
    }
    surrogates.push_back(candidate);
  }
  SATD_EXPECT(!surrogates.empty(),
              "transfer attack on \"" + defense.name +
                  "\" has no held-out surrogates");
  return surrogates;
}

TransferCell transfer_cell(const metrics::TransferModel& defense,
                           const std::vector<metrics::TransferModel>& pool,
                           const data::Dataset& test, attack::Attack& attack,
                           std::size_t batch_size) {
  const std::vector<metrics::TransferModel> surrogates =
      select_surrogates(defense, pool);
  // Exclusion invariant, re-checked on the final source list: the
  // defense must not craft the perturbations it is scored on.
  for (const auto& s : surrogates) {
    SATD_ENSURE(s.model != defense.model && s.name != defense.name,
                "defense leaked into its own surrogate set");
  }

  const metrics::TransferMatrix m =
      metrics::transfer_matrix(surrogates, {defense}, test, attack,
                               batch_size);

  TransferCell cell;
  cell.surrogate_names = m.names;
  cell.per_surrogate_accuracy.reserve(m.accuracy.size());
  for (const auto& row : m.accuracy) {
    SATD_ENSURE(row.size() == 1, "transfer cell expects a single target");
    cell.per_surrogate_accuracy.push_back(row[0]);
  }
  cell.worst_case = *std::min_element(cell.per_surrogate_accuracy.begin(),
                                      cell.per_surrogate_accuracy.end());
  return cell;
}

metrics::TransferMatrix cross_matrix(
    const std::vector<metrics::TransferModel>& pool,
    const data::Dataset& test, attack::Attack& attack,
    std::size_t batch_size) {
  return metrics::transfer_matrix(pool, test, attack, batch_size);
}

}  // namespace satd::gauntlet
