#include "gauntlet/attack_plan.h"

#include <stdexcept>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "attack/mifgsm.h"
#include "attack/restart.h"
#include "common/contract.h"

namespace satd::gauntlet {

std::vector<AttackSpec> white_box_plan(const PlanConfig& config) {
  SATD_EXPECT(config.bim_iterations > 0, "bim_iterations must be positive");
  SATD_EXPECT(config.mifgsm_iterations > 0,
              "mifgsm_iterations must be positive");
  SATD_EXPECT(config.pgd_iterations > 0, "pgd_iterations must be positive");
  SATD_EXPECT(config.pgd_restarts > 0, "pgd_restarts must be positive");

  std::vector<AttackSpec> plan;
  plan.push_back({"fgsm", [](float eps) {
                    return std::make_unique<attack::Fgsm>(eps);
                  }});
  plan.push_back({"bim" + std::to_string(config.bim_iterations),
                  [n = config.bim_iterations](float eps) {
                    return std::make_unique<attack::Bim>(eps, n);
                  }});
  plan.push_back({"mifgsm" + std::to_string(config.mifgsm_iterations),
                  [n = config.mifgsm_iterations,
                   mu = config.mifgsm_momentum](float eps) {
                    return std::make_unique<attack::MiFgsm>(
                        eps, n, eps / static_cast<float>(n), mu);
                  }});
  plan.push_back({"restart_pgd",
                  [n = config.pgd_iterations, r = config.pgd_restarts,
                   seed = config.pgd_seed](float eps) {
                    return std::make_unique<attack::RestartPgd>(
                        eps, n, /*eps_step=*/0.0f, r, seed);
                  }});
  return plan;
}

const AttackSpec& find_spec(const std::vector<AttackSpec>& plan,
                            const std::string& name) {
  for (const auto& spec : plan) {
    if (spec.name == name) return spec;
  }
  std::string msg = "unknown attack spec: \"" + name + "\"; known: ";
  bool first = true;
  for (const auto& spec : plan) {
    if (!first) msg += ", ";
    msg += spec.name;
    first = false;
  }
  throw std::invalid_argument(msg);
}

}  // namespace satd::gauntlet
