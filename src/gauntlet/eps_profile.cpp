#include "gauntlet/eps_profile.h"

#include <algorithm>

#include "common/contract.h"

namespace satd::gauntlet {

EpsProfile finish_profile(float clean_accuracy,
                          const std::vector<metrics::EpsPoint>& points) {
  SATD_EXPECT(clean_accuracy >= 0.0f && clean_accuracy <= 1.0f,
              "clean accuracy out of [0,1]");
  SATD_EXPECT(!points.empty(), "eps sweep needs at least one point");
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    SATD_EXPECT(points[i].eps < points[i + 1].eps,
                "eps sweep must be strictly increasing");
  }

  EpsProfile profile;
  profile.clean_accuracy = clean_accuracy;
  profile.points = points;
  profile.envelope.reserve(points.size());
  const float threshold = 0.5f * clean_accuracy;
  float running = points.front().accuracy;
  for (const auto& p : points) {
    running = std::min(running, p.accuracy);
    profile.envelope.push_back(running);
    if (!profile.collapsed && running < threshold) {
      profile.collapsed = true;
      profile.knee_eps = p.eps;
    }
  }
  return profile;
}

EpsProfile profile_collapse(nn::Sequential& model, const data::Dataset& test,
                            const std::vector<float>& eps_values,
                            std::size_t iterations, std::size_t batch_size) {
  SATD_EXPECT(iterations > 0, "profile needs at least one attack iteration");
  const float clean = metrics::evaluate_clean(model, test, batch_size);
  const std::vector<metrics::EpsPoint> points =
      metrics::accuracy_vs_eps(model, test, eps_values, iterations,
                               batch_size);
  return finish_profile(clean, points);
}

}  // namespace satd::gauntlet
