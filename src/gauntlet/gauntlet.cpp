#include "gauntlet/gauntlet.h"

#include <cstdio>

#include "attack/bim.h"
#include "common/contract.h"
#include "gauntlet/eps_profile.h"
#include "gauntlet/transfer.h"
#include "metrics/evaluator.h"

namespace satd::gauntlet {

namespace {

std::string format_cell(float value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(value));
  return buf;
}

}  // namespace

GauntletRunner::GauntletRunner(GauntletConfig config)
    : config_(std::move(config)), plan_(white_box_plan(config_.plan)) {
  SATD_EXPECT(config_.eps > 0.0f, "gauntlet eps must be positive");
  SATD_EXPECT(config_.transfer_iterations > 0,
              "transfer_iterations must be positive");
  SATD_EXPECT(config_.sweep_iterations > 0,
              "sweep_iterations must be positive");
  SATD_EXPECT(!config_.eps_sweep.empty(), "eps_sweep must be non-empty");
  SATD_EXPECT(config_.batch_size > 0, "batch size must be positive");

  columns_.push_back("clean");
  for (const auto& spec : plan_) columns_.push_back(spec.name);
  columns_.push_back("transfer_bim" +
                     std::to_string(config_.transfer_iterations));
  columns_.push_back("eps_knee");
}

GauntletRow GauntletRunner::run_row(
    const metrics::TransferModel& defense,
    const std::vector<metrics::TransferModel>& pool,
    const data::Dataset& test) const {
  SATD_EXPECT(defense.model != nullptr, "null defense model");

  GauntletRow row;
  row.method = defense.name;
  row.values.reserve(columns_.size());

  row.values.push_back(
      metrics::evaluate_clean(*defense.model, test, config_.batch_size));

  for (const auto& spec : plan_) {
    // A fresh attack per cell: no scratch state crosses cells, so any
    // cell recomputed in isolation (e.g. on crash-resume) is
    // bit-identical to the same cell inside an uninterrupted run.
    auto attack = spec.make(config_.eps);
    row.values.push_back(metrics::evaluate_attack(
        *defense.model, test, *attack, config_.batch_size));
  }

  attack::Bim transfer_attack(config_.eps, config_.transfer_iterations);
  row.values.push_back(
      transfer_cell(defense, pool, test, transfer_attack, config_.batch_size)
          .worst_case);

  row.values.push_back(profile_collapse(*defense.model, test,
                                        config_.eps_sweep,
                                        config_.sweep_iterations,
                                        config_.batch_size)
                           .knee_eps);

  SATD_ENSURE(row.values.size() == columns_.size(),
              "gauntlet row/column mismatch");
  return row;
}

std::string GauntletRunner::csv_header() const {
  std::string line = "method";
  for (const auto& c : columns_) line += "," + c;
  return line;
}

std::string GauntletRunner::csv_row(const GauntletRow& row) const {
  SATD_EXPECT(row.values.size() == columns_.size(),
              "gauntlet row/column mismatch");
  std::string line = row.method;
  for (float v : row.values) line += "," + format_cell(v);
  return line;
}

}  // namespace satd::gauntlet
