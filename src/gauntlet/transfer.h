// Gauntlet transfer machinery: black-box attacks from held-out
// surrogates against one defended model.
//
// A gradient-masking defense looks robust white-box and folds black-box
// (Athalye et al. 2018). The gauntlet's transfer column therefore crafts
// the attack on SURROGATE models the defense never saw — every other
// trained defense in the study's model pool — and scores the defense on
// the worst (minimum-accuracy) surrogate. The exclusion invariant is
// enforced, not assumed: the defense under test must never appear among
// its own crafting sources, by name or by pointer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "data/dataset.h"
#include "metrics/transfer.h"

namespace satd::gauntlet {

/// One defense's transfer-attack result.
struct TransferCell {
  /// Crafting sources actually used (the pool minus the defense).
  std::vector<std::string> surrogate_names;
  /// accuracy[i] = defense accuracy on examples crafted on surrogate i.
  std::vector<float> per_surrogate_accuracy;
  /// min over surrogates — the black-box worst case, the matrix cell.
  float worst_case = 0.0f;
};

/// Selects the surrogates for `defense` out of `pool`: every pool entry
/// that is not the defense itself (matched by name AND by model
/// pointer). Throws ContractViolation if nothing is left.
std::vector<metrics::TransferModel> select_surrogates(
    const metrics::TransferModel& defense,
    const std::vector<metrics::TransferModel>& pool);

/// Crafts `attack` on each surrogate of `defense` in `pool` and scores
/// the defense on every crafted batch; the cell is the per-surrogate
/// minimum.
TransferCell transfer_cell(const metrics::TransferModel& defense,
                           const std::vector<metrics::TransferModel>& pool,
                           const data::Dataset& test, attack::Attack& attack,
                           std::size_t batch_size = 64);

/// Full symmetric cross matrix over a participant pool (every model both
/// crafts and defends) — the classic transfer-study view the extension
/// bench renders. Thin wrapper over metrics::transfer_matrix so the
/// bench and the gauntlet share one crafting/evaluation path.
metrics::TransferMatrix cross_matrix(
    const std::vector<metrics::TransferModel>& pool,
    const data::Dataset& test, attack::Attack& attack,
    std::size_t batch_size = 64);

}  // namespace satd::gauntlet
