#include "metrics/report.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/contract.h"

namespace satd::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SATD_EXPECT(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  SATD_EXPECT(row.size() == header_.size(),
              "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      width[j] = std::max(width[j], row[j].size());
    }
  }
  std::ostringstream ss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      ss << (j == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(width[j]))
         << row[j];
    }
    ss << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t j = 0; j < width.size(); ++j) total += width[j] + (j ? 2 : 0);
  ss << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return ss.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream os(path);
  SATD_EXPECT(static_cast<bool>(os), "cannot open CSV for writing: " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      SATD_EXPECT(row[j].find(',') == std::string::npos,
                  "CSV cell contains a comma");
      os << (j ? "," : "") << row[j];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string percent(float fraction) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(2) << fraction * 100.0f << "%";
  return ss.str();
}

std::string seconds(double s) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(2) << s;
  return ss.str();
}

void print_banner(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

}  // namespace satd::metrics
