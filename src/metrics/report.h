// Tabular / series reporting for bench output.
//
// Benches print the same rows/series the paper reports; this module
// renders aligned text tables on stdout and writes machine-readable CSV
// next to them so EXPERIMENTS.md can cite exact numbers.
#pragma once

#include <string>
#include <vector>

namespace satd::metrics {

/// Simple aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row (must match the header width).
  void add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a separator under the header.
  std::string to_string() const;

  /// Writes the table as CSV (no escaping needed for our cell content,
  /// but commas in cells are rejected).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a fraction as "93.29%" with two decimals (paper style).
std::string percent(float fraction);

/// Formats seconds as "56.47" with two decimals.
std::string seconds(double s);

/// Prints a banner for an experiment section.
void print_banner(const std::string& title);

}  // namespace satd::metrics
