// Robust-accuracy evaluation: the measurements behind Figures 1-2 and
// Table I.
#pragma once

#include <cstddef>
#include <vector>

#include "attack/attack.h"
#include "data/dataset.h"
#include "nn/quantized.h"
#include "nn/sequential.h"

namespace satd::metrics {

/// Shared batched-prediction path: forwards `images` ([N, ...]) through
/// `model` in inference mode, in sub-batches of at most `batch_size`,
/// writing the logits ([N, K]) into `logits` and the row argmaxes into
/// `preds` (both reused across calls). This is the one inference loop
/// behind the confusion matrix, the transfer study and the serving
/// microbatcher, so evaluation and serving cannot drift: predictions are
/// bit-identical for any sub-batch split.
void predict_into(nn::Sequential& model, const Tensor& images,
                  std::size_t batch_size, Tensor& logits,
                  std::vector<std::size_t>& preds);

/// Int8 twin of predict_into: same sub-batching and argmax convention,
/// but the forward runs through the immutable QuantizedModel with the
/// caller-owned workspace. Per-row activation quantization keeps the
/// result independent of the sub-batch split, exactly like the float
/// path.
void predict_quantized_into(const nn::QuantizedModel& model,
                            const Tensor& images, std::size_t batch_size,
                            Tensor& logits, std::vector<std::size_t>& preds,
                            nn::QuantizedWorkspace& ws);

/// Accuracy on clean examples.
float evaluate_clean(nn::Sequential& model, const data::Dataset& test,
                     std::size_t batch_size = 64);

/// Accuracy under an attack (the attack perturbs each test batch).
float evaluate_attack(nn::Sequential& model, const data::Dataset& test,
                      attack::Attack& attack, std::size_t batch_size = 64);

/// One point of an accuracy-vs-iterations curve.
struct CurvePoint {
  std::size_t iterations = 0;
  float accuracy = 0.0f;
};

/// Figure 1: accuracy against BIM(N) for each N in `iteration_counts`,
/// with the paper's eps_step = eps / N convention.
std::vector<CurvePoint> robust_curve(nn::Sequential& model,
                                     const data::Dataset& test, float eps,
                                     const std::vector<std::size_t>& iteration_counts,
                                     std::size_t batch_size = 64);

/// Figure 2: accuracy on the INTERMEDIATE iterates of BIM(total_iterations)
/// (eps_step = eps / total_iterations); element i is the accuracy after
/// iteration i+1.
std::vector<CurvePoint> intermediate_curve(nn::Sequential& model,
                                           const data::Dataset& test,
                                           float eps,
                                           std::size_t total_iterations,
                                           std::size_t batch_size = 64);

/// One point of an accuracy-vs-budget profile.
struct EpsPoint {
  float eps = 0.0f;
  float accuracy = 0.0f;
};

/// Robustness profile: accuracy under BIM(iterations) across a sweep of
/// total budgets (eps_step = eps / iterations at each point). The x-axis
/// complement to Figure 1's iteration sweep.
std::vector<EpsPoint> accuracy_vs_eps(nn::Sequential& model,
                                      const data::Dataset& test,
                                      const std::vector<float>& eps_values,
                                      std::size_t iterations,
                                      std::size_t batch_size = 64);

}  // namespace satd::metrics
