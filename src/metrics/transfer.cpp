#include "metrics/transfer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/contract.h"
#include "metrics/evaluator.h"

namespace satd::metrics {

std::string TransferMatrix::to_string() const {
  SATD_EXPECT(names.size() == accuracy.size(), "malformed transfer matrix");
  std::size_t width = 12;
  for (const auto& n : names) width = std::max(width, n.size() + 2);
  for (const auto& n : col_names) width = std::max(width, n.size() + 2);
  std::ostringstream ss;
  ss << std::left << std::setw(static_cast<int>(width)) << "src\\target";
  for (const auto& n : col_names) {
    ss << std::setw(static_cast<int>(width)) << n;
  }
  ss << "\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    SATD_EXPECT(accuracy[i].size() == col_names.size(),
                "malformed transfer matrix row");
    ss << std::setw(static_cast<int>(width)) << names[i];
    for (float a : accuracy[i]) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(2) << a * 100.0f << "%";
      ss << std::setw(static_cast<int>(width)) << cell.str();
    }
    ss << "\n";
  }
  return ss.str();
}

TransferMatrix transfer_matrix(const std::vector<TransferModel>& sources,
                               const std::vector<TransferModel>& targets,
                               const data::Dataset& test,
                               attack::Attack& attack,
                               std::size_t batch_size) {
  SATD_EXPECT(!sources.empty(), "transfer study needs at least one source");
  SATD_EXPECT(!targets.empty(), "transfer study needs at least one target");
  SATD_EXPECT(test.size() > 0, "empty test set");
  SATD_EXPECT(batch_size > 0, "batch size must be positive");
  for (const auto& m : sources) {
    SATD_EXPECT(m.model != nullptr, "null source model in transfer study");
  }
  for (const auto& m : targets) {
    SATD_EXPECT(m.model != nullptr, "null target model in transfer study");
  }

  TransferMatrix out;
  for (const auto& m : sources) out.names.push_back(m.name);
  for (const auto& m : targets) out.col_names.push_back(m.name);
  out.accuracy.assign(sources.size(),
                      std::vector<float>(targets.size(), 0.0f));

  const auto& dims = test.images.shape().dims();
  std::vector<std::vector<std::size_t>> correct(
      sources.size(), std::vector<std::size_t>(targets.size(), 0));
  Tensor logits;
  std::vector<std::size_t> preds;

  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, test.size());
    Tensor images(Shape{end - begin, dims[1], dims[2], dims[3]});
    std::vector<std::size_t> labels(
        test.labels.begin() + static_cast<std::ptrdiff_t>(begin),
        test.labels.begin() + static_cast<std::ptrdiff_t>(end));
    for (std::size_t i = begin; i < end; ++i) {
      images.set_row(i - begin, test.images.slice_row(i));
    }
    for (std::size_t src = 0; src < sources.size(); ++src) {
      const Tensor adv =
          attack.perturb(*sources[src].model, images, labels);
      for (std::size_t dst = 0; dst < targets.size(); ++dst) {
        predict_into(*targets[dst].model, adv, batch_size, logits, preds);
        for (std::size_t k = 0; k < labels.size(); ++k) {
          if (preds[k] == labels[k]) ++correct[src][dst];
        }
      }
    }
  }
  for (std::size_t src = 0; src < sources.size(); ++src) {
    for (std::size_t dst = 0; dst < targets.size(); ++dst) {
      out.accuracy[src][dst] = static_cast<float>(correct[src][dst]) /
                               static_cast<float>(test.size());
    }
  }
  return out;
}

TransferMatrix transfer_matrix(const std::vector<TransferModel>& models,
                               const data::Dataset& test,
                               attack::Attack& attack,
                               std::size_t batch_size) {
  return transfer_matrix(models, models, test, attack, batch_size);
}

}  // namespace satd::metrics
