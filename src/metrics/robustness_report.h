// Detailed robustness report for one (model, attack) pair.
//
// Accuracy alone hides useful structure: an attack can "succeed" by
// flipping already-misclassified examples, and two defenses with equal
// accuracy can differ wildly in how confidently they fail. This report
// aggregates the quantities a robustness evaluation writeup actually
// cites: attack success rate over the initially-correct subset, softmax
// confidence on the true label before/after, and the perturbation
// norms the attack actually used (vs. its nominal budget).
#pragma once

#include <string>

#include "attack/attack.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace satd::metrics {

/// Aggregate robustness statistics (all means over the test set unless
/// stated otherwise).
struct RobustnessReport {
  std::string attack_name;
  std::size_t examples = 0;

  float clean_accuracy = 0.0f;
  float adversarial_accuracy = 0.0f;
  /// Fraction of initially-CORRECT examples the attack flipped.
  float attack_success_rate = 0.0f;

  /// Mean softmax probability assigned to the true label.
  float mean_confidence_clean = 0.0f;
  float mean_confidence_adv = 0.0f;

  /// Perturbation geometry actually used by the attack.
  float mean_linf = 0.0f;  ///< mean over examples of max |delta|
  float max_linf = 0.0f;   ///< worst case over the whole set
  float mean_l2 = 0.0f;    ///< mean per-example l2 norm of delta
  /// Mean fraction of pixels changed by more than 1/255.
  float mean_changed_fraction = 0.0f;

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Runs `attack` over the test set and aggregates the report.
RobustnessReport robustness_report(nn::Sequential& model,
                                   const data::Dataset& test,
                                   attack::Attack& attack,
                                   std::size_t batch_size = 64);

}  // namespace satd::metrics
