#include "metrics/robustness_report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::metrics {

std::string RobustnessReport::to_string() const {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(2);
  ss << "Robustness report — " << attack_name << " over " << examples
     << " examples\n";
  ss << "  accuracy:        clean " << clean_accuracy * 100.0f
     << "%  ->  adversarial " << adversarial_accuracy * 100.0f << "%\n";
  ss << "  attack success:  " << attack_success_rate * 100.0f
     << "% of initially-correct examples flipped\n";
  ss << "  true-label confidence: clean " << mean_confidence_clean * 100.0f
     << "%  ->  adversarial " << mean_confidence_adv * 100.0f << "%\n";
  ss << std::setprecision(4);
  ss << "  perturbation:    mean l-inf " << mean_linf << " (max " << max_linf
     << "), mean l2 " << mean_l2 << ", " << std::setprecision(1)
     << mean_changed_fraction * 100.0f << "% of pixels changed\n";
  return ss.str();
}

RobustnessReport robustness_report(nn::Sequential& model,
                                   const data::Dataset& test,
                                   attack::Attack& attack,
                                   std::size_t batch_size) {
  SATD_EXPECT(test.size() > 0, "empty test set");
  SATD_EXPECT(batch_size > 0, "batch size must be positive");

  RobustnessReport rep;
  rep.attack_name = attack.name();
  rep.examples = test.size();

  std::size_t clean_correct = 0;
  std::size_t adv_correct = 0;
  std::size_t flipped = 0;
  double conf_clean = 0.0, conf_adv = 0.0;
  double linf_acc = 0.0, l2_acc = 0.0, changed_acc = 0.0;
  constexpr float kChangeThreshold = 1.0f / 255.0f;

  const auto& dims = test.images.shape().dims();
  const std::size_t pixels = dims[1] * dims[2] * dims[3];
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, test.size());
    const std::size_t b = end - begin;
    Tensor images(Shape{b, dims[1], dims[2], dims[3]});
    std::vector<std::size_t> labels(
        test.labels.begin() + static_cast<std::ptrdiff_t>(begin),
        test.labels.begin() + static_cast<std::ptrdiff_t>(end));
    for (std::size_t i = begin; i < end; ++i) {
      images.set_row(i - begin, test.images.slice_row(i));
    }

    const Tensor adv = attack.perturb(model, images, labels);
    const Tensor p_clean = nn::softmax(model.forward(images, false));
    const Tensor p_adv = nn::softmax(model.forward(adv, false));
    const auto pred_clean = ops::argmax_rows(p_clean);
    const auto pred_adv = ops::argmax_rows(p_adv);

    for (std::size_t k = 0; k < b; ++k) {
      const bool was_correct = pred_clean[k] == labels[k];
      const bool is_correct = pred_adv[k] == labels[k];
      clean_correct += was_correct;
      adv_correct += is_correct;
      if (was_correct && !is_correct) ++flipped;
      conf_clean += p_clean.at(k, labels[k]);
      conf_adv += p_adv.at(k, labels[k]);
      // Perturbation geometry for this example.
      float linf = 0.0f;
      double l2 = 0.0;
      std::size_t changed = 0;
      const float* pi = images.raw() + k * pixels;
      const float* pa = adv.raw() + k * pixels;
      for (std::size_t j = 0; j < pixels; ++j) {
        const float d = std::fabs(pa[j] - pi[j]);
        linf = std::max(linf, d);
        l2 += static_cast<double>(d) * d;
        if (d > kChangeThreshold) ++changed;
      }
      linf_acc += linf;
      rep.max_linf = std::max(rep.max_linf, linf);
      l2_acc += std::sqrt(l2);
      changed_acc += static_cast<double>(changed) / static_cast<double>(pixels);
    }
  }

  const auto n = static_cast<double>(test.size());
  rep.clean_accuracy = static_cast<float>(clean_correct / n);
  rep.adversarial_accuracy = static_cast<float>(adv_correct / n);
  rep.attack_success_rate =
      clean_correct == 0
          ? 0.0f
          : static_cast<float>(flipped) / static_cast<float>(clean_correct);
  rep.mean_confidence_clean = static_cast<float>(conf_clean / n);
  rep.mean_confidence_adv = static_cast<float>(conf_adv / n);
  rep.mean_linf = static_cast<float>(linf_acc / n);
  rep.mean_l2 = static_cast<float>(l2_acc / n);
  rep.mean_changed_fraction = static_cast<float>(changed_acc / n);
  return rep;
}

}  // namespace satd::metrics
