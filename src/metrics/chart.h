// ASCII line charts for terminal-rendered "figures".
//
// The paper's Figures 1 and 2 are accuracy-vs-iteration line plots; the
// figure benches print both the exact numbers (Table) and an AsciiChart
// rendering so the curve shapes (collapse, convergence, flatness) are
// visible directly in the bench output.
#pragma once

#include <string>
#include <vector>

namespace satd::metrics {

/// Multi-series line chart on a character grid.
///
/// Y values are fractions in [0, 1] (accuracies); X is an evenly spaced
/// category axis labeled by the caller. Each series gets a distinct
/// glyph; collisions show the later-added series.
class AsciiChart {
 public:
  /// `height` rows of plot area (plus axes); `width` columns.
  AsciiChart(std::size_t width = 60, std::size_t height = 16);

  /// Adds one series. `ys` length must match the x-label count of the
  /// first series added.
  void add_series(const std::string& name, const std::vector<float>& ys);

  /// Sets the x-axis tick labels (one per point, sparsely printed).
  void set_x_labels(const std::vector<std::string>& labels);

  /// Renders the chart + legend.
  std::string to_string() const;

 private:
  struct Series {
    std::string name;
    std::vector<float> ys;
    char glyph;
  };

  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
  std::vector<std::string> x_labels_;
};

}  // namespace satd::metrics
