#include "metrics/evaluator.h"

#include <algorithm>

#include "attack/bim.h"
#include "common/contract.h"
#include "common/thread_pool.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::metrics {

namespace {

/// Per-evaluation scratch: the batch view, the forward output and the
/// prediction indices are carried across batches so a full test-set pass
/// allocates only on the first (and, for a smaller trailing batch, the
/// last) iteration.
struct EvalScratch {
  Tensor images;
  std::vector<std::size_t> labels;
  Tensor adv;
  Tensor logits;
  std::vector<std::size_t> preds;
};

/// Iterates the test set in fixed-size batches, invoking
/// fn(images, labels) per batch. The batch tensors live in `scratch` and
/// are reused (resize-on-shape-change) across batches.
///
/// The outer batch loop is intentionally sequential: the model's layer
/// caches and the attack scratch are shared state, so the parallelism
/// lives *inside* fn (GEMM row panels, im2col images, elementwise attack
/// updates) where the decomposition is over independent outputs and the
/// results stay thread-count independent. Only the batch staging copy is
/// parallelized here.
template <typename Fn>
void for_each_batch(const data::Dataset& test, std::size_t batch_size,
                    EvalScratch& scratch, Fn&& fn) {
  SATD_EXPECT(batch_size > 0, "batch size must be positive");
  const std::size_t n = test.size();
  const auto& dims = test.images.shape().dims();
  const std::size_t example = dims[1] * dims[2] * dims[3];
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, n);
    scratch.images.ensure_shape(
        Shape{end - begin, dims[1], dims[2], dims[3]});
    scratch.labels.assign(
        test.labels.begin() + static_cast<std::ptrdiff_t>(begin),
        test.labels.begin() + static_cast<std::ptrdiff_t>(end));
    const float* src = test.images.raw() + begin * example;
    float* dst = scratch.images.raw();
    const std::size_t grain =
        std::max<std::size_t>(1, kElementGrain / example);
    parallel_for(end - begin, grain,
                 [src, dst, example](std::size_t i0, std::size_t i1) {
                   std::copy(src + i0 * example, src + i1 * example,
                             dst + i0 * example);
                 });
    fn(scratch.images, scratch.labels);
  }
}

std::size_t count_correct(nn::Sequential& model, const Tensor& images,
                          const std::vector<std::size_t>& labels,
                          EvalScratch& scratch) {
  model.forward_into(images, scratch.logits, /*training=*/false);
  ops::argmax_rows_into(scratch.logits, scratch.preds);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (scratch.preds[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace

void predict_into(nn::Sequential& model, const Tensor& images,
                  std::size_t batch_size, Tensor& logits,
                  std::vector<std::size_t>& preds) {
  SATD_EXPECT(batch_size > 0, "batch size must be positive");
  SATD_EXPECT(images.shape().rank() >= 2, "predict needs a batched tensor");
  const std::size_t n = images.shape()[0];
  if (n <= batch_size) {
    model.forward_into(images, logits, /*training=*/false);
    ops::argmax_rows_into(logits, preds);
    return;
  }
  const std::size_t example = images.numel() / n;
  Tensor sub, sub_logits;
  std::vector<std::size_t> sub_dims = images.shape().dims();
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, n);
    sub_dims[0] = end - begin;
    sub.ensure_shape(Shape(sub_dims));
    std::copy(images.raw() + begin * example, images.raw() + end * example,
              sub.raw());
    model.forward_into(sub, sub_logits, /*training=*/false);
    if (begin == 0) {
      logits.ensure_shape(Shape{n, sub_logits.shape()[1]});
    }
    std::copy(sub_logits.raw(), sub_logits.raw() + sub_logits.numel(),
              logits.raw() + begin * sub_logits.shape()[1]);
  }
  ops::argmax_rows_into(logits, preds);
}

void predict_quantized_into(const nn::QuantizedModel& model,
                            const Tensor& images, std::size_t batch_size,
                            Tensor& logits, std::vector<std::size_t>& preds,
                            nn::QuantizedWorkspace& ws) {
  SATD_EXPECT(batch_size > 0, "batch size must be positive");
  SATD_EXPECT(images.shape().rank() >= 2, "predict needs a batched tensor");
  const std::size_t n = images.shape()[0];
  if (n <= batch_size) {
    model.forward_into(images, logits, ws);
    ops::argmax_rows_into(logits, preds);
    return;
  }
  const std::size_t example = images.numel() / n;
  Tensor sub, sub_logits;
  std::vector<std::size_t> sub_dims = images.shape().dims();
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, n);
    sub_dims[0] = end - begin;
    sub.ensure_shape(Shape(sub_dims));
    std::copy(images.raw() + begin * example, images.raw() + end * example,
              sub.raw());
    model.forward_into(sub, sub_logits, ws);
    if (begin == 0) {
      logits.ensure_shape(Shape{n, sub_logits.shape()[1]});
    }
    std::copy(sub_logits.raw(), sub_logits.raw() + sub_logits.numel(),
              logits.raw() + begin * sub_logits.shape()[1]);
  }
  ops::argmax_rows_into(logits, preds);
}

float evaluate_clean(nn::Sequential& model, const data::Dataset& test,
                     std::size_t batch_size) {
  SATD_EXPECT(test.size() > 0, "empty test set");
  EvalScratch scratch;
  std::size_t correct = 0;
  for_each_batch(test, batch_size, scratch,
                 [&](const Tensor& images, const std::vector<std::size_t>& labels) {
                   correct += count_correct(model, images, labels, scratch);
                 });
  return static_cast<float>(correct) / static_cast<float>(test.size());
}

float evaluate_attack(nn::Sequential& model, const data::Dataset& test,
                      attack::Attack& attack, std::size_t batch_size) {
  SATD_EXPECT(test.size() > 0, "empty test set");
  EvalScratch scratch;
  std::size_t correct = 0;
  for_each_batch(test, batch_size, scratch,
                 [&](const Tensor& images, const std::vector<std::size_t>& labels) {
                   attack.perturb_into(model, images, labels, scratch.adv);
                   correct += count_correct(model, scratch.adv, labels, scratch);
                 });
  return static_cast<float>(correct) / static_cast<float>(test.size());
}

std::vector<CurvePoint> robust_curve(
    nn::Sequential& model, const data::Dataset& test, float eps,
    const std::vector<std::size_t>& iteration_counts, std::size_t batch_size) {
  std::vector<CurvePoint> curve;
  curve.reserve(iteration_counts.size());
  for (std::size_t n : iteration_counts) {
    attack::Bim bim(eps, n);  // eps_step = eps / n, per the paper
    CurvePoint p;
    p.iterations = n;
    p.accuracy = evaluate_attack(model, test, bim, batch_size);
    curve.push_back(p);
  }
  return curve;
}

std::vector<CurvePoint> intermediate_curve(nn::Sequential& model,
                                           const data::Dataset& test,
                                           float eps,
                                           std::size_t total_iterations,
                                           std::size_t batch_size) {
  SATD_EXPECT(total_iterations > 0, "need at least one iteration");
  std::vector<std::size_t> correct(total_iterations, 0);
  attack::Bim bim(eps, total_iterations);
  EvalScratch scratch;
  for_each_batch(
      test, batch_size, scratch,
      [&](const Tensor& images, const std::vector<std::size_t>& labels) {
        const auto trace = bim.perturb_with_trace(model, images, labels);
        SATD_ENSURE(trace.size() == total_iterations, "trace length mismatch");
        for (std::size_t t = 0; t < trace.size(); ++t) {
          correct[t] += count_correct(model, trace[t], labels, scratch);
        }
      });
  std::vector<CurvePoint> curve(total_iterations);
  for (std::size_t t = 0; t < total_iterations; ++t) {
    curve[t].iterations = t + 1;
    curve[t].accuracy =
        static_cast<float>(correct[t]) / static_cast<float>(test.size());
  }
  return curve;
}

std::vector<EpsPoint> accuracy_vs_eps(nn::Sequential& model,
                                      const data::Dataset& test,
                                      const std::vector<float>& eps_values,
                                      std::size_t iterations,
                                      std::size_t batch_size) {
  SATD_EXPECT(iterations > 0, "need at least one iteration");
  std::vector<EpsPoint> profile;
  profile.reserve(eps_values.size());
  for (float eps : eps_values) {
    SATD_EXPECT(eps >= 0.0f, "eps must be non-negative");
    EpsPoint p;
    p.eps = eps;
    if (eps == 0.0f) {
      p.accuracy = evaluate_clean(model, test, batch_size);
    } else {
      attack::Bim bim(eps, iterations);
      p.accuracy = evaluate_attack(model, test, bim, batch_size);
    }
    profile.push_back(p);
  }
  return profile;
}

}  // namespace satd::metrics
