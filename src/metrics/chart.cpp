#include "metrics/chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contract.h"

namespace satd::metrics {

namespace {
constexpr char kGlyphs[] = {'o', '+', 'x', '*', '#', '@', '%', '&'};
}

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  SATD_EXPECT(width >= 10 && height >= 4, "chart too small");
}

void AsciiChart::add_series(const std::string& name,
                            const std::vector<float>& ys) {
  SATD_EXPECT(!ys.empty(), "empty series");
  if (!series_.empty()) {
    SATD_EXPECT(ys.size() == series_.front().ys.size(),
                "series length mismatch");
  }
  for (float y : ys) {
    SATD_EXPECT(y >= 0.0f && y <= 1.0f, "series values must be in [0,1]");
  }
  Series s;
  s.name = name;
  s.ys = ys;
  s.glyph = kGlyphs[series_.size() % (sizeof kGlyphs)];
  series_.push_back(std::move(s));
}

void AsciiChart::set_x_labels(const std::vector<std::string>& labels) {
  x_labels_ = labels;
}

std::string AsciiChart::to_string() const {
  SATD_EXPECT(!series_.empty(), "chart has no series");
  const std::size_t points = series_.front().ys.size();
  // Grid of plot cells; row 0 is the TOP (y = 1.0).
  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto col_of = [&](std::size_t i) {
    return points == 1
               ? width_ / 2
               : i * (width_ - 1) / (points - 1);
  };
  auto row_of = [&](float y) {
    const auto r = static_cast<std::size_t>(
        std::lround((1.0f - y) * static_cast<float>(height_ - 1)));
    return std::min(r, height_ - 1);
  };
  for (const Series& s : series_) {
    // Mark the points and connect with linear interpolation.
    for (std::size_t i = 0; i + 1 < points; ++i) {
      const std::size_t c0 = col_of(i), c1 = col_of(i + 1);
      for (std::size_t c = c0; c <= c1; ++c) {
        const float t = c1 == c0 ? 0.0f
                                 : static_cast<float>(c - c0) /
                                       static_cast<float>(c1 - c0);
        const float y = s.ys[i] + t * (s.ys[i + 1] - s.ys[i]);
        grid[row_of(y)][c] = s.glyph;
      }
    }
    if (points == 1) grid[row_of(s.ys[0])][col_of(0)] = s.glyph;
  }

  std::ostringstream ss;
  for (std::size_t r = 0; r < height_; ++r) {
    // Y axis labels at the top, middle and bottom rows.
    const float y =
        1.0f - static_cast<float>(r) / static_cast<float>(height_ - 1);
    if (r == 0 || r == height_ - 1 || r == (height_ - 1) / 2) {
      char label[8];
      std::snprintf(label, sizeof label, "%4.0f%% ", y * 100.0f);
      ss << label;
    } else {
      ss << "      ";
    }
    ss << "|" << grid[r] << "\n";
  }
  ss << "      +" << std::string(width_, '-') << "\n";
  // Sparse x labels: first, middle, last.
  if (!x_labels_.empty() && x_labels_.size() == points) {
    std::string axis(width_ + 7, ' ');
    auto place = [&](std::size_t i) {
      const std::string& lab = x_labels_[i];
      std::size_t start = 7 + col_of(i);
      if (start + lab.size() > axis.size()) {
        start = axis.size() - lab.size();
      }
      axis.replace(start, lab.size(), lab);
    };
    place(0);
    if (points > 2) place(points / 2);
    if (points > 1) place(points - 1);
    ss << axis << "\n";
  }
  // Legend.
  ss << "      ";
  for (const Series& s : series_) {
    ss << s.glyph << "=" << s.name << "  ";
  }
  ss << "\n";
  return ss.str();
}

}  // namespace satd::metrics
