// Confusion matrix for per-class error analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace satd::metrics {

/// K x K confusion counts (rows = true class, cols = predicted class).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void record(std::size_t truth, std::size_t predicted);

  std::size_t count(std::size_t truth, std::size_t predicted) const;
  std::size_t total() const { return total_; }
  std::size_t num_classes() const { return k_; }

  /// Overall accuracy (0 when empty).
  float accuracy() const;

  /// Recall of one class (0 when the class has no examples).
  float recall(std::size_t cls) const;

  /// Precision of one class (0 when the class was never predicted).
  float precision(std::size_t cls) const;

  /// Aligned text rendering.
  std::string to_string() const;

 private:
  std::size_t k_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // k*k row-major
};

/// Evaluates the model over a dataset and fills a confusion matrix.
ConfusionMatrix confusion_on(nn::Sequential& model, const data::Dataset& test,
                             std::size_t batch_size = 64);

}  // namespace satd::metrics
