// Black-box transferability evaluation.
//
// White-box attacks (the paper's threat model) craft perturbations
// against the deployed model itself; the black-box complement crafts
// them against a SOURCE model and measures how well they fool a TARGET.
// The transfer matrix over a set of trained classifiers shows whether a
// defense's robustness survives attacks optimized on a different network
// — a standard sanity check against gradient masking (Athalye et al.
// 2018, the paper's reference [1]).
#pragma once

#include <string>
#include <vector>

#include "attack/attack.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace satd::metrics {

/// A named classifier participating in the transfer study.
struct TransferModel {
  std::string name;
  nn::Sequential* model = nullptr;  ///< borrowed, non-null
};

/// accuracy[i][j] = accuracy of target j on adversarial examples crafted
/// against source i. In the symmetric (single model set) form, sources
/// and targets coincide and the diagonal is the usual white-box accuracy.
struct TransferMatrix {
  std::vector<std::string> names;      ///< source names (rows)
  std::vector<std::string> col_names;  ///< target names (columns)
  std::vector<std::vector<float>> accuracy;

  /// Renders an aligned source-rows x target-columns table.
  std::string to_string() const;
};

/// General form: crafts `attack` against every source and evaluates every
/// target on the result. Sources and targets may overlap, nest or be
/// disjoint — the gauntlet's surrogate transfer uses held-out sources
/// against a single defended target.
TransferMatrix transfer_matrix(const std::vector<TransferModel>& sources,
                               const std::vector<TransferModel>& targets,
                               const data::Dataset& test,
                               attack::Attack& attack,
                               std::size_t batch_size = 64);

/// Symmetric form: every model is both a source and a target.
TransferMatrix transfer_matrix(const std::vector<TransferModel>& models,
                               const data::Dataset& test,
                               attack::Attack& attack,
                               std::size_t batch_size = 64);

}  // namespace satd::metrics
