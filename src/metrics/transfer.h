// Black-box transferability evaluation.
//
// White-box attacks (the paper's threat model) craft perturbations
// against the deployed model itself; the black-box complement crafts
// them against a SOURCE model and measures how well they fool a TARGET.
// The transfer matrix over a set of trained classifiers shows whether a
// defense's robustness survives attacks optimized on a different network
// — a standard sanity check against gradient masking (Athalye et al.
// 2018, the paper's reference [1]).
#pragma once

#include <string>
#include <vector>

#include "attack/attack.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace satd::metrics {

/// A named classifier participating in the transfer study.
struct TransferModel {
  std::string name;
  nn::Sequential* model = nullptr;  ///< borrowed, non-null
};

/// accuracy[i][j] = accuracy of model j on adversarial examples crafted
/// against model i (diagonal = the usual white-box accuracy).
struct TransferMatrix {
  std::vector<std::string> names;
  std::vector<std::vector<float>> accuracy;

  /// Renders an aligned source-rows x target-columns table.
  std::string to_string() const;
};

/// Crafts `attack` against every source model and evaluates every target
/// on the result.
TransferMatrix transfer_matrix(const std::vector<TransferModel>& models,
                               const data::Dataset& test,
                               attack::Attack& attack,
                               std::size_t batch_size = 64);

}  // namespace satd::metrics
