#include "metrics/experiment.h"

#include <cstdlib>
#include <sstream>

#include "common/contract.h"

namespace satd::metrics {

namespace {
std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    SATD_EXPECT(parsed > 0, std::string(name) + " must be positive");
    return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  if (const char* v = std::getenv(name)) return v;
  return fallback;
}
}  // namespace

float ExperimentEnv::eps_for(const std::string& dataset) {
  if (dataset == "digits") return 0.3f;
  if (dataset == "fashion") return 0.2f;
  SATD_EXPECT(false, "unknown dataset: " + dataset);
  return 0.0f;
}

ExperimentEnv ExperimentEnv::from_env() {
  ExperimentEnv env;
  const std::string scale = env_string("SATD_SCALE", "fast");
  if (scale == "paper") {
    // Still far below 60k MNIST, but large enough that accuracies have
    // ~1% resolution; expect tens of minutes of total bench time.
    env.train_size = 4000;
    env.test_size = 1000;
    env.epochs = 40;
  } else if (scale == "smoke") {
    env.train_size = 200;
    env.test_size = 100;
    env.epochs = 6;
  } else {
    SATD_EXPECT(scale == "fast", "SATD_SCALE must be fast|paper|smoke");
  }
  env.train_size = env_size("SATD_TRAIN_SIZE", env.train_size);
  env.test_size = env_size("SATD_TEST_SIZE", env.test_size);
  env.epochs = env_size("SATD_EPOCHS", env.epochs);
  env.batch_size = env_size("SATD_BATCH", env.batch_size);
  env.seed = env_size("SATD_SEED", env.seed);
  env.model_spec = env_string("SATD_MODEL", env.model_spec);
  env.cache_dir = env_string("SATD_CACHE_DIR", env.cache_dir);
  return env;
}

data::SyntheticConfig ExperimentEnv::dataset_config() const {
  data::SyntheticConfig cfg;
  cfg.train_size = train_size;
  cfg.test_size = test_size;
  cfg.seed = seed;
  return cfg;
}

core::TrainConfig ExperimentEnv::train_config(const std::string& dataset) const {
  core::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = batch_size;
  cfg.learning_rate = learning_rate;
  cfg.seed = seed;
  cfg.eps = eps_for(dataset);
  // The paper resets every 20 epochs; keep that when the run is long
  // enough, otherwise scale down so at least one mid-run reset happens.
  cfg.reset_period = epochs >= 30 ? 20 : (epochs / 2 > 0 ? epochs / 2 : 1);
  return cfg;
}

std::string ExperimentEnv::describe() const {
  std::ostringstream ss;
  ss << "train=" << train_size << " test=" << test_size
     << " epochs=" << epochs << " batch=" << batch_size << " model="
     << model_spec << " seed=" << seed;
  return ss.str();
}

}  // namespace satd::metrics
