// Shared bench environment: one place that decides workload scale.
//
// The paper trained on full MNIST/Fashion-MNIST on a GPU; this
// reproduction runs on whatever CPU is present, so every bench reads its
// scale from here. Defaults reproduce the result shapes in a few minutes
// on a single core; set SATD_SCALE=paper for a larger run, or override
// individual knobs (SATD_TRAIN_SIZE, SATD_TEST_SIZE, SATD_EPOCHS,
// SATD_SEED, SATD_MODEL, SATD_CACHE_DIR).
#pragma once

#include <cstdint>
#include <string>

#include "core/trainer.h"
#include "data/synthetic.h"

namespace satd::metrics {

/// Resolved experiment-scale knobs.
struct ExperimentEnv {
  std::size_t train_size = 1000;
  std::size_t test_size = 400;
  std::size_t epochs = 30;
  std::size_t batch_size = 32;
  std::uint64_t seed = 42;
  std::string model_spec = "cnn_small";
  std::string cache_dir = "bench_cache";
  double learning_rate = 1e-3;

  /// Per-dataset attack budget, per the paper: 0.3 digits, 0.2 fashion.
  static float eps_for(const std::string& dataset);

  /// Reads the environment (see file comment) and returns the knobs.
  static ExperimentEnv from_env();

  /// Synthetic-dataset config for this scale.
  data::SyntheticConfig dataset_config() const;

  /// Baseline TrainConfig for this scale and dataset (method knobs are
  /// left at their defaults; callers override as needed).
  core::TrainConfig train_config(const std::string& dataset) const;

  /// One-line description for bench headers.
  std::string describe() const;
};

}  // namespace satd::metrics
