// Trained-model cache shared by the benches.
//
// Several benches evaluate the same trained classifiers (Fig 1 and Fig 2
// share all four; Table I reuses three of them). Training dominates bench
// time, so trained models are cached on disk under a key derived from
// every input that affects the result (method, dataset, scale, seed,
// model spec). A cache entry is a model file plus a sidecar with the
// training timings, so Table I's time-per-epoch column survives a cache
// hit. Delete the cache directory to force retraining.
//
// Fault tolerance: entries are written atomically with checksum framing
// (common/durable_io). A corrupt, truncated or shape-mismatched entry
// detected at load is quarantined (renamed `*.corrupt`, logged at warn)
// and the model is retrained, so one damaged file never aborts a bench
// run. Delete `*.corrupt` files once inspected — they are never read.
#pragma once

#include <functional>
#include <string>

#include "core/trainer.h"
#include "nn/sequential.h"

namespace satd::metrics {

/// A cached (or freshly trained) model together with its training report.
struct CachedModel {
  nn::Sequential model;
  core::TrainReport report;
  bool from_cache = false;
};

/// Everything that identifies a training run.
struct ModelKey {
  std::string method;    // trainer factory name
  std::string dataset;   // "digits" | "fashion"
  std::string model_spec;
  std::size_t train_size = 0;
  std::size_t epochs = 0;
  std::size_t batch_size = 0;
  std::uint64_t seed = 0;
  float eps = 0.0f;
  std::size_t bim_iterations = 0;   // 0 when not applicable
  std::size_t reset_period = 0;     // 0 when not applicable
  float step_fraction = 0.0f;       // 0 when not applicable

  /// Stable filename stem, e.g. "digits_bim_adv_n10_t1000_e30_s42_9f2c".
  std::string stem() const;
};

/// Returns the cached model if present and intact, otherwise builds the
/// architecture, runs `train` on it, and stores model + report.
/// `train` receives the freshly initialized model and must return the
/// training report. A damaged cache entry is quarantined as `*.corrupt`
/// and treated as a miss (retrain), never as a fatal error.
CachedModel train_or_load(
    const std::string& cache_dir, const ModelKey& key,
    const std::function<core::TrainReport(nn::Sequential&)>& train);

/// Writes / reads the sidecar report file (exposed for tests). Writing
/// is atomic; reading throws durable::IoError when the file cannot be
/// opened and durable::CorruptFileError when malformed or truncated.
void write_report_file(const std::string& path,
                       const core::TrainReport& report);
core::TrainReport read_report_file(const std::string& path);

}  // namespace satd::metrics
