#include "metrics/model_cache.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/contract.h"
#include "common/durable_io.h"
#include "common/log.h"
#include "common/rng.h"
#include "nn/model_io.h"
#include "nn/zoo.h"

namespace satd::metrics {

namespace fs = std::filesystem;

std::string ModelKey::stem() const {
  // Human-readable prefix + a hash of every field so near-misses (e.g. a
  // different eps) can never collide.
  std::ostringstream ss;
  ss << dataset << "_" << method;
  if (bim_iterations > 0) ss << "_n" << bim_iterations;
  ss << "_t" << train_size << "_e" << epochs << "_s" << seed;
  std::uint64_t h = 0x5AD15EEDULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h = splitmix64(h);
  };
  for (char c : method) mix(static_cast<std::uint64_t>(c));
  for (char c : dataset) mix(static_cast<std::uint64_t>(c));
  for (char c : model_spec) mix(static_cast<std::uint64_t>(c));
  mix(train_size);
  mix(epochs);
  mix(batch_size);
  mix(seed);
  mix(static_cast<std::uint64_t>(eps * 1e6f));
  mix(bim_iterations);
  mix(reset_period);
  mix(static_cast<std::uint64_t>(step_fraction * 1e6f));
  ss << "_" << std::hex << std::setw(8) << std::setfill('0')
     << static_cast<std::uint32_t>(h & 0xFFFFFFFFu);
  return ss.str();
}

void write_report_file(const std::string& path,
                       const core::TrainReport& report) {
  // Text sidecar, but written atomically so a crash mid-save cannot
  // leave a half-written report next to a good model file.
  std::ostringstream os;
  os << "method " << report.method << "\n";
  os << "epochs " << report.epochs.size() << "\n";
  os << std::setprecision(9);
  for (const auto& e : report.epochs) {
    os << e.epoch << " " << e.mean_loss << " " << e.seconds << "\n";
  }
  os << "divergences " << report.divergence_events.size() << "\n";
  for (const auto& d : report.divergence_events) {
    os << d.epoch << " " << d.attempt << " " << d.loss << " " << d.reason
       << "\n";
  }
  durable::atomic_write_file(path, os.str());
}

core::TrainReport read_report_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw durable::IoError("cannot read report: " + path);
  core::TrainReport report;
  std::string tag;
  is >> tag >> report.method;
  if (tag != "method") {
    throw durable::CorruptFileError("malformed report file: " + path);
  }
  std::size_t count = 0;
  is >> tag >> count;
  if (tag != "epochs") {
    throw durable::CorruptFileError("malformed report file: " + path);
  }
  report.epochs.resize(count);
  for (auto& e : report.epochs) {
    is >> e.epoch >> e.mean_loss >> e.seconds;
  }
  if (!is) throw durable::CorruptFileError("truncated report file: " + path);
  // Divergence section: absent in pre-fault-tolerance sidecars.
  if (is >> tag) {
    if (tag != "divergences") {
      throw durable::CorruptFileError("malformed report file: " + path);
    }
    std::size_t events = 0;
    is >> events;
    report.divergence_events.resize(events);
    for (auto& d : report.divergence_events) {
      is >> d.epoch >> d.attempt >> d.loss >> d.reason;
    }
    if (!is) throw durable::CorruptFileError("truncated report file: " + path);
  }
  return report;
}

namespace {

/// Moves a damaged cache file aside as `<path>.corrupt` (best effort —
/// if even the rename fails, the file is deleted so the retrain can
/// overwrite it).
void quarantine_file(const std::string& path, const std::string& reason) {
  std::error_code ec;
  const std::string target = path + ".corrupt";
  fs::rename(path, target, ec);
  if (ec) {
    fs::remove(path, ec);
    log::warn() << "cache quarantine: removed " << path << " (" << reason
                << "; rename failed: " << ec.message() << ")";
    return;
  }
  log::warn() << "cache quarantine: " << path << " -> " << target << " ("
              << reason << ")";
}

}  // namespace

CachedModel train_or_load(
    const std::string& cache_dir, const ModelKey& key,
    const std::function<core::TrainReport(nn::Sequential&)>& train) {
  SATD_EXPECT(nn::zoo::is_known_spec(key.model_spec),
              "unknown model spec: " + key.model_spec);
  fs::create_directories(cache_dir);
  const std::string stem = (fs::path(cache_dir) / key.stem()).string();
  const std::string model_path = stem + ".model";
  const std::string report_path = stem + ".report";

  CachedModel out;
  if (fs::exists(model_path) && fs::exists(report_path)) {
    // Graceful degradation: a corrupt, truncated or mismatched entry is
    // quarantined and the model retrained instead of aborting the bench.
    try {
      out.model = nn::load_model_file(model_path);
      out.report = read_report_file(report_path);
      out.from_cache = true;
      log::info() << "cache hit: " << model_path;
      return out;
    } catch (const durable::CorruptFileError& e) {
      // Covers SerializeError too (bad magic, truncation, shape or
      // checksum mismatch anywhere in the entry).
      quarantine_file(model_path, e.what());
      quarantine_file(report_path, e.what());
    } catch (const durable::IoError& e) {
      log::warn() << "cache entry unreadable, retraining: " << e.what();
    }
  }

  log::info() << "cache miss, training: " << key.stem();
  Rng init_rng(key.seed);
  out.model = nn::zoo::build(key.model_spec, init_rng);
  out.report = train(out.model);
  nn::save_model_file(model_path, out.model, key.model_spec);
  write_report_file(report_path, out.report);
  return out;
}

}  // namespace satd::metrics
