#include "metrics/model_cache.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/contract.h"
#include "common/log.h"
#include "common/rng.h"
#include "nn/model_io.h"
#include "nn/zoo.h"

namespace satd::metrics {

namespace fs = std::filesystem;

std::string ModelKey::stem() const {
  // Human-readable prefix + a hash of every field so near-misses (e.g. a
  // different eps) can never collide.
  std::ostringstream ss;
  ss << dataset << "_" << method;
  if (bim_iterations > 0) ss << "_n" << bim_iterations;
  ss << "_t" << train_size << "_e" << epochs << "_s" << seed;
  std::uint64_t h = 0x5AD15EEDULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h = splitmix64(h);
  };
  for (char c : method) mix(static_cast<std::uint64_t>(c));
  for (char c : dataset) mix(static_cast<std::uint64_t>(c));
  for (char c : model_spec) mix(static_cast<std::uint64_t>(c));
  mix(train_size);
  mix(epochs);
  mix(batch_size);
  mix(seed);
  mix(static_cast<std::uint64_t>(eps * 1e6f));
  mix(bim_iterations);
  mix(reset_period);
  mix(static_cast<std::uint64_t>(step_fraction * 1e6f));
  ss << "_" << std::hex << std::setw(8) << std::setfill('0')
     << static_cast<std::uint32_t>(h & 0xFFFFFFFFu);
  return ss.str();
}

void write_report_file(const std::string& path,
                       const core::TrainReport& report) {
  std::ofstream os(path);
  SATD_EXPECT(static_cast<bool>(os), "cannot write report: " + path);
  os << "method " << report.method << "\n";
  os << "epochs " << report.epochs.size() << "\n";
  os << std::setprecision(9);
  for (const auto& e : report.epochs) {
    os << e.epoch << " " << e.mean_loss << " " << e.seconds << "\n";
  }
}

core::TrainReport read_report_file(const std::string& path) {
  std::ifstream is(path);
  SATD_EXPECT(static_cast<bool>(is), "cannot read report: " + path);
  core::TrainReport report;
  std::string tag;
  is >> tag >> report.method;
  SATD_EXPECT(tag == "method", "malformed report file: " + path);
  std::size_t count = 0;
  is >> tag >> count;
  SATD_EXPECT(tag == "epochs", "malformed report file: " + path);
  report.epochs.resize(count);
  for (auto& e : report.epochs) {
    is >> e.epoch >> e.mean_loss >> e.seconds;
  }
  SATD_EXPECT(static_cast<bool>(is), "truncated report file: " + path);
  return report;
}

CachedModel train_or_load(
    const std::string& cache_dir, const ModelKey& key,
    const std::function<core::TrainReport(nn::Sequential&)>& train) {
  SATD_EXPECT(nn::zoo::is_known_spec(key.model_spec),
              "unknown model spec: " + key.model_spec);
  fs::create_directories(cache_dir);
  const std::string stem = (fs::path(cache_dir) / key.stem()).string();
  const std::string model_path = stem + ".model";
  const std::string report_path = stem + ".report";

  CachedModel out;
  if (fs::exists(model_path) && fs::exists(report_path)) {
    log::info() << "cache hit: " << model_path;
    out.model = nn::load_model_file(model_path);
    out.report = read_report_file(report_path);
    out.from_cache = true;
    return out;
  }

  log::info() << "cache miss, training: " << key.stem();
  Rng init_rng(key.seed);
  out.model = nn::zoo::build(key.model_spec, init_rng);
  out.report = train(out.model);
  nn::save_model_file(model_path, out.model, key.model_spec);
  write_report_file(report_path, out.report);
  return out;
}

}  // namespace satd::metrics
