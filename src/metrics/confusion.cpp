#include "metrics/confusion.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/contract.h"
#include "metrics/evaluator.h"

namespace satd::metrics {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : k_(num_classes), counts_(num_classes * num_classes, 0) {
  SATD_EXPECT(num_classes > 0, "num_classes must be positive");
}

void ConfusionMatrix::record(std::size_t truth, std::size_t predicted) {
  SATD_EXPECT(truth < k_ && predicted < k_, "class out of range");
  ++counts_[truth * k_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  SATD_EXPECT(truth < k_ && predicted < k_, "class out of range");
  return counts_[truth * k_ + predicted];
}

float ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0f;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < k_; ++i) diag += counts_[i * k_ + i];
  return static_cast<float>(diag) / static_cast<float>(total_);
}

float ConfusionMatrix::recall(std::size_t cls) const {
  SATD_EXPECT(cls < k_, "class out of range");
  std::size_t row = 0;
  for (std::size_t j = 0; j < k_; ++j) row += counts_[cls * k_ + j];
  if (row == 0) return 0.0f;
  return static_cast<float>(counts_[cls * k_ + cls]) /
         static_cast<float>(row);
}

float ConfusionMatrix::precision(std::size_t cls) const {
  SATD_EXPECT(cls < k_, "class out of range");
  std::size_t col = 0;
  for (std::size_t i = 0; i < k_; ++i) col += counts_[i * k_ + cls];
  if (col == 0) return 0.0f;
  return static_cast<float>(counts_[cls * k_ + cls]) /
         static_cast<float>(col);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream ss;
  ss << "true\\pred";
  for (std::size_t j = 0; j < k_; ++j) ss << std::setw(6) << j;
  ss << "\n";
  for (std::size_t i = 0; i < k_; ++i) {
    ss << std::setw(9) << i;
    for (std::size_t j = 0; j < k_; ++j) {
      ss << std::setw(6) << counts_[i * k_ + j];
    }
    ss << "\n";
  }
  return ss.str();
}

ConfusionMatrix confusion_on(nn::Sequential& model, const data::Dataset& test,
                             std::size_t batch_size) {
  ConfusionMatrix cm(test.num_classes);
  Tensor logits;
  std::vector<std::size_t> preds;
  predict_into(model, test.images, batch_size, logits, preds);
  for (std::size_t i = 0; i < test.size(); ++i) {
    cm.record(test.labels[i], preds[i]);
  }
  return cm;
}

}  // namespace satd::metrics
