#include "metrics/confusion.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::metrics {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : k_(num_classes), counts_(num_classes * num_classes, 0) {
  SATD_EXPECT(num_classes > 0, "num_classes must be positive");
}

void ConfusionMatrix::record(std::size_t truth, std::size_t predicted) {
  SATD_EXPECT(truth < k_ && predicted < k_, "class out of range");
  ++counts_[truth * k_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  SATD_EXPECT(truth < k_ && predicted < k_, "class out of range");
  return counts_[truth * k_ + predicted];
}

float ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0f;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < k_; ++i) diag += counts_[i * k_ + i];
  return static_cast<float>(diag) / static_cast<float>(total_);
}

float ConfusionMatrix::recall(std::size_t cls) const {
  SATD_EXPECT(cls < k_, "class out of range");
  std::size_t row = 0;
  for (std::size_t j = 0; j < k_; ++j) row += counts_[cls * k_ + j];
  if (row == 0) return 0.0f;
  return static_cast<float>(counts_[cls * k_ + cls]) /
         static_cast<float>(row);
}

float ConfusionMatrix::precision(std::size_t cls) const {
  SATD_EXPECT(cls < k_, "class out of range");
  std::size_t col = 0;
  for (std::size_t i = 0; i < k_; ++i) col += counts_[i * k_ + cls];
  if (col == 0) return 0.0f;
  return static_cast<float>(counts_[cls * k_ + cls]) /
         static_cast<float>(col);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream ss;
  ss << "true\\pred";
  for (std::size_t j = 0; j < k_; ++j) ss << std::setw(6) << j;
  ss << "\n";
  for (std::size_t i = 0; i < k_; ++i) {
    ss << std::setw(9) << i;
    for (std::size_t j = 0; j < k_; ++j) {
      ss << std::setw(6) << counts_[i * k_ + j];
    }
    ss << "\n";
  }
  return ss.str();
}

ConfusionMatrix confusion_on(nn::Sequential& model, const data::Dataset& test,
                             std::size_t batch_size) {
  SATD_EXPECT(batch_size > 0, "batch size must be positive");
  ConfusionMatrix cm(test.num_classes);
  const std::size_t n = test.size();
  const auto& dims = test.images.shape().dims();
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, n);
    Tensor images(Shape{end - begin, dims[1], dims[2], dims[3]});
    for (std::size_t i = begin; i < end; ++i) {
      images.set_row(i - begin, test.images.slice_row(i));
    }
    const Tensor logits = model.forward(images, /*training=*/false);
    const auto preds = ops::argmax_rows(logits);
    for (std::size_t i = begin; i < end; ++i) {
      cm.record(test.labels[i], preds[i - begin]);
    }
  }
  return cm;
}

}  // namespace satd::metrics
