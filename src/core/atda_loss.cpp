#include "core/atda_loss.h"

#include <cmath>
#include <limits>

#include "common/contract.h"
#include "tensor/ops.h"
#include "tensor/stats.h"

namespace satd::core {

namespace {

/// Adjoint of row-centering: g <- g - colmean(g).
void center_adjoint(Tensor& g) {
  const std::size_t n = g.shape()[0];
  const std::size_t d = g.shape()[1];
  Tensor colsum(Shape{d});
  ops::sum_rows(g, colsum);
  float* pg = g.raw();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      pg[i * d + j] -= colsum[j] / static_cast<float>(n);
    }
  }
}

/// CORAL value and the gradient contribution (scaled by `weight`) added
/// into grad_a / grad_c.
float coral_term(const Tensor& a, const Tensor& c, float weight,
                 Tensor& grad_a, Tensor& grad_c) {
  const std::size_t na = a.shape()[0];
  const std::size_t nc = c.shape()[0];
  const std::size_t d = a.shape()[1];
  const Tensor ca = stats::covariance(a);
  const Tensor cc = stats::covariance(c);
  Tensor diff = ops::sub(ca, cc);
  const float value =
      ops::l1_norm(diff) / static_cast<float>(d * d);
  // S = sign(Ca - Cc) is symmetric because both covariances are.
  Tensor s = ops::sign(diff);
  const float scale = weight / static_cast<float>(d * d);
  // d/dXa [ sum_{jk} S_jk * (Xa_c^T Xa_c)_jk / (na-1) ]
  //   = Xa_c (S + S^T) / (na-1) = 2 Xa_c S / (na-1), then the centering
  // adjoint; symmetric S lets us use one matmul.
  {
    Tensor a_centered = stats::center_rows(a);
    Tensor g = ops::matmul(a_centered, s);
    ops::scale(g, 2.0f / static_cast<float>(na - 1), g);
    center_adjoint(g);
    ops::axpy(scale, g, grad_a);
  }
  {
    Tensor c_centered = stats::center_rows(c);
    Tensor g = ops::matmul(c_centered, s);
    ops::scale(g, -2.0f / static_cast<float>(nc - 1), g);
    center_adjoint(g);
    ops::axpy(scale, g, grad_c);
  }
  return value;
}

/// MMD value and gradient contribution.
float mmd_term(const Tensor& a, const Tensor& c, float weight, Tensor& grad_a,
               Tensor& grad_c) {
  const std::size_t na = a.shape()[0];
  const std::size_t nc = c.shape()[0];
  const std::size_t d = a.shape()[1];
  const Tensor ma = stats::column_mean(a);
  const Tensor mc = stats::column_mean(c);
  float value = 0.0f;
  float* pga = grad_a.raw();
  float* pgc = grad_c.raw();
  for (std::size_t j = 0; j < d; ++j) {
    const float delta = ma[j] - mc[j];
    value += std::fabs(delta);
    const float s = (delta > 0.0f) ? 1.0f : (delta < 0.0f ? -1.0f : 0.0f);
    const float ga = weight * s / (static_cast<float>(na) * d);
    const float gc = -weight * s / (static_cast<float>(nc) * d);
    for (std::size_t i = 0; i < na; ++i) pga[i * d + j] += ga;
    for (std::size_t i = 0; i < nc; ++i) pgc[i * d + j] += gc;
  }
  return value / static_cast<float>(d);
}

/// Margin (supervised DA) value and gradient for one logit batch. The
/// per-row hinge is max(0, d_y - min_{k!=y} d_k + margin) with
/// d_k = ||h - c_k||_1; the value is averaged over `total_rows` so clean
/// and adversarial batches contribute one combined mean.
float margin_term(const Tensor& logits, std::span<const std::size_t> labels,
                  const Tensor& centers, float margin, float weight,
                  std::size_t total_rows, Tensor& grad) {
  const std::size_t n = logits.shape()[0];
  const std::size_t d = logits.shape()[1];
  const std::size_t k = centers.shape()[0];
  const float* ph = logits.raw();
  const float* pc = centers.raw();
  float* pg = grad.raw();
  const float inv = 1.0f / static_cast<float>(total_rows);
  float value = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float* h = ph + i * d;
    const std::size_t y = labels[i];
    float dist_y = 0.0f;
    float best_other = std::numeric_limits<float>::max();
    std::size_t best_k = k;
    for (std::size_t cls = 0; cls < k; ++cls) {
      float dist = 0.0f;
      const float* c = pc + cls * d;
      for (std::size_t j = 0; j < d; ++j) dist += std::fabs(h[j] - c[j]);
      if (cls == y) {
        dist_y = dist;
      } else if (dist < best_other) {
        best_other = dist;
        best_k = cls;
      }
    }
    const float hinge = dist_y - best_other + margin;
    if (hinge <= 0.0f || best_k == k) continue;
    value += hinge * inv;
    const float* cy = pc + y * d;
    const float* ck = pc + best_k * d;
    float* grow = pg + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      const float dy = h[j] - cy[j];
      const float dk = h[j] - ck[j];
      const float sy = (dy > 0.0f) ? 1.0f : (dy < 0.0f ? -1.0f : 0.0f);
      const float sk = (dk > 0.0f) ? 1.0f : (dk < 0.0f ? -1.0f : 0.0f);
      grow[j] += weight * inv * (sy - sk);
    }
  }
  return value;
}

}  // namespace

AtdaLossResult atda_domain_loss(const Tensor& logits_clean,
                                const Tensor& logits_adv,
                                std::span<const std::size_t> labels,
                                const Tensor& centers,
                                const AtdaLossWeights& weights) {
  SATD_EXPECT(logits_clean.shape().rank() == 2 &&
                  logits_adv.shape().rank() == 2,
              "logits must be [N, D]");
  SATD_EXPECT(logits_clean.shape() == logits_adv.shape(),
              "clean/adv logit shape mismatch");
  SATD_EXPECT(logits_clean.shape()[0] == labels.size(),
              "label count mismatch");
  SATD_EXPECT(logits_clean.shape()[0] >= 2,
              "ATDA loss needs a batch of at least 2 (covariance)");
  SATD_EXPECT(centers.shape().rank() == 2 &&
                  centers.shape()[1] == logits_clean.shape()[1],
              "centers must be [num_classes, D]");

  AtdaLossResult res;
  res.grad_clean = Tensor(logits_clean.shape());
  res.grad_adv = Tensor(logits_adv.shape());

  res.coral = coral_term(logits_adv, logits_clean, weights.lambda_coral,
                         res.grad_adv, res.grad_clean);
  res.mmd = mmd_term(logits_adv, logits_clean, weights.lambda_mmd,
                     res.grad_adv, res.grad_clean);
  const std::size_t total_rows = 2 * labels.size();
  res.margin =
      margin_term(logits_clean, labels, centers, weights.margin,
                  weights.lambda_margin, total_rows, res.grad_clean) +
      margin_term(logits_adv, labels, centers, weights.margin,
                  weights.lambda_margin, total_rows, res.grad_adv);
  res.total = weights.lambda_coral * res.coral + weights.lambda_mmd * res.mmd +
              weights.lambda_margin * res.margin;
  return res;
}

void update_class_centers(Tensor& centers, const Tensor& logits,
                          std::span<const std::size_t> labels, float alpha) {
  SATD_EXPECT(centers.shape().rank() == 2, "centers must be [K, D]");
  SATD_EXPECT(logits.shape().rank() == 2 &&
                  logits.shape()[1] == centers.shape()[1],
              "logit/center width mismatch");
  SATD_EXPECT(logits.shape()[0] == labels.size(), "label count mismatch");
  SATD_EXPECT(alpha > 0.0f && alpha <= 1.0f, "alpha must be in (0,1]");
  const std::size_t k = centers.shape()[0];
  const std::size_t d = centers.shape()[1];
  std::vector<double> acc(k * d, 0.0);
  std::vector<std::size_t> count(k, 0);
  const float* ph = logits.raw();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    SATD_EXPECT(labels[i] < k, "label out of range");
    ++count[labels[i]];
    for (std::size_t j = 0; j < d; ++j) {
      acc[labels[i] * d + j] += ph[i * d + j];
    }
  }
  float* pc = centers.raw();
  for (std::size_t cls = 0; cls < k; ++cls) {
    if (count[cls] == 0) continue;
    for (std::size_t j = 0; j < d; ++j) {
      const float mean =
          static_cast<float>(acc[cls * d + j] / static_cast<double>(count[cls]));
      pc[cls * d + j] = (1.0f - alpha) * pc[cls * d + j] + alpha * mean;
    }
  }
}

}  // namespace satd::core
