// PGD adversarial training (Madry et al. 2017) — extension beyond the
// paper's evaluation.
//
// Identical to Iter-Adv except the inner attack starts from a uniformly
// random point in the eps-ball, which prevents the defense from merely
// flattening the loss along the deterministic BIM trajectory. The paper
// cites Madry's formulation as the canonical Iter-Adv; this trainer lets
// the extension benches compare the Proposed method against it directly.
#pragma once

#include "core/trainer.h"

namespace satd::core {

/// Trains on a clean + PGD(config.bim_iterations) mixture with random
/// restarts per batch.
class PgdAdvTrainer : public Trainer {
 public:
  PgdAdvTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override;

 protected:
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
  void save_method_state(std::ostream& os) const override;
  void load_method_state(std::istream& is) override;

 private:
  Rng attack_rng_;
};

}  // namespace satd::core
