#include "core/trainer.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/contract.h"
#include "common/durable_io.h"
#include "common/log.h"
#include "nn/loss.h"
#include "tensor/serialize.h"

namespace satd::core {

double TrainReport::mean_epoch_seconds() const {
  if (epochs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& e : epochs) acc += e.seconds;
  return acc / static_cast<double>(epochs.size());
}

double TrainReport::total_seconds() const {
  double acc = 0.0;
  for (const auto& e : epochs) acc += e.seconds;
  return acc;
}

float TrainReport::final_loss() const {
  return epochs.empty() ? 0.0f : epochs.back().mean_loss;
}

Trainer::Trainer(nn::Sequential& model, TrainConfig config)
    : model_(model),
      config_(config),
      rng_(config.seed),
      shuffle_rng_(rng_.fork(0x5EED)) {
  SATD_EXPECT(config.epochs > 0, "epochs must be positive");
  SATD_EXPECT(config.batch_size > 0, "batch size must be positive");
  SATD_EXPECT(config.eps >= 0.0f, "eps must be non-negative");
  SATD_EXPECT(config.adv_mix >= 0.0f && config.adv_mix <= 1.0f,
              "adv_mix must be in [0,1]");
  SATD_EXPECT(config.label_smoothing >= 0.0f && config.label_smoothing < 1.0f,
              "label_smoothing must be in [0,1)");
  optimizer_ = std::make_unique<nn::Adam>(config.learning_rate);
}

void Trainer::on_fit_begin(const data::Dataset& /*train*/) {}
void Trainer::on_resume(const data::Dataset& /*train*/) {}
void Trainer::on_epoch_begin(std::size_t /*epoch*/) {}
void Trainer::save_method_state(std::ostream& /*os*/) const {}
void Trainer::load_method_state(std::istream& /*is*/) {}

float Trainer::accumulate_loss_gradient(const Tensor& x,
                                        std::span<const std::size_t> labels,
                                        float weight) {
  model_.forward_into(x, logits_scratch_, /*training=*/true);
  if (config_.label_smoothing > 0.0f) {
    nn::softmax_cross_entropy_smoothed_into(
        logits_scratch_, labels, config_.label_smoothing, loss_scratch_);
  } else {
    nn::softmax_cross_entropy_into(logits_scratch_, labels, loss_scratch_);
  }
  if (weight != 1.0f) {
    for (float& g : loss_scratch_.grad_logits.data()) g *= weight;
  }
  model_.backward_into(loss_scratch_.grad_logits, grad_in_scratch_);
  return loss_scratch_.value;
}

void Trainer::apply_step() {
  optimizer_->step(model_.parameters(), model_.gradients());
  model_.zero_grad();
}

float Trainer::train_batch(const data::Batch& batch) {
  make_adversarial_batch(batch, adv_scratch_);
  model_.zero_grad();
  float loss = 0.0f;
  if (adv_scratch_.empty()) {
    loss = accumulate_loss_gradient(batch.images, batch.labels, 1.0f);
  } else {
    const float mix = config_.adv_mix;
    // Mixture loss L = (1-mix)*L_clean + mix*L_adv. The adversarial
    // backward runs last purely by convention; each accumulates into the
    // same gradient buffers.
    const float clean_loss =
        accumulate_loss_gradient(batch.images, batch.labels, 1.0f - mix);
    const float adv_loss =
        accumulate_loss_gradient(adv_scratch_, batch.labels, mix);
    loss = (1.0f - mix) * clean_loss + mix * adv_loss;
  }
  apply_step();
  return loss;
}

const char* Trainer::epoch_health_verdict(float mean_loss,
                                          float last_good_loss) const {
  if (!std::isfinite(mean_loss)) return "non_finite_loss";
  for (Tensor* p : model_.parameters()) {
    for (float v : p->data()) {
      if (!std::isfinite(v)) return "non_finite_parameter";
    }
  }
  if (last_good_loss >= 0.0f &&
      mean_loss >
          config_.loss_spike_factor * std::max(last_good_loss, 0.1f)) {
    return "loss_spike";
  }
  return nullptr;
}

TrainReport Trainer::fit(const data::Dataset& train, EpochCallback callback,
                         std::size_t start_epoch) {
  train.validate();
  SATD_EXPECT(start_epoch <= config_.epochs, "start_epoch beyond run length");
  TrainReport report;
  report.method = name();
  if (start_epoch == 0) {
    on_fit_begin(train);
  } else {
    on_resume(train);
  }
  data::Batcher batcher(train, config_.batch_size);

  // Last-good snapshot for divergence rollback and graceful shutdown:
  // the full checkpoint payload (params, optimizer moments, both RNG
  // streams, method state) serialized in memory at each epoch boundary.
  // Restoring it and replaying the epoch is deterministic because the
  // RNG streams rewind with it.
  const bool keep_snapshot = config_.health_checks ||
                             static_cast<bool>(stop_check_) ||
                             static_cast<bool>(epoch_health_hook_);
  std::string snapshot;
  auto take_snapshot = [&](std::size_t next_epoch) {
    if (!keep_snapshot) return;
    std::ostringstream ss(std::ios::binary);
    save_checkpoint(ss, next_epoch);
    snapshot = ss.str();
  };
  auto restore_snapshot = [&] {
    std::istringstream ss(snapshot, std::ios::binary);
    load_checkpoint(ss);
  };
  take_snapshot(start_epoch);

  float last_good_loss = -1.0f;  // <0 = no baseline yet
  for (std::size_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    const double base_lr = optimizer_->learning_rate();
    std::size_t attempt = 0;
    EpochStats stats;
    for (;;) {
      Stopwatch watch;
      on_epoch_begin(epoch);
      if (epoch_fault_hook_) epoch_fault_hook_(epoch, attempt, model_);
      batcher.begin_epoch(shuffle_rng_);
      double loss_acc = 0.0;
      const std::size_t batches = batcher.batch_count();
      std::size_t done = 0;
      for (; done < batches; ++done) {
        if (stop_check_ && stop_check_()) break;
        const data::Batch batch = batcher.make_batch(done);
        loss_acc += train_batch(batch);
      }
      if (done < batches) {
        // Graceful shutdown: discard the partial epoch so the trainer
        // sits exactly at the last completed epoch boundary, where a
        // checkpoint is bit-identical to an uninterrupted run's.
        restore_snapshot();
        optimizer_->set_learning_rate(base_lr);
        report.stopped_early = true;
        log::info() << name() << " stop requested during epoch " << epoch
                    << "; rolled back to the epoch boundary";
        return report;
      }
      stats.epoch = epoch;
      stats.mean_loss =
          static_cast<float>(loss_acc / static_cast<double>(batches));
      stats.seconds = watch.seconds();
      const char* verdict =
          config_.health_checks
              ? epoch_health_verdict(stats.mean_loss, last_good_loss)
              : nullptr;
      if (verdict == nullptr && epoch_health_hook_) {
        verdict =
            epoch_health_hook_(epoch, attempt, model_, stats.mean_loss);
      }
      if (verdict == nullptr) break;  // healthy epoch
      report.divergence_events.push_back(
          {epoch, attempt, stats.mean_loss, verdict});
      ++attempt;
      if (attempt > config_.divergence_max_retries) {
        optimizer_->set_learning_rate(base_lr);
        throw TrainingDivergedError(
            name() + " diverged at epoch " + std::to_string(epoch) + " (" +
            verdict + ", loss " + std::to_string(stats.mean_loss) +
            ") and did not recover after " +
            std::to_string(config_.divergence_max_retries) + " retries");
      }
      restore_snapshot();
      const double retry_lr = base_lr * std::pow(0.5, attempt);
      optimizer_->set_learning_rate(retry_lr);
      log::warn() << name() << " epoch " << epoch << " diverged (" << verdict
                  << ", loss " << stats.mean_loss
                  << "); rolled back, retrying at lr " << retry_lr;
    }
    optimizer_->set_learning_rate(base_lr);  // undo any retry halving
    last_good_loss = stats.mean_loss;
    report.epochs.push_back(stats);
    take_snapshot(epoch + 1);
    if (callback) callback(stats);
    log::debug() << name() << " epoch " << epoch << " loss "
                 << stats.mean_loss << " (" << stats.seconds << "s)";
  }
  return report;
}

namespace {
constexpr char kCheckpointMagic[] = "SATDCKP1";
}

void Trainer::save_checkpoint(std::ostream& os, std::size_t next_epoch) {
  SATD_EXPECT(next_epoch <= config_.epochs, "next_epoch beyond run length");
  os.write(kCheckpointMagic, 8);
  write_string(os, name());
  write_u64(os, next_epoch);
  rng_.save(os);
  shuffle_rng_.save(os);
  const auto params = model_.parameters();
  write_u64(os, params.size());
  for (Tensor* p : params) write_tensor(os, *p);
  optimizer_->save_state(os);
  save_method_state(os);
}

void Trainer::save_checkpoint_file(const std::string& path,
                                   std::size_t next_epoch) {
  // Atomic + checksummed (common/durable_io): an interrupted save leaves
  // any previous checkpoint at `path` intact; IoError carries path+errno.
  durable::write_file_checksummed(
      path, [&](std::ostream& os) { save_checkpoint(os, next_epoch); });
}

std::size_t Trainer::load_checkpoint(std::istream& is) {
  char magic[8];
  is.read(magic, 8);
  if (!is || std::string(magic, 8) != kCheckpointMagic) {
    throw SerializeError("bad checkpoint magic");
  }
  const std::string method = read_string(is);
  if (method != name()) {
    throw SerializeError("checkpoint is for method '" + method +
                         "', trainer is '" + name() + "'");
  }
  const std::uint64_t next_epoch = read_u64(is);
  rng_.load(is);
  shuffle_rng_.load(is);
  const std::uint64_t count = read_u64(is);
  const auto params = model_.parameters();
  if (count != params.size()) {
    throw SerializeError("checkpoint parameter count mismatch");
  }
  for (Tensor* p : params) {
    Tensor t = read_tensor(is);
    if (t.shape() != p->shape()) {
      throw SerializeError("checkpoint parameter shape mismatch");
    }
    *p = std::move(t);
  }
  optimizer_->load_state(is);
  load_method_state(is);
  return static_cast<std::size_t>(next_epoch);
}

std::size_t Trainer::load_checkpoint_file(const std::string& path) {
  std::istringstream is(durable::read_file_verified(path), std::ios::binary);
  return load_checkpoint(is);
}

}  // namespace satd::core
