// ATDA domain-adaptation loss (Song et al. 2018), factored out of the
// trainer so its analytic gradients can be verified against finite
// differences in isolation.
//
// ATDA ("Adversarial Training with Domain Adaptation") treats clean and
// adversarial logit batches as two domains and adds three alignment terms
// to the usual cross-entropy:
//   * MMD   — mean(|colmean(adv) - colmean(clean)|): first-moment match.
//   * CORAL — mean(|cov(adv) - cov(clean)|): second-moment match.
//   * margin — supervised term pulling each logit vector towards its
//     class center and away from the nearest other center (L1 hinge);
//     centers are EMA-maintained outside this function and treated as
//     constants by the gradient.
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace satd::core {

/// Weights for the three domain-adaptation terms.
struct AtdaLossWeights {
  float lambda_coral = 0.5f;
  float lambda_mmd = 0.5f;
  float lambda_margin = 0.05f;
  float margin = 2.0f;
};

/// Value and logit-gradients of the weighted DA loss.
struct AtdaLossResult {
  float coral = 0.0f;   ///< unweighted CORAL term
  float mmd = 0.0f;     ///< unweighted MMD term
  float margin = 0.0f;  ///< unweighted margin term
  float total = 0.0f;   ///< weighted sum
  Tensor grad_clean;    ///< d(total)/d(logits_clean), [N, D]
  Tensor grad_adv;      ///< d(total)/d(logits_adv), [N, D]
};

/// Computes the DA loss between a clean and an adversarial logit batch.
/// Both batches must be [N, D] with N >= 2 (covariance needs it); labels
/// apply to both (row i of each batch is the same underlying example).
/// `centers` is the [num_classes, D] class-center matrix.
AtdaLossResult atda_domain_loss(const Tensor& logits_clean,
                                const Tensor& logits_adv,
                                std::span<const std::size_t> labels,
                                const Tensor& centers,
                                const AtdaLossWeights& weights);

/// EMA-updates class centers from a batch of logits:
/// c_k <- (1 - alpha) * c_k + alpha * mean(logits with label k), for every
/// class present in the batch.
void update_class_centers(Tensor& centers, const Tensor& logits,
                          std::span<const std::size_t> labels, float alpha);

}  // namespace satd::core
