#include "core/ensemble_adv_trainer.h"

#include <istream>
#include <ostream>

#include "common/contract.h"
#include "core/vanilla_trainer.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd::core {

EnsembleAdvTrainer::EnsembleAdvTrainer(nn::Sequential& model,
                                       TrainConfig config)
    : Trainer(model, config), attack_(config.eps) {
  SATD_EXPECT(config.ensemble_surrogate_count > 0,
              "ensemble training needs at least one static surrogate");
  SATD_EXPECT(config.ensemble_surrogate_epochs > 0,
              "surrogate pre-training needs at least one epoch");
  SATD_EXPECT(nn::zoo::is_known_spec(config.ensemble_surrogate_spec),
              "unknown surrogate spec: " + config.ensemble_surrogate_spec);
}

void EnsembleAdvTrainer::build_surrogates(const data::Dataset& train) {
  surrogates_.clear();
  surrogates_.reserve(config_.ensemble_surrogate_count);
  for (std::size_t i = 0; i < config_.ensemble_surrogate_count; ++i) {
    // Streams derived from (config.seed, i) only — independent of the
    // trainer's own rng_/shuffle_rng_ position, so pre-training the
    // ensemble leaves the main run's randomness untouched and a resumed
    // fit rebuilds bit-identical surrogates.
    const std::uint64_t salt =
        config_.seed ^ (0xE5B1E5EEDULL + 0x9E3779B9ULL * (i + 1));
    Rng init_rng(salt);
    nn::Sequential surrogate =
        nn::zoo::build(config_.ensemble_surrogate_spec, init_rng);
    TrainConfig scfg = config_;
    scfg.epochs = config_.ensemble_surrogate_epochs;
    scfg.seed = salt;
    VanillaTrainer pre(surrogate, scfg);
    // No stop check on purpose: surrogate pre-training is a bounded,
    // deterministic prologue; interrupting it would leave the ensemble
    // depending on when the watchdog fired.
    pre.fit(train);
    surrogates_.push_back(std::move(surrogate));
  }
}

void EnsembleAdvTrainer::on_fit_begin(const data::Dataset& train) {
  batch_counter_ = 0;
  build_surrogates(train);
}

void EnsembleAdvTrainer::on_resume(const data::Dataset& train) {
  // batch_counter_ was restored from the checkpoint; the surrogates are
  // re-derived (deterministic), not serialized.
  build_surrogates(train);
}

void EnsembleAdvTrainer::make_adversarial_batch(const data::Batch& batch,
                                                Tensor& adv) {
  const std::size_t sources = surrogates_.size() + 1;
  const std::size_t pick = static_cast<std::size_t>(batch_counter_ % sources);
  ++batch_counter_;
  nn::Sequential& source = pick == 0 ? model_ : surrogates_[pick - 1];
  attack_.perturb_into(source, batch.images, batch.labels, adv);
}

void EnsembleAdvTrainer::save_method_state(std::ostream& os) const {
  write_u64(os, batch_counter_);
}

void EnsembleAdvTrainer::load_method_state(std::istream& is) {
  batch_counter_ = read_u64(is);
}

}  // namespace satd::core
