// The paper's contribution: simplified adversarial training
// ("Proposed" in Table I; flow chart in Figure 3b).
//
// Two modifications to Iter-Adv, each justified by an empirical property
// established in Sections II-III:
//
//  1. Epoch-wise iteration (from property P2, "intermediate results
//     already reveal most blind spots"): instead of running N BIM
//     iterations inside every batch, keep ONE persistent adversarial
//     example per training image and advance it by a single gradient-sign
//     step per epoch. The BIM iteration is thereby amortized across
//     epochs — per-epoch cost drops to Single-Adv level while the
//     examples keep maturing into iterative ones.
//
//  2. Relatively large per-step perturbation (from property P1, "steps
//     below ~eps/10 only marginally help"): the per-epoch step is
//     eps * step_fraction with step_fraction = 0.1 by default, so the
//     buffered examples reach the full budget within a few epochs and
//     reveal blind spots early, mitigating the weak-example phase that
//     plain Single-Adv suffers at the start of training.
//
// Because the classifier's parameters drift over training, the buffer is
// reset to the clean images every `reset_period` epochs (20 in the
// paper), restarting the epoch-wise iteration against the current model.
#pragma once

#include "attack/attack.h"
#include "core/trainer.h"

namespace satd::core {

/// Single-step adversarial training with a persistent, epoch-advanced
/// adversarial example buffer.
class ProposedTrainer : public Trainer {
 public:
  ProposedTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override { return "Proposed"; }

  /// The buffered adversarial examples (tests inspect containment
  /// invariants; empty before fit()).
  const Tensor& adversarial_buffer() const { return buffer_; }

  /// Number of buffer resets performed so far (including the initial
  /// fill at epoch 0).
  std::size_t reset_count() const { return resets_; }

 protected:
  void on_fit_begin(const data::Dataset& train) override;
  void on_resume(const data::Dataset& train) override;
  void on_epoch_begin(std::size_t epoch) override;
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
  void save_method_state(std::ostream& os) const override;
  void load_method_state(std::istream& is) override;

 private:
  const data::Dataset* train_ = nullptr;  // borrowed during fit()
  Tensor buffer_;                          // [N, C, H, W] persistent advs
  std::size_t resets_ = 0;
  Tensor start_;                     // reused gather buffer for the batch
  attack::GradientScratch scratch_;  // reused by the per-epoch FGSM step
};

}  // namespace satd::core
