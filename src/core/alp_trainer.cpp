#include "core/alp_trainer.h"

#include "attack/fgsm.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::core {

LogitPairResult logit_pairing(const Tensor& logits_clean,
                              const Tensor& logits_adv) {
  SATD_EXPECT(logits_clean.shape() == logits_adv.shape(),
              "logit batch shape mismatch");
  SATD_EXPECT(logits_clean.numel() > 0, "empty logit batch");
  LogitPairResult res;
  res.grad_clean = Tensor(logits_clean.shape());
  res.grad_adv = Tensor(logits_adv.shape());
  const float inv = 1.0f / static_cast<float>(logits_clean.numel());
  const float* pa = logits_clean.raw();
  const float* pb = logits_adv.raw();
  float* ga = res.grad_clean.raw();
  float* gb = res.grad_adv.raw();
  double acc = 0.0;
  for (std::size_t i = 0, n = logits_clean.numel(); i < n; ++i) {
    const float d = pa[i] - pb[i];
    acc += static_cast<double>(d) * d;
    ga[i] = 2.0f * inv * d;
    gb[i] = -2.0f * inv * d;
  }
  res.value = static_cast<float>(acc) * inv;
  return res;
}

AlpTrainer::AlpTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config), attack_(config.eps) {
  SATD_EXPECT(config.alp_weight >= 0.0f, "alp_weight must be non-negative");
}

void AlpTrainer::make_adversarial_batch(const data::Batch& batch,
                                        Tensor& adv) {
  attack_.perturb_into(model_, batch.images, batch.labels, adv);
}

float AlpTrainer::train_batch(const data::Batch& batch) {
  make_adversarial_batch(batch, adv_scratch_);

  // Same two-forward structure as ATDA (see atda_trainer.cpp): the layer
  // caches end up matching the adversarial batch, whose backward runs
  // first; the clean forward is repeated before the clean backward.
  model_.forward_into(batch.images, logits_clean_, /*training=*/true);
  model_.forward_into(adv_scratch_, logits_adv_, /*training=*/true);

  const LogitPairResult pair = logit_pairing(logits_clean_, logits_adv_);
  nn::softmax_cross_entropy_into(logits_adv_, batch.labels, ce_adv_);
  nn::softmax_cross_entropy_into(logits_clean_, batch.labels, ce_clean_);

  const float mix = config_.adv_mix;
  const float lambda = config_.alp_weight;
  model_.zero_grad();
  ops::scale(ce_adv_.grad_logits, mix, grad_side_);
  ops::axpy(lambda, pair.grad_adv, grad_side_);
  model_.backward_into(grad_side_, grad_in_scratch_);
  model_.forward_into(batch.images, logits_clean_, /*training=*/true);
  ops::scale(ce_clean_.grad_logits, 1.0f - mix, grad_side_);
  ops::axpy(lambda, pair.grad_clean, grad_side_);
  model_.backward_into(grad_side_, grad_in_scratch_);
  apply_step();

  return (1.0f - mix) * ce_clean_.value + mix * ce_adv_.value +
         lambda * pair.value;
}

}  // namespace satd::core
