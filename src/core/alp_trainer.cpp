#include "core/alp_trainer.h"

#include "attack/fgsm.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::core {

LogitPairResult logit_pairing(const Tensor& logits_clean,
                              const Tensor& logits_adv) {
  SATD_EXPECT(logits_clean.shape() == logits_adv.shape(),
              "logit batch shape mismatch");
  SATD_EXPECT(logits_clean.numel() > 0, "empty logit batch");
  LogitPairResult res;
  res.grad_clean = Tensor(logits_clean.shape());
  res.grad_adv = Tensor(logits_adv.shape());
  const float inv = 1.0f / static_cast<float>(logits_clean.numel());
  const float* pa = logits_clean.raw();
  const float* pb = logits_adv.raw();
  float* ga = res.grad_clean.raw();
  float* gb = res.grad_adv.raw();
  double acc = 0.0;
  for (std::size_t i = 0, n = logits_clean.numel(); i < n; ++i) {
    const float d = pa[i] - pb[i];
    acc += static_cast<double>(d) * d;
    ga[i] = 2.0f * inv * d;
    gb[i] = -2.0f * inv * d;
  }
  res.value = static_cast<float>(acc) * inv;
  return res;
}

AlpTrainer::AlpTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config) {
  SATD_EXPECT(config.alp_weight >= 0.0f, "alp_weight must be non-negative");
}

Tensor AlpTrainer::make_adversarial_batch(const data::Batch& batch) {
  return attack::Fgsm(config_.eps).perturb(model_, batch.images, batch.labels);
}

float AlpTrainer::train_batch(const data::Batch& batch) {
  const Tensor adv = make_adversarial_batch(batch);

  // Same two-forward structure as ATDA (see atda_trainer.cpp): the layer
  // caches end up matching the adversarial batch, whose backward runs
  // first; the clean forward is repeated before the clean backward.
  const Tensor logits_clean = model_.forward(batch.images, /*training=*/true);
  const Tensor logits_adv = model_.forward(adv, /*training=*/true);

  const LogitPairResult pair = logit_pairing(logits_clean, logits_adv);
  nn::LossResult ce_adv = nn::softmax_cross_entropy(logits_adv, batch.labels);
  nn::LossResult ce_clean =
      nn::softmax_cross_entropy(logits_clean, batch.labels);

  const float mix = config_.adv_mix;
  const float lambda = config_.alp_weight;
  model_.zero_grad();
  Tensor grad_adv = ops::scale(ce_adv.grad_logits, mix);
  ops::axpy(lambda, pair.grad_adv, grad_adv);
  model_.backward(grad_adv);
  model_.forward(batch.images, /*training=*/true);
  Tensor grad_clean = ops::scale(ce_clean.grad_logits, 1.0f - mix);
  ops::axpy(lambda, pair.grad_clean, grad_clean);
  model_.backward(grad_clean);
  apply_step();

  return (1.0f - mix) * ce_clean.value + mix * ce_adv.value +
         lambda * pair.value;
}

}  // namespace satd::core
