#include "core/vanilla_trainer.h"

namespace satd::core {

VanillaTrainer::VanillaTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config) {}

Tensor VanillaTrainer::make_adversarial_batch(const data::Batch& /*batch*/) {
  return Tensor{};  // empty: train on clean data only
}

}  // namespace satd::core
