#include "core/vanilla_trainer.h"

namespace satd::core {

VanillaTrainer::VanillaTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config) {}

void VanillaTrainer::make_adversarial_batch(const data::Batch& /*batch*/,
                                            Tensor& adv) {
  adv = Tensor{};  // empty: train on clean data only
}

}  // namespace satd::core
