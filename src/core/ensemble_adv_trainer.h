// Ensemble Adversarial Training (Tramèr et al. 2018).
//
// Single-step adversarial training overfits to its own perturbations:
// the model learns to mask its gradients against FGSM crafted on itself
// while staying wide open to the same attack crafted on any other model.
// Tramèr et al.'s fix is to decouple crafting from the model under
// training — each batch's adversarial companion is crafted with FGSM on
// a source drawn from an ensemble of the live model plus a set of
// held-out STATIC models whose weights never move during training.
//
// The static surrogates here are small vanilla classifiers pre-trained
// at fit start from streams derived only from config.seed (count /
// architecture / epochs are TrainConfig knobs), so the whole run is
// deterministic and checkpoint-resumable: on_resume rebuilds the same
// surrogates bit-identically and the round-robin position is part of the
// method checkpoint state.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/fgsm.h"
#include "core/trainer.h"

namespace satd::core {

/// Clean + FGSM mixture where the crafting source round-robins over
/// {live model, static surrogate 0, ..., static surrogate k-1}.
class EnsembleAdvTrainer : public Trainer {
 public:
  EnsembleAdvTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override { return "Ensemble-Adv"; }

  /// The pre-trained static surrogates (empty before fit()); exposed so
  /// tests can pin their determinism.
  const std::vector<nn::Sequential>& surrogates() const {
    return surrogates_;
  }

 protected:
  void on_fit_begin(const data::Dataset& train) override;
  void on_resume(const data::Dataset& train) override;
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
  void save_method_state(std::ostream& os) const override;
  void load_method_state(std::istream& is) override;

 private:
  /// (Re)derives and pre-trains the static ensemble; deterministic from
  /// config.seed alone (consumes none of the trainer's own RNG streams).
  void build_surrogates(const data::Dataset& train);

  attack::Fgsm attack_;  // persistent so its scratch survives batches
  std::vector<nn::Sequential> surrogates_;
  std::uint64_t batch_counter_ = 0;  // round-robin position (checkpointed)
};

}  // namespace satd::core
