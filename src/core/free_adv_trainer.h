// "Free" adversarial training (Shafahi et al. 2019) — extension beyond
// the paper's evaluation, included because it attacks the same problem
// (the cost of Iter-Adv) with a complementary trick.
//
// Where the Proposed method amortizes the BIM iteration across EPOCHS
// via a persistent per-example buffer, free adversarial training
// amortizes it across REPLAYS of each mini-batch: every batch is trained
// `replays` times in a row, and the single backward pass of each replay
// yields both the parameter gradients (used to update the model) and the
// input gradients (used to update a persistent perturbation delta) — the
// adversarial examples come "for free". The perturbation delta carries
// over from batch to batch, like the original paper's implementation.
#pragma once

#include "core/trainer.h"

namespace satd::core {

/// Free adversarial training with config.free_replays replays per batch.
class FreeAdvTrainer : public Trainer {
 public:
  FreeAdvTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override;

  /// The carried perturbation (for tests; empty before training starts).
  const Tensor& delta() const { return delta_; }

 protected:
  // Unused: this trainer overrides train_batch wholesale.
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
  float train_batch(const data::Batch& batch) override;
  void save_method_state(std::ostream& os) const override;
  void load_method_state(std::istream& is) override;

 private:
  Tensor delta_;      // [B, C, H, W] perturbation carried across batches
  Tensor perturbed_;  // reused x + delta buffer
};

}  // namespace satd::core
