// Robustness-collapse sentinel: a periodic BIM-probe health check for
// adversarial training.
//
// Single-step adversarial training (FGSM-Adv and, by construction, the
// paper's Proposed method early after a buffer reset) is known to fail
// *silently*: robust accuracy can collapse catastrophically mid-run
// while the clean loss keeps improving (Vivek & Babu, "Regularizers for
// Single-step Adversarial Training"). The trainer's built-in guards
// (NaN/Inf, loss spikes) cannot see this failure mode because nothing in
// the clean loss misbehaves.
//
// The sentinel watches the one signal that does move: robust accuracy on
// a small fixed probe set under a few BIM iterations. Attached to a
// Trainer as its epoch health hook, a collapse (probe accuracy falling
// below `collapse_fraction` of the best seen so far) returns the stable
// verdict "robust_collapse" and rides the trainer's existing
// rollback-and-retry machinery: the epoch is rolled back to the
// last-good snapshot and retried at a halved learning rate, and retries
// exhausting throws TrainingDivergedError — which a supervised job then
// absorbs as a DEGRADED outcome instead of aborting the matrix.
//
// The probe evaluation runs the model in inference mode and consumes no
// trainer RNG, so attaching a sentinel never changes the parameters a
// healthy run produces — cached models and CSVs stay bit-identical.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "attack/bim.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace satd::core {

/// Sentinel knobs. Defaults are deliberately conservative: the check
/// only arms once the probe has ever reached `min_baseline`, and trips
/// only on a fall below half of the best observed accuracy — ordinary
/// epoch-to-epoch wobble cannot reach that.
struct SentinelConfig {
  std::size_t period = 1;          ///< check every `period` epochs
  float eps = 0.3f;                ///< probe attack budget
  std::size_t iterations = 5;      ///< BIM iterations on the probe
  float collapse_fraction = 0.5f;  ///< trip when acc < fraction * best
  float min_baseline = 0.2f;       ///< arm only after best >= this
};

/// Periodic BIM-probe robust-accuracy watchdog (see file comment).
/// The sentinel must outlive the trainer's fit() it is attached to.
class RobustnessSentinel {
 public:
  /// `probe` is a small held-out slice (a few dozen examples is enough);
  /// it is copied in. Throws ContractViolation on an empty probe or a
  /// degenerate config.
  RobustnessSentinel(data::Dataset probe, SentinelConfig config);

  /// Installs check() as `trainer`'s epoch health hook.
  void attach(Trainer& trainer);

  /// The health check: measures probe robust accuracy on scheduled
  /// epochs and returns "robust_collapse" or nullptr. Exposed for tests
  /// and custom wiring.
  const char* check(std::size_t epoch, nn::Sequential& model);

  /// Best probe robust accuracy seen so far (-1 before the first check).
  float best_accuracy() const { return best_; }
  /// Most recent measurement (-1 before the first check).
  float last_accuracy() const { return last_; }
  /// Number of collapse verdicts returned so far.
  std::size_t trips() const { return trips_; }

  /// Test-only: replaces each measured accuracy with
  /// `override_fn(epoch, measured)` — lets chaos tests inject a collapse
  /// (and a recovery) at exact epochs without engineering a real one.
  void set_probe_override(
      std::function<float(std::size_t, float)> override_fn) {
    override_ = std::move(override_fn);
  }

 private:
  float measure(nn::Sequential& model);

  data::Dataset probe_;
  SentinelConfig config_;
  attack::Bim bim_;
  Tensor adv_scratch_;
  Tensor logits_scratch_;
  std::vector<std::size_t> preds_scratch_;
  float best_ = -1.0f;
  float last_ = -1.0f;
  std::size_t trips_ = 0;
  std::function<float(std::size_t, float)> override_;
};

}  // namespace satd::core
