// Standard (non-adversarial) training: the "Vanilla" classifier of
// Figures 1 and 2.
#pragma once

#include "core/trainer.h"

namespace satd::core {

/// Trains on clean examples only.
class VanillaTrainer : public Trainer {
 public:
  VanillaTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override { return "Vanilla"; }

 protected:
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
};

}  // namespace satd::core
