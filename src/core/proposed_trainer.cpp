#include "core/proposed_trainer.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "attack/fgsm.h"
#include "common/contract.h"
#include "tensor/serialize.h"

namespace satd::core {

ProposedTrainer::ProposedTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config) {
  SATD_EXPECT(config.reset_period > 0, "reset_period must be positive");
  SATD_EXPECT(config.step_fraction > 0.0f && config.step_fraction <= 1.0f,
              "step_fraction must be in (0,1]");
}

void ProposedTrainer::on_fit_begin(const data::Dataset& train) {
  train_ = &train;
  buffer_ = train.images;  // start the epoch-wise iteration from clean
  resets_ = 1;
}

void ProposedTrainer::on_resume(const data::Dataset& train) {
  // The buffer was restored from the checkpoint; only the borrowed
  // dataset pointer needs re-binding.
  SATD_EXPECT(buffer_.shape() == train.images.shape(),
              "checkpoint buffer does not match the training set");
  train_ = &train;
}

void ProposedTrainer::save_method_state(std::ostream& os) const {
  write_tensor(os, buffer_);
  write_u64(os, resets_);
}

void ProposedTrainer::load_method_state(std::istream& is) {
  buffer_ = read_tensor(is);
  resets_ = static_cast<std::size_t>(read_u64(is));
}

void ProposedTrainer::on_epoch_begin(std::size_t epoch) {
  // Reset the epoch-wise iteration to catch up with long-term parameter
  // drift (paper: every 20 epochs). Epoch 0 was seeded by on_fit_begin.
  if (epoch > 0 && epoch % config_.reset_period == 0) {
    buffer_ = train_->images;
    ++resets_;
  }
}

void ProposedTrainer::make_adversarial_batch(const data::Batch& batch,
                                             Tensor& adv) {
  SATD_EXPECT(train_ != nullptr, "make_adversarial_batch outside fit()");
  // Gather the buffered adversarial examples for this batch (raw copies:
  // slice_row/set_row would materialize a temporary per row).
  const auto& dims = buffer_.shape().dims();
  const std::size_t ex = dims[1] * dims[2] * dims[3];  // elems per example
  start_.ensure_shape(Shape{batch.size(), dims[1], dims[2], dims[3]});
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const float* src = buffer_.raw() + batch.indices[k] * ex;
    std::copy(src, src + ex, start_.raw() + k * ex);
  }
  // One relatively large gradient-sign step from the buffered iterate,
  // clipped to the eps-ball around the CLEAN image (batch.images holds
  // the clean pixels for these indices).
  const float step = config_.eps * config_.step_fraction;
  attack::Fgsm::step_into(model_, start_, batch.images, batch.labels, step,
                          config_.eps, adv, scratch_);
  // Carry the advanced iterates to the next epoch.
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const float* src = adv.raw() + k * ex;
    std::copy(src, src + ex, buffer_.raw() + batch.indices[k] * ex);
  }
}

}  // namespace satd::core
