// Adversarial Logit Pairing (Kannan, Kurakin & Goodfellow 2018) — the
// paper cites ALP ([6]) as the state of Iter-Adv scaling on ImageNet;
// this trainer lets the extension benches place the Proposed method
// against it.
//
// ALP augments the adversarial-training mixture with a pairing term that
// pulls the logits of each clean example and its adversarial twin
// together:
//
//   L = (1-mix) * CE(clean) + mix * CE(adv)
//       + lambda * (1/(N*D)) * ||logits_clean - logits_adv||^2
//
// The pairing gradient is analytic (2/(N*D) * (diff)) on each side. The
// adversarial examples here are single-step (FGSM) so the comparison
// against the Proposed method isolates the effect of the loss, not of
// the attack budget spent in training.
#pragma once

#include "attack/fgsm.h"
#include "core/trainer.h"

namespace satd::core {

/// Single-step adversarial training with logit pairing.
class AlpTrainer : public Trainer {
 public:
  AlpTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override { return "ALP"; }

 protected:
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
  float train_batch(const data::Batch& batch) override;

 private:
  attack::Fgsm attack_;  // persistent so its scratch survives batches
  // Reused per-batch buffers: both logit batches must be live at once
  // (the pairing term reads both), so this trainer cannot share the base
  // class's single logits scratch.
  Tensor logits_clean_, logits_adv_, grad_side_;
  nn::LossResult ce_clean_, ce_adv_;
};

/// Value and per-side gradients of the mean squared logit-pairing term.
/// Exposed for finite-difference tests.
struct LogitPairResult {
  float value = 0.0f;   ///< (1/(N*D)) * sum (a - b)^2
  Tensor grad_clean;    ///< d(value)/d(logits_clean)
  Tensor grad_adv;      ///< d(value)/d(logits_adv)
};
LogitPairResult logit_pairing(const Tensor& logits_clean,
                              const Tensor& logits_adv);

}  // namespace satd::core
