// Adversarial-training framework: shared config, reporting and the
// epoch/batch loop that every training method plugs into.
//
// The five methods of the paper's evaluation (Table I) are:
//   VanillaTrainer    — clean examples only (Figure 1/2 baseline)
//   FgsmAdvTrainer    — clean + single-step FGSM mixture (Goodfellow '15)
//   BimAdvTrainer     — clean + BIM(N) mixture: the Iter-Adv reference
//   AtdaTrainer       — SOTA Single-Adv baseline (Song et al. 2018)
//   ProposedTrainer   — the paper's contribution (src/core/proposed_trainer.h)
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace satd::core {

/// Hyper-parameters for every trainer. Method-specific knobs are grouped
/// and ignored by methods that do not use them, so one config describes a
/// whole Table-I run.
struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam
  std::uint64_t seed = 42;

  // Adversarial-training knobs (shared).
  float eps = 0.3f;      ///< total l-inf budget (0.3 digits / 0.2 fashion)
  float adv_mix = 0.5f;  ///< weight of the adversarial term in the mixture

  // Iter-Adv (BimAdvTrainer / PgdAdvTrainer).
  std::size_t bim_iterations = 10;

  // Free adversarial training (FreeAdvTrainer, extension): replays of
  // each mini-batch; the effective epoch count is epochs * free_replays.
  std::size_t free_replays = 4;

  // Proposed method.
  std::size_t reset_period = 20;  ///< buffer reset interval (epochs)
  float step_fraction = 0.1f;     ///< per-epoch step = eps * step_fraction

  // Adversarial logit pairing (AlpTrainer, extension): weight of the
  // squared logit-difference term.
  float alp_weight = 0.5f;

  // Ensemble adversarial training (EnsembleAdvTrainer, extension):
  // number of static surrogate models, the architecture they use, and
  // how many vanilla epochs each one is pre-trained for. The surrogates
  // are derived deterministically from `seed`, so two runs with the same
  // config train against bit-identical ensembles.
  std::size_t ensemble_surrogate_count = 2;
  std::string ensemble_surrogate_spec = "mlp_small";
  std::size_t ensemble_surrogate_epochs = 3;

  // Regularized single-step training (FgsmRegTrainer, extension): weight
  // of the FGSM-vs-iterative logit-divergence penalty and the iteration
  // count of the multi-step probe it compares against.
  float fgsm_reg_weight = 0.5f;
  std::size_t fgsm_reg_iterations = 2;

  // Label smoothing applied to every cross-entropy term (0 = off). A
  // regularization defense in the family the paper's related work cites.
  float label_smoothing = 0.0f;

  // ATDA (Song et al. 2018) loss weights.
  float atda_lambda_coral = 0.5f;
  float atda_lambda_mmd = 0.5f;
  float atda_lambda_margin = 0.05f;
  float atda_margin = 2.0f;
  float atda_center_alpha = 0.1f;  ///< EMA rate for class centers

  // ---- training health guards ----
  //
  // Single-step adversarial training is known to collapse mid-run
  // (Vivek & Babu 2020), so fit() checks every finished epoch for a
  // non-finite loss, non-finite parameters, or a loss spike. A failed
  // epoch is rolled back to the in-memory last-good snapshot (params +
  // optimizer moments + RNG streams + method state) and retried with a
  // halved learning rate; after `divergence_max_retries` failed retries
  // of the same epoch, fit() throws TrainingDivergedError.
  bool health_checks = true;
  std::size_t divergence_max_retries = 2;
  /// Epoch mean loss > factor * max(last-good loss, 0.1) counts as a
  /// divergence. The floor keeps near-converged runs from tripping on
  /// tiny absolute wobbles; the factor is sized to the cross-entropy
  /// clamp (-log 1e-12 ≈ 27.6 caps any per-sample loss), so 10x the
  /// last-good epoch is already a catastrophic, non-transient jump.
  float loss_spike_factor = 10.0f;
};

/// Per-epoch record.
struct EpochStats {
  std::size_t epoch = 0;
  float mean_loss = 0.0f;
  double seconds = 0.0;
};

/// One detected divergence (rolled back and retried, or fatal).
struct DivergenceEvent {
  std::size_t epoch = 0;
  std::size_t attempt = 0;   ///< 0 = first try of the epoch
  float loss = 0.0f;         ///< epoch mean loss at detection
  std::string reason;        ///< "non_finite_loss" | "non_finite_parameter"
                             ///< | "loss_spike"
};

/// Thrown when an epoch keeps diverging after the configured number of
/// rollback-and-retry attempts.
class TrainingDivergedError : public std::runtime_error {
 public:
  explicit TrainingDivergedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Result of a full fit() run.
struct TrainReport {
  std::string method;
  std::vector<EpochStats> epochs;
  /// Every divergence the health guards caught (empty on a clean run).
  std::vector<DivergenceEvent> divergence_events;
  /// True when fit() returned early because the stop check fired
  /// (graceful shutdown); `epochs` then holds the completed epochs and
  /// the trainer sits exactly at that epoch boundary.
  bool stopped_early = false;
  /// Mean wall-clock seconds per epoch — the paper's Table I cost metric.
  double mean_epoch_seconds() const;
  /// Total training seconds.
  double total_seconds() const;
  /// Loss of the final epoch (0 if no epochs ran).
  float final_loss() const;
};

/// Optional per-epoch observer (epoch stats as they complete).
using EpochCallback = std::function<void(const EpochStats&)>;

/// Polled between batches for graceful shutdown (e.g. a SIGINT flag).
using StopCheck = std::function<bool()>;

/// Test-only hook invoked at the start of each epoch attempt (after
/// on_epoch_begin, before any batch) with (epoch, retry attempt, model)
/// — lets fault-injection tests poison parameters so the epoch's own
/// loss blows up and drives the rollback path deterministically.
using EpochFaultHook =
    std::function<void(std::size_t, std::size_t, nn::Sequential&)>;

/// Pluggable end-of-epoch health check, run after the built-in
/// NaN/spike verdict passes, with (epoch, retry attempt, model, epoch
/// mean loss). Returns nullptr for a healthy epoch or a STABLE reason
/// token (a string literal — the pointer must outlive the call); a
/// non-null verdict drives the same rollback-and-retry path as the
/// built-in divergence checks. Used by the robustness-collapse sentinel
/// (core/sentinel.h): single-step adversarial training can collapse in
/// robust accuracy while the clean loss stays perfectly healthy, which
/// no loss-based guard can see.
using EpochHealthHook = std::function<const char*(
    std::size_t, std::size_t, nn::Sequential&, float)>;

/// Base class implementing the epoch/batch loop and the clean+adversarial
/// mixture update that all methods share. Subclasses provide the
/// adversarial batch (or opt out) via make_adversarial_batch().
class Trainer {
 public:
  /// The trainer borrows the model; the caller keeps ownership.
  Trainer(nn::Sequential& model, TrainConfig config);
  virtual ~Trainer() = default;

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Runs epochs [start_epoch, config.epochs) over `train`. start_epoch
  /// is only meaningful when resuming from a checkpoint (the report then
  /// covers the resumed epochs only). With config.health_checks on, a
  /// diverged epoch (NaN/Inf loss or parameters, loss spike) is rolled
  /// back to the last-good state and retried at half the learning rate;
  /// throws TrainingDivergedError once retries are exhausted.
  TrainReport fit(const data::Dataset& train, EpochCallback callback = {},
                  std::size_t start_epoch = 0);

  /// Installs a predicate polled between batches; when it returns true,
  /// fit() rolls the trainer back to the last completed epoch boundary
  /// and returns early with report.stopped_early set — a checkpoint
  /// saved right after is exactly epoch-granular. Must be cheap and
  /// signal-safe to read (typically a sig_atomic_t / atomic flag).
  void set_stop_check(StopCheck check) { stop_check_ = std::move(check); }

  /// Installs the test-only fault hook (see EpochFaultHook).
  void set_epoch_fault_hook(EpochFaultHook hook) {
    epoch_fault_hook_ = std::move(hook);
  }

  /// Installs an extra end-of-epoch health check (see EpochHealthHook).
  /// Runs even when config.health_checks is off, and shares the rollback
  /// budget: an epoch the hook keeps rejecting throws
  /// TrainingDivergedError after divergence_max_retries retries.
  void set_epoch_health_hook(EpochHealthHook hook) {
    epoch_health_hook_ = std::move(hook);
  }

  virtual std::string name() const = 0;

  const TrainConfig& config() const { return config_; }
  nn::Sequential& model() { return model_; }
  nn::Optimizer& optimizer() { return *optimizer_; }

  // ---- checkpointing ----
  //
  // A checkpoint captures everything a resumed run needs to be
  // bit-identical to an uninterrupted one: model parameters, optimizer
  // state, both RNG streams, and method-specific state (the Proposed
  // trainer's adversarial buffer, ATDA's class centers, ...). Save from
  // an epoch callback with next_epoch = stats.epoch + 1; resume by
  // constructing the same trainer type/config on a fresh model, calling
  // load_checkpoint, and passing the returned epoch to fit().
  // Limitation: models containing Dropout keep private RNG streams that
  // are not captured (none of the zoo models use Dropout).

  /// Writes a checkpoint; `next_epoch` is the epoch the resumed fit()
  /// should start at.
  void save_checkpoint(std::ostream& os, std::size_t next_epoch);
  void save_checkpoint_file(const std::string& path, std::size_t next_epoch);

  /// Restores a checkpoint into this trainer (method/config must match
  /// the saving trainer); returns the epoch to pass to fit(). Throws
  /// SerializeError on mismatch.
  std::size_t load_checkpoint(std::istream& is);
  std::size_t load_checkpoint_file(const std::string& path);

 protected:
  /// Called once before the first epoch (buffer allocation etc.).
  virtual void on_fit_begin(const data::Dataset& train);

  /// Called instead of on_fit_begin when fit() resumes from a
  /// checkpoint: re-binds borrowed references (e.g. the Proposed
  /// trainer's dataset pointer) WITHOUT resetting restored state.
  virtual void on_resume(const data::Dataset& train);

  /// Called at each epoch start (buffer resets etc.).
  virtual void on_epoch_begin(std::size_t epoch);

  /// Method-specific checkpoint payload (default: none). Implementations
  /// must read back exactly what they wrote.
  virtual void save_method_state(std::ostream& os) const;
  virtual void load_method_state(std::istream& is);

  /// Writes the adversarial companion of `batch` into `adv` (a persistent
  /// buffer reused across batches), or leaves/makes `adv` empty to train
  /// on clean data only (VanillaTrainer). May use model() freely;
  /// parameter gradients must be left zeroed.
  virtual void make_adversarial_batch(const data::Batch& batch,
                                      Tensor& adv) = 0;

  /// One optimizer update on the clean/adversarial mixture. Returns the
  /// batch loss. Subclasses with bespoke losses (ATDA) override this.
  virtual float train_batch(const data::Batch& batch);

  /// Gradient-descent step helper shared by subclasses: runs
  /// forward/backward at `weight` on (x, labels), accumulating gradients.
  /// Returns the (unweighted) mean loss.
  float accumulate_loss_gradient(const Tensor& x,
                                 std::span<const std::size_t> labels,
                                 float weight);

  /// Applies the optimizer to the accumulated gradients and zeroes them.
  void apply_step();

  /// Health verdict for a finished epoch: nullptr when healthy, else a
  /// stable reason token ("non_finite_loss", "non_finite_parameter",
  /// "loss_spike"). `last_good_loss` < 0 means no baseline yet (first
  /// epoch of the run) and disables the spike check.
  const char* epoch_health_verdict(float mean_loss,
                                   float last_good_loss) const;

  nn::Sequential& model_;
  TrainConfig config_;
  Rng rng_;
  Rng shuffle_rng_;  // epoch-shuffle stream (member so checkpoints carry it)
  std::unique_ptr<nn::Optimizer> optimizer_;

  // Persistent per-batch buffers (resized on shape change, reused
  // otherwise) so the steady-state training loop is allocation free:
  // forward logits, loss result, dLoss/dInput sink, adversarial batch.
  Tensor logits_scratch_;
  nn::LossResult loss_scratch_;
  Tensor grad_in_scratch_;
  Tensor adv_scratch_;

  StopCheck stop_check_;
  EpochFaultHook epoch_fault_hook_;
  EpochHealthHook epoch_health_hook_;
};

}  // namespace satd::core
