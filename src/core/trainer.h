// Adversarial-training framework: shared config, reporting and the
// epoch/batch loop that every training method plugs into.
//
// The five methods of the paper's evaluation (Table I) are:
//   VanillaTrainer    — clean examples only (Figure 1/2 baseline)
//   FgsmAdvTrainer    — clean + single-step FGSM mixture (Goodfellow '15)
//   BimAdvTrainer     — clean + BIM(N) mixture: the Iter-Adv reference
//   AtdaTrainer       — SOTA Single-Adv baseline (Song et al. 2018)
//   ProposedTrainer   — the paper's contribution (src/core/proposed_trainer.h)
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace satd::core {

/// Hyper-parameters for every trainer. Method-specific knobs are grouped
/// and ignored by methods that do not use them, so one config describes a
/// whole Table-I run.
struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam
  std::uint64_t seed = 42;

  // Adversarial-training knobs (shared).
  float eps = 0.3f;      ///< total l-inf budget (0.3 digits / 0.2 fashion)
  float adv_mix = 0.5f;  ///< weight of the adversarial term in the mixture

  // Iter-Adv (BimAdvTrainer / PgdAdvTrainer).
  std::size_t bim_iterations = 10;

  // Free adversarial training (FreeAdvTrainer, extension): replays of
  // each mini-batch; the effective epoch count is epochs * free_replays.
  std::size_t free_replays = 4;

  // Proposed method.
  std::size_t reset_period = 20;  ///< buffer reset interval (epochs)
  float step_fraction = 0.1f;     ///< per-epoch step = eps * step_fraction

  // Adversarial logit pairing (AlpTrainer, extension): weight of the
  // squared logit-difference term.
  float alp_weight = 0.5f;

  // Label smoothing applied to every cross-entropy term (0 = off). A
  // regularization defense in the family the paper's related work cites.
  float label_smoothing = 0.0f;

  // ATDA (Song et al. 2018) loss weights.
  float atda_lambda_coral = 0.5f;
  float atda_lambda_mmd = 0.5f;
  float atda_lambda_margin = 0.05f;
  float atda_margin = 2.0f;
  float atda_center_alpha = 0.1f;  ///< EMA rate for class centers
};

/// Per-epoch record.
struct EpochStats {
  std::size_t epoch = 0;
  float mean_loss = 0.0f;
  double seconds = 0.0;
};

/// Result of a full fit() run.
struct TrainReport {
  std::string method;
  std::vector<EpochStats> epochs;
  /// Mean wall-clock seconds per epoch — the paper's Table I cost metric.
  double mean_epoch_seconds() const;
  /// Total training seconds.
  double total_seconds() const;
  /// Loss of the final epoch (0 if no epochs ran).
  float final_loss() const;
};

/// Optional per-epoch observer (epoch stats as they complete).
using EpochCallback = std::function<void(const EpochStats&)>;

/// Base class implementing the epoch/batch loop and the clean+adversarial
/// mixture update that all methods share. Subclasses provide the
/// adversarial batch (or opt out) via make_adversarial_batch().
class Trainer {
 public:
  /// The trainer borrows the model; the caller keeps ownership.
  Trainer(nn::Sequential& model, TrainConfig config);
  virtual ~Trainer() = default;

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Runs epochs [start_epoch, config.epochs) over `train`. start_epoch
  /// is only meaningful when resuming from a checkpoint (the report then
  /// covers the resumed epochs only).
  TrainReport fit(const data::Dataset& train, EpochCallback callback = {},
                  std::size_t start_epoch = 0);

  virtual std::string name() const = 0;

  const TrainConfig& config() const { return config_; }
  nn::Sequential& model() { return model_; }
  nn::Optimizer& optimizer() { return *optimizer_; }

  // ---- checkpointing ----
  //
  // A checkpoint captures everything a resumed run needs to be
  // bit-identical to an uninterrupted one: model parameters, optimizer
  // state, both RNG streams, and method-specific state (the Proposed
  // trainer's adversarial buffer, ATDA's class centers, ...). Save from
  // an epoch callback with next_epoch = stats.epoch + 1; resume by
  // constructing the same trainer type/config on a fresh model, calling
  // load_checkpoint, and passing the returned epoch to fit().
  // Limitation: models containing Dropout keep private RNG streams that
  // are not captured (none of the zoo models use Dropout).

  /// Writes a checkpoint; `next_epoch` is the epoch the resumed fit()
  /// should start at.
  void save_checkpoint(std::ostream& os, std::size_t next_epoch);
  void save_checkpoint_file(const std::string& path, std::size_t next_epoch);

  /// Restores a checkpoint into this trainer (method/config must match
  /// the saving trainer); returns the epoch to pass to fit(). Throws
  /// SerializeError on mismatch.
  std::size_t load_checkpoint(std::istream& is);
  std::size_t load_checkpoint_file(const std::string& path);

 protected:
  /// Called once before the first epoch (buffer allocation etc.).
  virtual void on_fit_begin(const data::Dataset& train);

  /// Called instead of on_fit_begin when fit() resumes from a
  /// checkpoint: re-binds borrowed references (e.g. the Proposed
  /// trainer's dataset pointer) WITHOUT resetting restored state.
  virtual void on_resume(const data::Dataset& train);

  /// Called at each epoch start (buffer resets etc.).
  virtual void on_epoch_begin(std::size_t epoch);

  /// Method-specific checkpoint payload (default: none). Implementations
  /// must read back exactly what they wrote.
  virtual void save_method_state(std::ostream& os) const;
  virtual void load_method_state(std::istream& is);

  /// Writes the adversarial companion of `batch` into `adv` (a persistent
  /// buffer reused across batches), or leaves/makes `adv` empty to train
  /// on clean data only (VanillaTrainer). May use model() freely;
  /// parameter gradients must be left zeroed.
  virtual void make_adversarial_batch(const data::Batch& batch,
                                      Tensor& adv) = 0;

  /// One optimizer update on the clean/adversarial mixture. Returns the
  /// batch loss. Subclasses with bespoke losses (ATDA) override this.
  virtual float train_batch(const data::Batch& batch);

  /// Gradient-descent step helper shared by subclasses: runs
  /// forward/backward at `weight` on (x, labels), accumulating gradients.
  /// Returns the (unweighted) mean loss.
  float accumulate_loss_gradient(const Tensor& x,
                                 std::span<const std::size_t> labels,
                                 float weight);

  /// Applies the optimizer to the accumulated gradients and zeroes them.
  void apply_step();

  nn::Sequential& model_;
  TrainConfig config_;
  Rng rng_;
  Rng shuffle_rng_;  // epoch-shuffle stream (member so checkpoints carry it)
  std::unique_ptr<nn::Optimizer> optimizer_;

  // Persistent per-batch buffers (resized on shape change, reused
  // otherwise) so the steady-state training loop is allocation free:
  // forward logits, loss result, dLoss/dInput sink, adversarial batch.
  Tensor logits_scratch_;
  nn::LossResult loss_scratch_;
  Tensor grad_in_scratch_;
  Tensor adv_scratch_;
};

}  // namespace satd::core
