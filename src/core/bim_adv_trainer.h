// Iterative adversarial training (Iter-Adv): the paper's "BIM(N)-Adv"
// rows. Strong defense, N-fold attack cost inside every batch.
#pragma once

#include "attack/bim.h"
#include "core/trainer.h"

namespace satd::core {

/// Trains on a clean + BIM(config.bim_iterations) mixture, regenerating
/// the iterative adversarial examples from scratch every batch — the
/// expensive baseline whose cost the Proposed method amortizes.
class BimAdvTrainer : public Trainer {
 public:
  BimAdvTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override;

 protected:
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;

 private:
  attack::Bim attack_;  // persistent so its scratch survives batches
};

}  // namespace satd::core
