// Trainer factory: builds any of the paper's five methods by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"

namespace satd::core {

/// Method identifiers accepted by make_trainer:
///   "vanilla", "fgsm_adv", "bim_adv" (uses config.bim_iterations),
///   "atda", "proposed" — the paper's five methods — plus the
///   extensions "pgd_adv" (random-start Iter-Adv), "free_adv"
///   (batch-replay free adversarial training), "alp" (adversarial
///   logit pairing), "ensemble_adv" (static-surrogate ensemble
///   crafting, Tramèr et al.) and "fgsm_reg" (FGSM-vs-iterative
///   logit-divergence regularizer, Vivek & Babu).
///
/// Throws std::invalid_argument (with the full known_methods() list in
/// the message) for any other name.
std::unique_ptr<Trainer> make_trainer(const std::string& method,
                                      nn::Sequential& model,
                                      const TrainConfig& config);

/// True if `method` names a known trainer.
bool is_known_method(const std::string& method);

/// All method identifiers.
std::vector<std::string> known_methods();

}  // namespace satd::core
