#include "core/sentinel.h"

#include "common/contract.h"
#include "common/log.h"
#include "tensor/ops.h"

namespace satd::core {

RobustnessSentinel::RobustnessSentinel(data::Dataset probe,
                                       SentinelConfig config)
    : probe_(std::move(probe)),
      config_(config),
      bim_(config.eps, config.iterations) {
  probe_.validate();
  SATD_EXPECT(probe_.size() > 0, "sentinel needs a non-empty probe set");
  SATD_EXPECT(config_.period > 0, "sentinel period must be positive");
  SATD_EXPECT(config_.iterations > 0,
              "sentinel needs at least one BIM iteration");
  SATD_EXPECT(
      config_.collapse_fraction > 0.0f && config_.collapse_fraction < 1.0f,
      "collapse_fraction must be in (0,1)");
  SATD_EXPECT(config_.min_baseline >= 0.0f && config_.min_baseline <= 1.0f,
              "min_baseline must be in [0,1]");
}

void RobustnessSentinel::attach(Trainer& trainer) {
  trainer.set_epoch_health_hook(
      [this](std::size_t epoch, std::size_t /*attempt*/,
             nn::Sequential& model, float /*mean_loss*/) {
        return check(epoch, model);
      });
}

float RobustnessSentinel::measure(nn::Sequential& model) {
  // The probe is small by contract, so it is attacked and evaluated as a
  // single batch; BIM and the forward pass are deterministic and consume
  // no trainer RNG.
  bim_.perturb_into(model, probe_.images, probe_.labels, adv_scratch_);
  model.forward_into(adv_scratch_, logits_scratch_, /*training=*/false);
  ops::argmax_rows_into(logits_scratch_, preds_scratch_);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < probe_.labels.size(); ++i) {
    if (preds_scratch_[i] == probe_.labels[i]) ++correct;
  }
  return static_cast<float>(correct) /
         static_cast<float>(probe_.labels.size());
}

const char* RobustnessSentinel::check(std::size_t epoch,
                                      nn::Sequential& model) {
  if ((epoch + 1) % config_.period != 0) return nullptr;
  float acc = measure(model);
  if (override_) acc = override_(epoch, acc);
  last_ = acc;
  if (best_ >= config_.min_baseline &&
      acc < config_.collapse_fraction * best_) {
    ++trips_;
    log::warn() << "robustness sentinel: probe accuracy " << acc
                << " collapsed below " << config_.collapse_fraction
                << " x best (" << best_ << ") at epoch " << epoch;
    return "robust_collapse";
  }
  if (acc > best_) best_ = acc;
  return nullptr;
}

}  // namespace satd::core
