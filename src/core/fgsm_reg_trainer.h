// Regularized single-step adversarial training (Vivek & Babu 2020).
//
// The failure mode of FGSM-only training is gradient masking: the model
// bends its loss surface so the single linearized step lands somewhere
// harmless, while a multi-step attack still walks straight through. The
// observable symptom is that FGSM examples and iterative examples stop
// looking alike to the model. Vivek & Babu's regularizer penalizes
// exactly that divergence: alongside the usual clean + FGSM mixture, it
// crafts a short multi-step probe (BIM with a handful of iterations) and
// adds a squared logit-distance term between the FGSM batch and the
// probe batch,
//
//   L = (1-mix) * CE(clean) + mix * CE(fgsm)
//       + lambda * (1/(N*D)) * ||logits_fgsm - logits_probe||^2
//
// so masking the single-step gradient stops being free. The pairing term
// reuses the analytic logit_pairing() gradient from the ALP trainer.
#pragma once

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "core/trainer.h"

namespace satd::core {

/// Clean + FGSM mixture with an FGSM-vs-iterative logit-divergence
/// penalty (weight config.fgsm_reg_weight, probe depth
/// config.fgsm_reg_iterations).
class FgsmRegTrainer : public Trainer {
 public:
  FgsmRegTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override { return "FGSM-Reg"; }

 protected:
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
  float train_batch(const data::Batch& batch) override;

 private:
  attack::Fgsm attack_;  // persistent so its scratch survives batches
  attack::Bim probe_;    // the multi-step reference the penalty compares to
  // Reused per-batch buffers: the pairing term needs the FGSM and probe
  // logit batches live at once, so the base class's single logits
  // scratch is not enough.
  Tensor probe_scratch_, logits_fgsm_, logits_probe_, grad_side_;
  nn::LossResult ce_fgsm_;
};

}  // namespace satd::core
