#include "core/atda_trainer.h"

#include <istream>
#include <ostream>

#include "attack/fgsm.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace satd::core {

AtdaTrainer::AtdaTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config), attack_(config.eps) {}

void AtdaTrainer::on_fit_begin(const data::Dataset& train) {
  // Logit-space centers: one row per class, width = number of logits.
  Rng init_rng = rng_.fork(0xA7DA);
  centers_ = Tensor(Shape{train.num_classes, train.num_classes});
  // Small random init keeps the margin term from being degenerate (all
  // centers identical) during the first batches.
  for (float& v : centers_.data()) {
    v = static_cast<float>(init_rng.normal(0.0, 0.1));
  }
}

void AtdaTrainer::save_method_state(std::ostream& os) const {
  write_tensor(os, centers_);
}

void AtdaTrainer::load_method_state(std::istream& is) {
  centers_ = read_tensor(is);
}

void AtdaTrainer::make_adversarial_batch(const data::Batch& batch,
                                         Tensor& adv) {
  attack_.perturb_into(model_, batch.images, batch.labels, adv);
}

float AtdaTrainer::train_batch(const data::Batch& batch) {
  SATD_EXPECT(batch.size() >= 2, "ATDA requires batches of at least 2");
  make_adversarial_batch(batch, adv_scratch_);

  // Two forwards to obtain both logit batches. The layer caches end up
  // corresponding to the adversarial batch, so its backward runs first;
  // the clean forward is then repeated to restore caches before the
  // clean backward. (This re-forward is the honest cost of the DA loss
  // in a cache-per-layer framework and is part of why ATDA sits between
  // Proposed and Iter-Adv in the per-epoch timing column.)
  model_.forward_into(batch.images, logits_clean_, /*training=*/true);
  model_.forward_into(adv_scratch_, logits_adv_, /*training=*/true);

  const AtdaLossWeights weights{config_.atda_lambda_coral,
                                config_.atda_lambda_mmd,
                                config_.atda_lambda_margin,
                                config_.atda_margin};
  const AtdaLossResult da =
      atda_domain_loss(logits_clean_, logits_adv_, batch.labels, centers_,
                       weights);

  const float mix = config_.adv_mix;
  nn::softmax_cross_entropy_into(logits_adv_, batch.labels, ce_adv_);
  nn::softmax_cross_entropy_into(logits_clean_, batch.labels, ce_clean_);

  model_.zero_grad();
  // Adversarial side: weighted CE grad + DA grad (caches match adv now).
  ops::scale(ce_adv_.grad_logits, mix, grad_side_);
  ops::axpy(1.0f, da.grad_adv, grad_side_);
  model_.backward_into(grad_side_, grad_in_scratch_);
  // Clean side: re-forward to restore caches, then backward.
  model_.forward_into(batch.images, logits_clean_, /*training=*/true);
  ops::scale(ce_clean_.grad_logits, 1.0f - mix, grad_side_);
  ops::axpy(1.0f, da.grad_clean, grad_side_);
  model_.backward_into(grad_side_, grad_in_scratch_);
  apply_step();

  // EMA the class centers from both domains (centers are constants for
  // the gradient, updated after the step like the reference method).
  update_class_centers(centers_, logits_clean_, batch.labels,
                       config_.atda_center_alpha);
  update_class_centers(centers_, logits_adv_, batch.labels,
                       config_.atda_center_alpha);

  return (1.0f - mix) * ce_clean_.value + mix * ce_adv_.value + da.total;
}

}  // namespace satd::core
