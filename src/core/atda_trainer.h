// ATDA (Song et al. 2018): the SOTA Single-Adv baseline of Table I.
//
// Trains with single-step (FGSM) adversarial examples and augments the
// cross-entropy with the domain-adaptation loss of src/core/atda_loss.h,
// aligning the logit distributions of the clean and adversarial domains
// so robustness generalizes beyond the single-step examples seen in
// training.
#pragma once

#include "attack/fgsm.h"
#include "core/atda_loss.h"
#include "core/trainer.h"

namespace satd::core {

/// Single-step adversarial training with domain adaptation.
class AtdaTrainer : public Trainer {
 public:
  AtdaTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override { return "ATDA"; }

  /// Class-center matrix [num_classes, num_classes-logits]; exposed for
  /// tests (empty before the first batch).
  const Tensor& class_centers() const { return centers_; }

 protected:
  void on_fit_begin(const data::Dataset& train) override;
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;
  float train_batch(const data::Batch& batch) override;
  void save_method_state(std::ostream& os) const override;
  void load_method_state(std::istream& is) override;

 private:
  Tensor centers_;
  attack::Fgsm attack_;  // persistent so its scratch survives batches
  // Reused per-batch buffers (both logit batches feed the DA loss, so
  // the base class's single logits scratch cannot serve here).
  Tensor logits_clean_, logits_adv_, grad_side_;
  nn::LossResult ce_clean_, ce_adv_;
};

}  // namespace satd::core
