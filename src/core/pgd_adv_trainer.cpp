#include "core/pgd_adv_trainer.h"

#include "attack/pgd.h"
#include "common/contract.h"

namespace satd::core {

PgdAdvTrainer::PgdAdvTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config), attack_rng_(rng_.fork(0x96DA)) {
  SATD_EXPECT(config.bim_iterations > 0, "bim_iterations must be positive");
}

void PgdAdvTrainer::save_method_state(std::ostream& os) const {
  attack_rng_.save(os);
}

void PgdAdvTrainer::load_method_state(std::istream& is) {
  attack_rng_.load(is);
}

std::string PgdAdvTrainer::name() const {
  return "PGD(" + std::to_string(config_.bim_iterations) + ")-Adv";
}

void PgdAdvTrainer::make_adversarial_batch(const data::Batch& batch,
                                           Tensor& adv) {
  // Each batch constructs a Pgd that forks from attack_rng_; forking
  // advances the parent stream, so every batch gets fresh random starts
  // while the whole run stays deterministic given the config seed.
  // (Checkpoint resume depends on this per-batch fork sequence, so the
  // attack object cannot be hoisted into a member; its gradient scratch
  // is still reused across the PGD iterations within the batch.)
  attack::Pgd pgd(config_.eps, config_.bim_iterations,
                  config_.eps / static_cast<float>(config_.bim_iterations),
                  attack_rng_);
  pgd.perturb_into(model_, batch.images, batch.labels, adv);
}

}  // namespace satd::core
