#include "core/free_adv_trainer.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "attack/attack.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace satd::core {

FreeAdvTrainer::FreeAdvTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config) {
  SATD_EXPECT(config.free_replays > 0, "free_replays must be positive");
}

std::string FreeAdvTrainer::name() const {
  return "Free-Adv(m=" + std::to_string(config_.free_replays) + ")";
}

void FreeAdvTrainer::save_method_state(std::ostream& os) const {
  write_tensor(os, delta_);
}

void FreeAdvTrainer::load_method_state(std::istream& is) {
  delta_ = read_tensor(is);
}

void FreeAdvTrainer::make_adversarial_batch(const data::Batch& /*batch*/,
                                            Tensor& /*adv*/) {
  SATD_ENSURE(false, "FreeAdvTrainer::train_batch bypasses this hook");
}

float FreeAdvTrainer::train_batch(const data::Batch& batch) {
  // The delta buffer is allocated once at the nominal (first-batch)
  // size and carried across batches; a smaller trailing batch uses the
  // leading rows of the buffer.
  if (delta_.empty()) {
    delta_ = Tensor(batch.images.shape());
  }
  const std::size_t used = batch.images.numel();
  SATD_ENSURE(used <= delta_.numel(), "batch larger than the delta buffer");

  const float step =
      config_.eps / static_cast<float>(config_.free_replays);
  double loss_acc = 0.0;
  perturbed_.ensure_shape(batch.images.shape());
  for (std::size_t replay = 0; replay < config_.free_replays; ++replay) {
    // x_adv = clip(x + delta) into the eps-ball and pixel range.
    {
      const float* px = batch.images.raw();
      const float* pd = delta_.raw();
      float* pp = perturbed_.raw();
      for (std::size_t i = 0; i < used; ++i) pp[i] = px[i] + pd[i];
    }
    ops::project_linf(batch.images, config_.eps, attack::kPixelMin,
                      attack::kPixelMax, perturbed_);
    // One backward yields parameter grads AND input grads.
    model_.zero_grad();
    model_.forward_into(perturbed_, logits_scratch_, /*training=*/true);
    nn::softmax_cross_entropy_into(logits_scratch_, batch.labels,
                                   loss_scratch_);
    model_.backward_into(loss_scratch_.grad_logits, grad_in_scratch_);
    apply_step();
    loss_acc += loss_scratch_.value;
    // Ascend the input gradient; keep delta inside the eps box.
    float* pd = delta_.raw();
    const float* pg = grad_in_scratch_.raw();
    for (std::size_t i = 0; i < used; ++i) {
      const float s = (pg[i] > 0.0f) ? 1.0f : (pg[i] < 0.0f ? -1.0f : 0.0f);
      pd[i] = std::clamp(pd[i] + step * s, -config_.eps, config_.eps);
    }
  }
  return static_cast<float>(loss_acc /
                            static_cast<double>(config_.free_replays));
}

}  // namespace satd::core
