#include "core/bim_adv_trainer.h"

#include "attack/bim.h"
#include "common/contract.h"

namespace satd::core {

BimAdvTrainer::BimAdvTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config) {
  SATD_EXPECT(config.bim_iterations > 0, "bim_iterations must be positive");
}

std::string BimAdvTrainer::name() const {
  return "BIM(" + std::to_string(config_.bim_iterations) + ")-Adv";
}

Tensor BimAdvTrainer::make_adversarial_batch(const data::Batch& batch) {
  attack::Bim bim(config_.eps, config_.bim_iterations);
  return bim.perturb(model_, batch.images, batch.labels);
}

}  // namespace satd::core
