#include "core/bim_adv_trainer.h"

#include "common/contract.h"

namespace satd::core {

// The Bim constructor validates config.bim_iterations > 0.
BimAdvTrainer::BimAdvTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config), attack_(config.eps, config.bim_iterations) {}

std::string BimAdvTrainer::name() const {
  return "BIM(" + std::to_string(config_.bim_iterations) + ")-Adv";
}

void BimAdvTrainer::make_adversarial_batch(const data::Batch& batch,
                                           Tensor& adv) {
  attack_.perturb_into(model_, batch.images, batch.labels, adv);
}

}  // namespace satd::core
