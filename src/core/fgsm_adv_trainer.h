// Single-step adversarial training (Goodfellow et al. 2015):
// the paper's "FGSM-Adv" row.
#pragma once

#include "attack/fgsm.h"
#include "core/trainer.h"

namespace satd::core {

/// Trains on a clean + FGSM(eps) mixture. Fast (one extra forward +
/// input-backward per batch) but, as the paper's Figure 1 shows, provides
/// no defense against iterative attacks.
class FgsmAdvTrainer : public Trainer {
 public:
  FgsmAdvTrainer(nn::Sequential& model, TrainConfig config);

  std::string name() const override { return "FGSM-Adv"; }

 protected:
  void make_adversarial_batch(const data::Batch& batch,
                              Tensor& adv) override;

 private:
  attack::Fgsm attack_;  // persistent so its scratch survives batches
};

}  // namespace satd::core
