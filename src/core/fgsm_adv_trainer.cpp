#include "core/fgsm_adv_trainer.h"

namespace satd::core {

FgsmAdvTrainer::FgsmAdvTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config), attack_(config.eps) {}

void FgsmAdvTrainer::make_adversarial_batch(const data::Batch& batch,
                                            Tensor& adv) {
  attack_.perturb_into(model_, batch.images, batch.labels, adv);
}

}  // namespace satd::core
