#include "core/fgsm_adv_trainer.h"

#include "attack/fgsm.h"

namespace satd::core {

FgsmAdvTrainer::FgsmAdvTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config) {}

Tensor FgsmAdvTrainer::make_adversarial_batch(const data::Batch& batch) {
  return attack::Fgsm(config_.eps).perturb(model_, batch.images, batch.labels);
}

}  // namespace satd::core
