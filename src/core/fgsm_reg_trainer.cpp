#include "core/fgsm_reg_trainer.h"

#include "common/contract.h"
#include "core/alp_trainer.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::core {

FgsmRegTrainer::FgsmRegTrainer(nn::Sequential& model, TrainConfig config)
    : Trainer(model, config),
      attack_(config.eps),
      probe_(config.eps, config.fgsm_reg_iterations) {
  SATD_EXPECT(config.fgsm_reg_weight >= 0.0f,
              "fgsm_reg_weight must be non-negative");
  SATD_EXPECT(config.fgsm_reg_iterations > 0,
              "the iterative probe needs at least one iteration");
}

void FgsmRegTrainer::make_adversarial_batch(const data::Batch& batch,
                                            Tensor& adv) {
  attack_.perturb_into(model_, batch.images, batch.labels, adv);
}

float FgsmRegTrainer::train_batch(const data::Batch& batch) {
  make_adversarial_batch(batch, adv_scratch_);
  probe_.perturb_into(model_, batch.images, batch.labels, probe_scratch_);

  model_.forward_into(adv_scratch_, logits_fgsm_, /*training=*/true);
  model_.forward_into(probe_scratch_, logits_probe_, /*training=*/true);

  // grad_clean is the FGSM side (first argument), grad_adv the probe side.
  const LogitPairResult pair = logit_pairing(logits_fgsm_, logits_probe_);
  nn::softmax_cross_entropy_into(logits_fgsm_, batch.labels, ce_fgsm_);

  const float mix = config_.adv_mix;
  const float lambda = config_.fgsm_reg_weight;
  model_.zero_grad();

  // Backward order follows the cache discipline (see alp_trainer.cpp):
  // the layer caches currently match the probe batch, so its side of the
  // pairing gradient goes first; each later backward re-forwards its own
  // batch.
  ops::scale(pair.grad_adv, lambda, grad_side_);
  model_.backward_into(grad_side_, grad_in_scratch_);

  model_.forward_into(adv_scratch_, logits_fgsm_, /*training=*/true);
  ops::scale(ce_fgsm_.grad_logits, mix, grad_side_);
  ops::axpy(lambda, pair.grad_clean, grad_side_);
  model_.backward_into(grad_side_, grad_in_scratch_);

  const float clean_loss =
      accumulate_loss_gradient(batch.images, batch.labels, 1.0f - mix);
  apply_step();

  return (1.0f - mix) * clean_loss + mix * ce_fgsm_.value +
         lambda * pair.value;
}

}  // namespace satd::core
