#include "core/factory.h"

#include <stdexcept>

#include "core/alp_trainer.h"
#include "core/atda_trainer.h"
#include "core/bim_adv_trainer.h"
#include "core/ensemble_adv_trainer.h"
#include "core/fgsm_adv_trainer.h"
#include "core/fgsm_reg_trainer.h"
#include "core/free_adv_trainer.h"
#include "core/pgd_adv_trainer.h"
#include "core/proposed_trainer.h"
#include "core/vanilla_trainer.h"

namespace satd::core {

std::unique_ptr<Trainer> make_trainer(const std::string& method,
                                      nn::Sequential& model,
                                      const TrainConfig& config) {
  if (method == "vanilla") {
    return std::make_unique<VanillaTrainer>(model, config);
  }
  if (method == "fgsm_adv") {
    return std::make_unique<FgsmAdvTrainer>(model, config);
  }
  if (method == "bim_adv") {
    return std::make_unique<BimAdvTrainer>(model, config);
  }
  if (method == "atda") {
    return std::make_unique<AtdaTrainer>(model, config);
  }
  if (method == "proposed") {
    return std::make_unique<ProposedTrainer>(model, config);
  }
  if (method == "pgd_adv") {
    return std::make_unique<PgdAdvTrainer>(model, config);
  }
  if (method == "free_adv") {
    return std::make_unique<FreeAdvTrainer>(model, config);
  }
  if (method == "alp") {
    return std::make_unique<AlpTrainer>(model, config);
  }
  if (method == "ensemble_adv") {
    return std::make_unique<EnsembleAdvTrainer>(model, config);
  }
  if (method == "fgsm_reg") {
    return std::make_unique<FgsmRegTrainer>(model, config);
  }
  // A typo'd method name is a user input error, not a broken internal
  // invariant, so it gets std::invalid_argument with the full menu
  // rather than a contract abort.
  std::string msg = "unknown training method: \"" + method + "\"; known: ";
  bool first = true;
  for (const auto& m : known_methods()) {
    if (!first) msg += ", ";
    msg += m;
    first = false;
  }
  throw std::invalid_argument(msg);
}

bool is_known_method(const std::string& method) {
  for (const auto& m : known_methods()) {
    if (m == method) return true;
  }
  return false;
}

std::vector<std::string> known_methods() {
  return {"vanilla",  "fgsm_adv", "bim_adv", "atda",         "proposed",
          "pgd_adv",  "free_adv", "alp",     "ensemble_adv", "fgsm_reg"};
}

}  // namespace satd::core
