// Inverted dropout.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace satd::nn {

/// Inverted dropout: at train time each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p), so inference needs
/// no rescaling. Uses an owned fork of the model RNG, keeping training
/// runs deterministic.
class Dropout : public Layer {
 public:
  Dropout(float p, Rng& rng);

  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  void release_buffers() override;
  std::string name() const override;
  Shape output_shape(const Shape& input) const override { return input; }

  float probability() const { return p_; }

 private:
  float p_;
  Rng rng_;
  Tensor mask_;       // scaled keep-mask from the last training forward
  bool was_training_ = false;
};

}  // namespace satd::nn
