// Model parameter persistence.
//
// A saved model file holds a metadata string (the zoo spec used to build
// the architecture) followed by every parameter tensor in layer order,
// then every non-trainable state tensor (BatchNorm running statistics —
// format v2, "SATDMDL2"). Loading reconstructs the architecture from the
// spec via the zoo and then restores parameters and state, so a file is
// self-describing. v1 files (parameters only) remain loadable; their
// layers keep init-default state.
//
// Files go through common/durable_io: saves are atomic (temp + fsync +
// rename) and wrapped in a CRC32 frame; loads verify the frame and throw
// durable::CorruptFileError / SerializeError on damage, durable::IoError
// (with path + errno) when the file cannot be opened. Legacy unframed
// files remain loadable.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/sequential.h"

namespace satd::nn {

/// Writes `spec` + all parameters of `model` to a binary stream.
void save_model(std::ostream& os, Sequential& model, const std::string& spec);

/// Saves atomically with checksum framing (throws durable::IoError with
/// path + errno context on I/O failure).
void save_model_file(const std::string& path, Sequential& model,
                     const std::string& spec);

/// Restores parameters into an already-built `model`; returns the stored
/// spec. Shapes must match exactly (throws SerializeError otherwise).
std::string load_parameters(std::istream& is, Sequential& model);

/// Reads only the spec string from a model stream (to build the
/// architecture before calling load_parameters on a fresh stream).
std::string peek_spec_file(const std::string& path);

/// Builds the architecture from the stored spec (via the zoo) and
/// restores its parameters from the file.
Sequential load_model_file(const std::string& path);

}  // namespace satd::nn
