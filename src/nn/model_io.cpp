#include "nn/model_io.h"

#include <sstream>

#include "common/contract.h"
#include "common/durable_io.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd::nn {

namespace {
constexpr char kModelMagic[] = "SATDMDL1";

std::string read_spec(std::istream& is, const std::string& context) {
  char magic[8];
  is.read(magic, 8);
  if (!is || std::string(magic, 8) != kModelMagic) {
    throw SerializeError("bad model magic" +
                         (context.empty() ? "" : " in " + context));
  }
  return read_string(is);
}
}  // namespace

void save_model(std::ostream& os, Sequential& model, const std::string& spec) {
  os.write(kModelMagic, 8);
  write_string(os, spec);
  const auto params = model.parameters();
  write_u64(os, params.size());
  for (Tensor* p : params) write_tensor(os, *p);
}

void save_model_file(const std::string& path, Sequential& model,
                     const std::string& spec) {
  // Atomic + checksummed: a crash mid-save leaves the previous file
  // intact; corruption is detected at load. IoError carries path+errno.
  durable::write_file_checksummed(
      path, [&](std::ostream& os) { save_model(os, model, spec); });
}

std::string load_parameters(std::istream& is, Sequential& model) {
  const std::string spec = read_spec(is, "");
  const std::uint64_t count = read_u64(is);
  const auto params = model.parameters();
  if (count != params.size()) {
    throw SerializeError("parameter count mismatch: file has " +
                         std::to_string(count) + ", model has " +
                         std::to_string(params.size()));
  }
  for (Tensor* p : params) {
    Tensor t = read_tensor(is);
    if (t.shape() != p->shape()) {
      throw SerializeError("parameter shape mismatch: file " +
                           t.shape().to_string() + " vs model " +
                           p->shape().to_string());
    }
    *p = std::move(t);
  }
  return spec;
}

std::string peek_spec_file(const std::string& path) {
  std::istringstream is(durable::read_file_verified(path), std::ios::binary);
  return read_spec(is, path);
}

Sequential load_model_file(const std::string& path) {
  std::istringstream is(durable::read_file_verified(path), std::ios::binary);
  const std::string spec = read_spec(is, path);
  // Weights are overwritten immediately, so the init RNG seed is moot.
  Rng rng(0);
  Sequential model = zoo::build(spec, rng);
  is.seekg(0);
  load_parameters(is, model);
  return model;
}

}  // namespace satd::nn
