#include "nn/model_io.h"

#include <sstream>

#include "common/contract.h"
#include "common/durable_io.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd::nn {

namespace {
// v1 ("SATDMDL1") stored parameters only; v2 appends the non-trainable
// layer state (BatchNorm running statistics), without which a loaded
// cnn_bn normalizes by its init statistics and serves garbage. v1 files
// remain loadable — their state section is simply absent and the
// freshly-built layers keep their init-default state.
constexpr char kModelMagicV1[] = "SATDMDL1";
constexpr char kModelMagicV2[] = "SATDMDL2";

struct SpecHeader {
  std::string spec;
  int version = 2;
};

SpecHeader read_spec(std::istream& is, const std::string& context) {
  char magic[8];
  is.read(magic, 8);
  const std::string tag(magic, is ? 8 : 0);
  SpecHeader h;
  if (tag == kModelMagicV2) {
    h.version = 2;
  } else if (tag == kModelMagicV1) {
    h.version = 1;
  } else {
    throw SerializeError("bad model magic" +
                         (context.empty() ? "" : " in " + context));
  }
  h.spec = read_string(is);
  return h;
}

void load_tensors_into(std::istream& is, const std::vector<Tensor*>& dst,
                       std::uint64_t count, const char* what) {
  if (count != dst.size()) {
    throw SerializeError(std::string(what) + " count mismatch: file has " +
                         std::to_string(count) + ", model has " +
                         std::to_string(dst.size()));
  }
  for (Tensor* p : dst) {
    Tensor t = read_tensor(is);
    if (t.shape() != p->shape()) {
      throw SerializeError(std::string(what) + " shape mismatch: file " +
                           t.shape().to_string() + " vs model " +
                           p->shape().to_string());
    }
    *p = std::move(t);
  }
}
}  // namespace

void save_model(std::ostream& os, Sequential& model, const std::string& spec) {
  os.write(kModelMagicV2, 8);
  write_string(os, spec);
  const auto params = model.parameters();
  write_u64(os, params.size());
  for (Tensor* p : params) write_tensor(os, *p);
  const auto states = model.state_tensors();
  write_u64(os, states.size());
  for (Tensor* s : states) write_tensor(os, *s);
}

void save_model_file(const std::string& path, Sequential& model,
                     const std::string& spec) {
  // Atomic + checksummed: a crash mid-save leaves the previous file
  // intact; corruption is detected at load. IoError carries path+errno.
  durable::write_file_checksummed(
      path, [&](std::ostream& os) { save_model(os, model, spec); });
}

std::string load_parameters(std::istream& is, Sequential& model) {
  const SpecHeader header = read_spec(is, "");
  load_tensors_into(is, model.parameters(), read_u64(is), "parameter");
  if (header.version >= 2) {
    load_tensors_into(is, model.state_tensors(), read_u64(is), "state tensor");
  }
  return header.spec;
}

std::string peek_spec_file(const std::string& path) {
  std::istringstream is(durable::read_file_verified(path), std::ios::binary);
  return read_spec(is, path).spec;
}

Sequential load_model_file(const std::string& path) {
  std::istringstream is(durable::read_file_verified(path), std::ios::binary);
  const SpecHeader header = read_spec(is, path);
  // Weights are overwritten immediately, so the init RNG seed is moot.
  Rng rng(0);
  Sequential model = zoo::build(header.spec, rng);
  is.seekg(0);
  load_parameters(is, model);
  return model;
}

}  // namespace satd::nn
