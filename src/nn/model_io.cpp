#include "nn/model_io.h"

#include <fstream>

#include "common/contract.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd::nn {

namespace {
constexpr char kModelMagic[] = "SATDMDL1";
}

void save_model(std::ostream& os, Sequential& model, const std::string& spec) {
  os.write(kModelMagic, 8);
  write_string(os, spec);
  const auto params = model.parameters();
  write_u64(os, params.size());
  for (Tensor* p : params) write_tensor(os, *p);
}

void save_model_file(const std::string& path, Sequential& model,
                     const std::string& spec) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  save_model(os, model, spec);
  if (!os) throw std::runtime_error("write failed: " + path);
}

std::string load_parameters(std::istream& is, Sequential& model) {
  char magic[8];
  is.read(magic, 8);
  if (!is || std::string(magic, 8) != kModelMagic) {
    throw SerializeError("bad model magic");
  }
  const std::string spec = read_string(is);
  const std::uint64_t count = read_u64(is);
  const auto params = model.parameters();
  if (count != params.size()) {
    throw SerializeError("parameter count mismatch: file has " +
                         std::to_string(count) + ", model has " +
                         std::to_string(params.size()));
  }
  for (Tensor* p : params) {
    Tensor t = read_tensor(is);
    if (t.shape() != p->shape()) {
      throw SerializeError("parameter shape mismatch: file " +
                           t.shape().to_string() + " vs model " +
                           p->shape().to_string());
    }
    *p = std::move(t);
  }
  return spec;
}

std::string peek_spec_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  char magic[8];
  is.read(magic, 8);
  if (!is || std::string(magic, 8) != kModelMagic) {
    throw SerializeError("bad model magic in " + path);
  }
  return read_string(is);
}

Sequential load_model_file(const std::string& path) {
  const std::string spec = peek_spec_file(path);
  // Weights are overwritten immediately, so the init RNG seed is moot.
  Rng rng(0);
  Sequential model = zoo::build(spec, rng);
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  load_parameters(is, model);
  return model;
}

}  // namespace satd::nn
