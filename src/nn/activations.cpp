#include "nn/activations.h"

#include <cmath>

#include "common/contract.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace satd::nn {

void ReLU::forward_into(const Tensor& x, Tensor& out, bool /*training*/) {
  ops::copy(x, x_cache_);
  out.ensure_shape(x.shape());
  const float* px = x.raw();
  float* po = out.raw();
  parallel_for(x.numel(), kElementGrain,
               [px, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   po[i] = px[i] > 0.0f ? px[i] : 0.0f;
                 }
               });
  note_forward();
}

void ReLU::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("ReLU");
  SATD_EXPECT(grad_out.shape() == x_cache_.shape(),
              "ReLU backward: grad shape mismatch");
  grad_in.ensure_shape(grad_out.shape());
  const float* px = x_cache_.raw();
  const float* pg = grad_out.raw();
  float* po = grad_in.raw();
  parallel_for(grad_in.numel(), kElementGrain,
               [px, pg, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
                 }
               });
}

void ReLU::release_buffers() {
  Layer::release_buffers();
  x_cache_ = Tensor();
}

void Tanh::forward_into(const Tensor& x, Tensor& out, bool /*training*/) {
  out.ensure_shape(x.shape());
  const float* px = x.raw();
  float* po = out.raw();
  // tanh is by far the costliest elementwise op, so use a finer grain.
  parallel_for(x.numel(), kElementGrain / 8,
               [px, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i)
                   po[i] = std::tanh(px[i]);
               });
  ops::copy(out, y_cache_);
  note_forward();
}

void Tanh::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("Tanh");
  SATD_EXPECT(grad_out.shape() == y_cache_.shape(),
              "Tanh backward: grad shape mismatch");
  grad_in.ensure_shape(grad_out.shape());
  const float* py = y_cache_.raw();
  const float* pg = grad_out.raw();
  float* po = grad_in.raw();
  parallel_for(grad_in.numel(), kElementGrain,
               [py, pg, po](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   po[i] = pg[i] * (1.0f - py[i] * py[i]);
                 }
               });
}

void Tanh::release_buffers() {
  Layer::release_buffers();
  y_cache_ = Tensor();
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope) {
  SATD_EXPECT(slope >= 0.0f && slope < 1.0f, "slope must be in [0, 1)");
}

void LeakyReLU::forward_into(const Tensor& x, Tensor& out,
                             bool /*training*/) {
  ops::copy(x, x_cache_);
  out.ensure_shape(x.shape());
  const float* px = x.raw();
  float* po = out.raw();
  const float slope = slope_;
  parallel_for(x.numel(), kElementGrain,
               [px, po, slope](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   po[i] = px[i] > 0.0f ? px[i] : slope * px[i];
                 }
               });
  note_forward();
}

void LeakyReLU::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("LeakyReLU");
  SATD_EXPECT(grad_out.shape() == x_cache_.shape(),
              "LeakyReLU backward: grad shape mismatch");
  grad_in.ensure_shape(grad_out.shape());
  const float* px = x_cache_.raw();
  const float* pg = grad_out.raw();
  float* po = grad_in.raw();
  const float slope = slope_;
  parallel_for(grad_in.numel(), kElementGrain,
               [px, pg, po, slope](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   po[i] = px[i] > 0.0f ? pg[i] : slope * pg[i];
                 }
               });
}

void LeakyReLU::release_buffers() {
  Layer::release_buffers();
  x_cache_ = Tensor();
}

std::string LeakyReLU::name() const {
  return "LeakyReLU(" + std::to_string(slope_) + ")";
}

}  // namespace satd::nn
