#include "nn/activations.h"

#include <cmath>

#include "common/contract.h"

namespace satd::nn {

Tensor ReLU::forward(const Tensor& x, bool /*training*/) {
  x_cache_ = x;
  Tensor out(x.shape());
  const float* px = x.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = x.numel(); i < n; ++i) {
    po[i] = px[i] > 0.0f ? px[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  SATD_EXPECT(!x_cache_.empty(), "ReLU backward before forward");
  SATD_EXPECT(grad_out.shape() == x_cache_.shape(),
              "ReLU backward: grad shape mismatch");
  Tensor gx(grad_out.shape());
  const float* px = x_cache_.raw();
  const float* pg = grad_out.raw();
  float* po = gx.raw();
  for (std::size_t i = 0, n = gx.numel(); i < n; ++i) {
    po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
  }
  return gx;
}

Tensor Tanh::forward(const Tensor& x, bool /*training*/) {
  Tensor out(x.shape());
  const float* px = x.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = x.numel(); i < n; ++i) po[i] = std::tanh(px[i]);
  y_cache_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  SATD_EXPECT(!y_cache_.empty(), "Tanh backward before forward");
  SATD_EXPECT(grad_out.shape() == y_cache_.shape(),
              "Tanh backward: grad shape mismatch");
  Tensor gx(grad_out.shape());
  const float* py = y_cache_.raw();
  const float* pg = grad_out.raw();
  float* po = gx.raw();
  for (std::size_t i = 0, n = gx.numel(); i < n; ++i) {
    po[i] = pg[i] * (1.0f - py[i] * py[i]);
  }
  return gx;
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope) {
  SATD_EXPECT(slope >= 0.0f && slope < 1.0f, "slope must be in [0, 1)");
}

Tensor LeakyReLU::forward(const Tensor& x, bool /*training*/) {
  x_cache_ = x;
  Tensor out(x.shape());
  const float* px = x.raw();
  float* po = out.raw();
  for (std::size_t i = 0, n = x.numel(); i < n; ++i) {
    po[i] = px[i] > 0.0f ? px[i] : slope_ * px[i];
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  SATD_EXPECT(!x_cache_.empty(), "LeakyReLU backward before forward");
  SATD_EXPECT(grad_out.shape() == x_cache_.shape(),
              "LeakyReLU backward: grad shape mismatch");
  Tensor gx(grad_out.shape());
  const float* px = x_cache_.raw();
  const float* pg = grad_out.raw();
  float* po = gx.raw();
  for (std::size_t i = 0, n = gx.numel(); i < n; ++i) {
    po[i] = px[i] > 0.0f ? pg[i] : slope_ * pg[i];
  }
  return gx;
}

std::string LeakyReLU::name() const {
  return "LeakyReLU(" + std::to_string(slope_) + ")";
}

}  // namespace satd::nn
