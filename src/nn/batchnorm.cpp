#include "nn/batchnorm.h"

#include <cmath>

#include "common/contract.h"

namespace satd::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::full(Shape{channels}, 1.0f)),
      beta_(Shape{channels}),
      ggamma_(Shape{channels}),
      gbeta_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Tensor::full(Shape{channels}, 1.0f)) {
  SATD_EXPECT(channels > 0, "channels must be positive");
  SATD_EXPECT(momentum > 0.0f && momentum <= 1.0f,
              "momentum must be in (0,1]");
  SATD_EXPECT(eps > 0.0f, "eps must be positive");
}

void BatchNorm2d::forward_into(const Tensor& x, Tensor& out, bool training) {
  SATD_EXPECT(x.shape().rank() == 4 && x.shape()[1] == channels_,
              "BatchNorm2d expects [N, " + std::to_string(channels_) +
                  ", H, W]");
  const std::size_t n = x.shape()[0];
  const std::size_t h = x.shape()[2];
  const std::size_t w = x.shape()[3];
  const std::size_t plane = h * w;
  const std::size_t m = n * plane;  // elements per channel
  SATD_EXPECT(!training || m >= 2,
              "BatchNorm2d training needs >= 2 elements per channel");

  in_shape_ = x.shape();
  cached_training_ = training;
  x_hat_.ensure_shape(x.shape());
  inv_std_.ensure_shape(Shape{channels_});
  out.ensure_shape(x.shape());

  const float* px = x.raw();
  float* pxh = x_hat_.raw();
  float* po = out.raw();
  for (std::size_t c = 0; c < channels_; ++c) {
    float mean, var;
    if (training) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const float* p = px + (i * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) acc += p[j];
      }
      mean = static_cast<float>(acc / static_cast<double>(m));
      double vacc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const float* p = px + (i * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) {
          const double d = p[j] - mean;
          vacc += d * d;
        }
      }
      var = static_cast<float>(vacc / static_cast<double>(m));  // biased
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv = 1.0f / std::sqrt(var + eps_);
    inv_std_[c] = inv;
    const float g = gamma_[c];
    const float b = beta_[c];
    for (std::size_t i = 0; i < n; ++i) {
      const float* p = px + (i * channels_ + c) * plane;
      float* xh = pxh + (i * channels_ + c) * plane;
      float* o = po + (i * channels_ + c) * plane;
      for (std::size_t j = 0; j < plane; ++j) {
        xh[j] = (p[j] - mean) * inv;
        o[j] = g * xh[j] + b;
      }
    }
  }
  note_forward();
}

void BatchNorm2d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("BatchNorm2d");
  SATD_EXPECT(in_shape_.rank() == 4, "BatchNorm2d backward before forward");
  SATD_EXPECT(grad_out.shape() == in_shape_, "grad shape mismatch");
  const std::size_t n = in_shape_[0];
  const std::size_t plane = in_shape_[2] * in_shape_[3];
  const std::size_t m = n * plane;

  grad_in.ensure_shape(in_shape_);
  const float* pg = grad_out.raw();
  const float* pxh = x_hat_.raw();
  float* pgx = grad_in.raw();
  for (std::size_t c = 0; c < channels_; ++c) {
    // Accumulate dgamma = Σ g·x̂ and dbeta = Σ g for the channel.
    double sum_g = 0.0, sum_gxh = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* g = pg + (i * channels_ + c) * plane;
      const float* xh = pxh + (i * channels_ + c) * plane;
      for (std::size_t j = 0; j < plane; ++j) {
        sum_g += g[j];
        sum_gxh += static_cast<double>(g[j]) * xh[j];
      }
    }
    ggamma_[c] += static_cast<float>(sum_gxh);
    gbeta_[c] += static_cast<float>(sum_g);

    const float scale = gamma_[c] * inv_std_[c];
    if (cached_training_) {
      // Exact backward through the batch statistics:
      // dx = (γ/σ) (g − mean(g) − x̂ · mean(g·x̂))
      const float mean_g = static_cast<float>(sum_g / static_cast<double>(m));
      const float mean_gxh =
          static_cast<float>(sum_gxh / static_cast<double>(m));
      for (std::size_t i = 0; i < n; ++i) {
        const float* g = pg + (i * channels_ + c) * plane;
        const float* xh = pxh + (i * channels_ + c) * plane;
        float* out = pgx + (i * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) {
          out[j] = scale * (g[j] - mean_g - xh[j] * mean_gxh);
        }
      }
    } else {
      // Inference statistics are constants: dx = γ/σ_running · g. This is
      // the path adversarial attacks differentiate through.
      for (std::size_t i = 0; i < n; ++i) {
        const float* g = pg + (i * channels_ + c) * plane;
        float* out = pgx + (i * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) out[j] = scale * g[j];
      }
    }
  }
}

void BatchNorm2d::release_buffers() {
  Layer::release_buffers();
  x_hat_ = Tensor();
  inv_std_ = Tensor();
  in_shape_ = Shape{};
}

std::string BatchNorm2d::name() const {
  return "BatchNorm2d(" + std::to_string(channels_) + ")";
}

Shape BatchNorm2d::output_shape(const Shape& input) const {
  SATD_EXPECT(input.rank() == 3 && input[0] == channels_,
              "BatchNorm2d expects a [C, H, W] input shape");
  return input;
}

}  // namespace satd::nn
