#include "nn/dropout.h"

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::nn {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.fork(0xD209)) {
  SATD_EXPECT(p >= 0.0f && p < 1.0f, "dropout p must be in [0, 1)");
}

void Dropout::forward_into(const Tensor& x, Tensor& out, bool training) {
  was_training_ = training;
  if (!training || p_ == 0.0f) {
    ops::copy(x, out);
    note_forward();
    return;
  }
  const float keep_scale = 1.0f / (1.0f - p_);
  mask_.ensure_shape(x.shape());
  float* pm = mask_.raw();
  for (std::size_t i = 0, n = x.numel(); i < n; ++i) {
    pm[i] = rng_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  ops::mul(x, mask_, out);
  note_forward();
}

void Dropout::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("Dropout");
  if (!was_training_ || p_ == 0.0f) {
    ops::copy(grad_out, grad_in);
    return;
  }
  SATD_EXPECT(grad_out.shape() == mask_.shape(),
              "Dropout backward: grad shape mismatch");
  ops::mul(grad_out, mask_, grad_in);
}

void Dropout::release_buffers() {
  Layer::release_buffers();
  mask_ = Tensor();
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(p_) + ")";
}

}  // namespace satd::nn
