#include "nn/dropout.h"

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::nn {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.fork(0xD209)) {
  SATD_EXPECT(p >= 0.0f && p < 1.0f, "dropout p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  was_training_ = training;
  if (!training || p_ == 0.0f) {
    return x;
  }
  const float keep_scale = 1.0f / (1.0f - p_);
  mask_ = Tensor(x.shape());
  float* pm = mask_.raw();
  for (std::size_t i = 0, n = x.numel(); i < n; ++i) {
    pm[i] = rng_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  return ops::mul(x, mask_);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!was_training_ || p_ == 0.0f) {
    return grad_out;
  }
  SATD_EXPECT(grad_out.shape() == mask_.shape(),
              "Dropout backward: grad shape mismatch");
  return ops::mul(grad_out, mask_);
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(p_) + ")";
}

}  // namespace satd::nn
