// Learning-rate schedules.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace satd::nn {

/// Maps an epoch index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use during `epoch` (0-based).
  virtual double rate(std::size_t epoch) const = 0;
  virtual std::string name() const = 0;
};

/// Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr);
  double rate(std::size_t epoch) const override;
  std::string name() const override { return "constant"; }

 private:
  double lr_;
};

/// Multiplies the rate by `gamma` every `step` epochs.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(double base, double gamma, std::size_t step);
  double rate(std::size_t epoch) const override;
  std::string name() const override { return "step-decay"; }

 private:
  double base_, gamma_;
  std::size_t step_;
};

/// Half-cosine decay from `base` to `floor` over `total_epochs`.
class CosineLr : public LrSchedule {
 public:
  CosineLr(double base, double floor, std::size_t total_epochs);
  double rate(std::size_t epoch) const override;
  std::string name() const override { return "cosine"; }

 private:
  double base_, floor_;
  std::size_t total_;
};

}  // namespace satd::nn
