// Loss functions.
//
// Softmax cross-entropy is the training loss for every method in the
// paper; it is fused (softmax + log + NLL in one pass) for numerical
// stability, and its gradient w.r.t. logits is the textbook
// (softmax - onehot) / N.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace satd::nn {

/// Result of a loss evaluation over a batch.
struct LossResult {
  float value = 0.0f;    ///< mean loss over the batch
  Tensor grad_logits;    ///< dLoss/dLogits, shape [N, K]
};

/// Row-wise softmax of logits [N, K] (numerically stabilized).
Tensor softmax(const Tensor& logits);

/// Out-parameter softmax: `out` is resized in place on shape change and
/// reused otherwise. `out` must not alias `logits`.
void softmax_into(const Tensor& logits, Tensor& out);

/// Mean softmax cross-entropy of logits [N, K] against integer labels.
/// The returned gradient is for the MEAN loss (already divided by N).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::size_t> labels);

/// Out-parameter cross-entropy: writes the loss value and gradient into
/// `res`, reusing res.grad_logits across batches. The buffer-reuse form
/// for steady-state training and attack loops.
void softmax_cross_entropy_into(const Tensor& logits,
                                std::span<const std::size_t> labels,
                                LossResult& res);

/// Loss value only (no gradient); used by evaluation loops.
float softmax_cross_entropy_value(const Tensor& logits,
                                  std::span<const std::size_t> labels);

/// Label-smoothed cross-entropy: targets are
/// (1 - alpha) * onehot + alpha / K. alpha = 0 reduces to the plain
/// loss; alpha in (0, 1] regularizes over-confident logits (one of the
/// regularization defenses the paper's related work surveys).
LossResult softmax_cross_entropy_smoothed(const Tensor& logits,
                                          std::span<const std::size_t> labels,
                                          float alpha);

/// Out-parameter variant of the smoothed loss (same reuse semantics as
/// softmax_cross_entropy_into).
void softmax_cross_entropy_smoothed_into(const Tensor& logits,
                                         std::span<const std::size_t> labels,
                                         float alpha, LossResult& res);

/// Value-only variant of the smoothed loss.
float softmax_cross_entropy_smoothed_value(
    const Tensor& logits, std::span<const std::size_t> labels, float alpha);

/// Fraction of rows whose argmax equals the label.
float accuracy(const Tensor& logits, std::span<const std::size_t> labels);

}  // namespace satd::nn
