// Int8 fixed-point inference-only forward path.
//
// A QuantizedModel is a frozen, inference-mode view of a trained
// Sequential: every GEMM-backed layer's weights are quantized once
// (per-tensor symmetric int8, scale = max|w| / 127, no zero point) and
// the heavy matrix multiplies run through kernel::gemm_s8 with exact
// int32 accumulation. Everything between the GEMMs stays float — this is
// classic dynamic quantization: activations are re-quantized on the fly
// right before each int8 GEMM and the accumulator is immediately
// dequantized back to float, so cheap layers (ReLU, pooling, the folded
// BatchNorm affine) and the logits keep full precision. Training is
// untouched; a QuantizedModel holds no gradients and no layer caches.
//
// Activation quantization is PER ROW of the GEMM operand (one image row
// for Dense, one output pixel's im2col patch for Conv). A row's scale
// depends only on that row's values, never on its batch neighbours, so a
// request served in a batch of 32 gets bit-identical results to the same
// request served alone — the invariant the serving stack pins for the
// float path carries over to the quantized path unchanged. Combined with
// the exact int32 accumulation of gemm_s8, quantized inference is also
// bit-identical across thread counts and across microkernels.
//
// Thread model: QuantizedModel is immutable after construction and safe
// to share across serving workers (unlike Sequential, whose forward
// mutates layer caches). All mutable forward state lives in a caller-
// owned QuantizedWorkspace, one per worker/evaluation loop.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace satd::nn {

/// Per-tensor symmetric int8 quantization: real = scale * q.
struct QuantizedTensor {
  Shape shape;
  std::vector<std::int8_t> q;
  float scale = 1.0f;
};

/// Quantizes `t` with scale = max|t| / 127 (scale 1 for an all-zero
/// tensor). Values round to nearest; the result always fits [-127, 127].
void quantize_symmetric(const Tensor& t, QuantizedTensor& out);

/// One step of the quantized forward program. A tagged struct rather
/// than a class hierarchy: the op set is closed (it mirrors the zoo's
/// layer vocabulary) and the forward loop is a simple switch.
struct QuantizedOp {
  enum class Kind {
    kDense,      ///< int8 GEMM vs w [in, out], + float bias
    kConv,       ///< im2col + int8 GEMM vs w [patch, out_c], + float bias
    kAffine,     ///< folded BatchNorm: y = ch_scale[c] * x + ch_shift[c]
    kReLU,
    kLeakyReLU,  ///< slope
    kTanh,
    kMaxPool,    ///< window
    kFlatten,
    kIdentity,   ///< inference no-ops (Dropout)
  };

  Kind kind = Kind::kIdentity;
  QuantizedTensor w;  ///< kDense: [in, out]; kConv: [patch, out_c]
                      ///< (the conv filter bank is pre-transposed at
                      ///< quantize time so both GEMMs are plain NN)
  Tensor bias;        ///< float, [out] / [out_c]
  std::size_t in_c = 0, out_c = 0, kernel = 0, padding = 0;  // kConv
  Tensor ch_scale, ch_shift;  ///< kAffine, [C] each
  float slope = 0.0f;         ///< kLeakyReLU
  std::size_t window = 0;     ///< kMaxPool
};

/// Per-caller mutable forward state: ping-pong float activations, the
/// im2col scratch and the int8/int32 GEMM operand buffers. Reused across
/// batches (resize-on-shape-change), so steady-state quantized serving
/// allocates nothing.
struct QuantizedWorkspace {
  Tensor ping, pong;
  Tensor cols;
  std::vector<std::int8_t> qx;
  std::vector<float> row_scale;
  std::vector<std::int32_t> acc;
};

/// Immutable quantized snapshot of a Sequential (see file comment).
class QuantizedModel {
 public:
  /// Quantizes every layer of `model`. BatchNorm folds its running
  /// statistics into a per-channel affine (inference mode); Dropout
  /// becomes a no-op. Throws ContractViolation for a layer outside the
  /// zoo vocabulary. `model` is only read (non-const because layer
  /// accessors are non-const).
  static QuantizedModel from(Sequential& model);

  /// Inference forward: `x` is a [N, ...] batch, logits land in `out`.
  /// Safe to call concurrently from many threads, each with its own `ws`.
  void forward_into(const Tensor& x, Tensor& out,
                    QuantizedWorkspace& ws) const;

  std::size_t op_count() const { return ops_.size(); }
  const QuantizedOp& op(std::size_t i) const { return ops_[i]; }

 private:
  std::vector<QuantizedOp> ops_;
};

}  // namespace satd::nn
