#include "nn/optimizer.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/contract.h"
#include "tensor/serialize.h"

namespace satd::nn {

Optimizer::Optimizer(double lr) : lr_(lr) {
  SATD_EXPECT(lr > 0.0, "learning rate must be positive");
}

void Optimizer::set_learning_rate(double lr) {
  SATD_EXPECT(lr > 0.0, "learning rate must be positive");
  lr_ = lr;
}

namespace {
void check_lists(const std::vector<Tensor*>& params,
                 const std::vector<Tensor*>& grads) {
  SATD_EXPECT(params.size() == grads.size(),
              "parameter/gradient list size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    SATD_EXPECT(params[i] != nullptr && grads[i] != nullptr,
                "null parameter or gradient");
    SATD_EXPECT(params[i]->shape() == grads[i]->shape(),
                "parameter/gradient shape mismatch");
  }
}
}  // namespace

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {
  SATD_EXPECT(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
  SATD_EXPECT(weight_decay >= 0.0, "weight decay must be non-negative");
}

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  check_lists(params, grads);
  const float wd = static_cast<float>(weight_decay_);
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      float* p = params[i]->raw();
      const float* g = grads[i]->raw();
      const float lr = static_cast<float>(lr_);
      for (std::size_t j = 0, n = params[i]->numel(); j < n; ++j) {
        p[j] -= lr * (g[j] + wd * p[j]);
      }
    }
    return;
  }
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  SATD_EXPECT(velocity_.size() == params.size(),
              "optimizer reused with a different model");
  const float mu = static_cast<float>(momentum_);
  const float lr = static_cast<float>(lr_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->raw();
    const float* g = grads[i]->raw();
    float* v = velocity_[i].raw();
    for (std::size_t j = 0, n = params[i]->numel(); j < n; ++j) {
      v[j] = mu * v[j] + g[j] + wd * p[j];
      p[j] -= lr * v[j];
    }
  }
}

std::string Sgd::name() const {
  return momentum_ == 0.0 ? "SGD" : "SGD(momentum)";
}

void Sgd::save_state(std::ostream& os) const {
  write_string(os, "sgd");
  write_u64(os, velocity_.size());
  for (const Tensor& v : velocity_) write_tensor(os, v);
}

void Sgd::load_state(std::istream& is) {
  const std::string tag = read_string(is);
  if (tag != "sgd") throw SerializeError("optimizer state is not SGD");
  const std::uint64_t count = read_u64(is);
  velocity_.clear();
  velocity_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    velocity_.push_back(read_tensor(is));
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : Optimizer(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  SATD_EXPECT(beta1 >= 0.0 && beta1 < 1.0, "beta1 must be in [0,1)");
  SATD_EXPECT(beta2 >= 0.0 && beta2 < 1.0, "beta2 must be in [0,1)");
  SATD_EXPECT(eps > 0.0, "eps must be positive");
  SATD_EXPECT(weight_decay >= 0.0, "weight decay must be non-negative");
}

void Adam::step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  check_lists(params, grads);
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  SATD_EXPECT(m_.size() == params.size(),
              "optimizer reused with a different model");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(eps_);
  const float decay = static_cast<float>(lr_ * weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->raw();
    const float* g = grads[i]->raw();
    float* m = m_[i].raw();
    float* v = v_[i].raw();
    for (std::size_t j = 0, n = params[i]->numel(); j < n; ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      p[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps) + decay * p[j];
    }
  }
}

void Adam::save_state(std::ostream& os) const {
  write_string(os, "adam");
  write_u64(os, t_);
  write_u64(os, m_.size());
  for (const Tensor& m : m_) write_tensor(os, m);
  for (const Tensor& v : v_) write_tensor(os, v);
}

void Adam::load_state(std::istream& is) {
  const std::string tag = read_string(is);
  if (tag != "adam") throw SerializeError("optimizer state is not Adam");
  t_ = static_cast<std::size_t>(read_u64(is));
  const std::uint64_t count = read_u64(is);
  m_.clear();
  v_.clear();
  m_.reserve(count);
  v_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) m_.push_back(read_tensor(is));
  for (std::uint64_t i = 0; i < count; ++i) v_.push_back(read_tensor(is));
}

}  // namespace satd::nn
