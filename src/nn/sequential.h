// Sequential model: an owned chain of layers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace satd::nn {

/// Feed-forward model composed of layers executed in order.
///
/// Owns its layers. Provides the two passes the rest of the library
/// needs: forward (logits for a batch) and backward (parameter-gradient
/// accumulation + dLoss/dInput, the quantity attacks consume).
class Sequential {
 public:
  Sequential() = default;

  /// Moves a layer onto the end of the chain; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Emplace-style helper: model.emplace<Dense>(784, 256, rng).
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Runs the full forward pass. `training` enables train-only layers.
  /// Value-returning wrapper over forward_into (allocates the result).
  Tensor forward(const Tensor& x, bool training = false);

  /// Back-propagates from dLoss/dLogits; accumulates parameter gradients
  /// in every layer and returns dLoss/dInput. Wrapper over backward_into.
  Tensor backward(const Tensor& grad_logits);

  /// Allocation-free forward: intermediate activations flow through a
  /// persistent tape reused across batches; the logits land in `out`
  /// (resized on shape change, reused otherwise). `out` must not alias
  /// `x` or a tensor the model caches.
  void forward_into(const Tensor& x, Tensor& out, bool training = false);

  /// Allocation-free backward: intermediate gradients flow through a
  /// persistent tape; dLoss/dInput lands in `grad_in`. `grad_in` must
  /// not alias `grad_logits`.
  void backward_into(const Tensor& grad_logits, Tensor& grad_in);

  /// Releases every layer's scratch plus both tapes (all regrow on the
  /// next pass). For idle models and cold-buffer benchmarking.
  void release_buffers();

  /// All trainable parameters / their gradient buffers, in layer order.
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  /// Non-trainable persistent layer state (BatchNorm running statistics
  /// and the like), in layer order; serialized alongside parameters.
  std::vector<Tensor*> state_tensors();

  /// Total number of trainable scalars.
  std::size_t parameter_count() const;

  /// Zeroes every gradient buffer.
  void zero_grad();

  /// Per-example output shape for a given per-example input shape;
  /// validates the whole chain.
  Shape output_shape(const Shape& input) const;

  /// Multi-line human-readable structure summary.
  std::string summary(const Shape& input) const;

 private:
  std::vector<LayerPtr> layers_;
  // Persistent inter-layer buffers: act_tape_[i] holds the output of
  // layer i (the last layer writes the caller's `out`), grad_tape_[i]
  // holds dLoss/d(input of layer i+1) (layer 0 writes the caller's
  // `grad_in`). Sized on first use, reused across batches.
  std::vector<Tensor> act_tape_;
  std::vector<Tensor> grad_tape_;
};

}  // namespace satd::nn
