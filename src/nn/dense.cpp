#include "nn/dense.h"

#include <cmath>

#include "common/contract.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace satd::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_(Shape{in_features, out_features}),
      b_(Shape{out_features}),
      gw_(Shape{in_features, out_features}),
      gb_(Shape{out_features}) {
  SATD_EXPECT(in_features > 0 && out_features > 0,
              "Dense dimensions must be positive");
  init::he_normal(w_, in_features, rng);
}

void Dense::forward_into(const Tensor& x, Tensor& out, bool /*training*/) {
  SATD_EXPECT(x.shape().rank() == 2 && x.shape()[1] == in_,
              "Dense forward: expected [N, " + std::to_string(in_) +
                  "], got " + x.shape().to_string());
  ops::copy(x, x_cache_);
  ops::matmul(x, w_, out);
  ops::add_row_bias(out, b_, out);
  note_forward();
}

void Dense::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("Dense");
  SATD_EXPECT((grad_out.shape() == Shape{x_cache_.shape()[0], out_}),
              "Dense backward: grad shape mismatch");
  // gW += xᵀ·g ; gb += Σ_rows g ; gx = g·Wᵀ
  ops::matmul_tn(x_cache_, grad_out, gw_batch_);
  ops::axpy(1.0f, gw_batch_, gw_);
  ops::sum_rows(grad_out, gb_batch_);
  ops::axpy(1.0f, gb_batch_, gb_);
  ops::matmul_nt(grad_out, w_, grad_in);
}

void Dense::release_buffers() {
  Layer::release_buffers();
  x_cache_ = Tensor();
  gw_batch_ = Tensor();
  gb_batch_ = Tensor();
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

Shape Dense::output_shape(const Shape& input) const {
  SATD_EXPECT(input.rank() == 1 && input[0] == in_,
              "Dense expects a flat input of width " + std::to_string(in_));
  return Shape{out_};
}

}  // namespace satd::nn
