#include "nn/schedule.h"

#include <cmath>
#include <numbers>

#include "common/contract.h"

namespace satd::nn {

ConstantLr::ConstantLr(double lr) : lr_(lr) {
  SATD_EXPECT(lr > 0.0, "learning rate must be positive");
}

double ConstantLr::rate(std::size_t /*epoch*/) const { return lr_; }

StepDecayLr::StepDecayLr(double base, double gamma, std::size_t step)
    : base_(base), gamma_(gamma), step_(step) {
  SATD_EXPECT(base > 0.0, "base rate must be positive");
  SATD_EXPECT(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
  SATD_EXPECT(step > 0, "step must be positive");
}

double StepDecayLr::rate(std::size_t epoch) const {
  return base_ * std::pow(gamma_, static_cast<double>(epoch / step_));
}

CosineLr::CosineLr(double base, double floor, std::size_t total_epochs)
    : base_(base), floor_(floor), total_(total_epochs) {
  SATD_EXPECT(base > 0.0 && floor >= 0.0 && floor <= base,
              "cosine schedule needs 0 <= floor <= base");
  SATD_EXPECT(total_epochs > 0, "total_epochs must be positive");
}

double CosineLr::rate(std::size_t epoch) const {
  if (epoch >= total_) return floor_;
  const double t = static_cast<double>(epoch) / static_cast<double>(total_);
  return floor_ + 0.5 * (base_ - floor_) * (1.0 + std::cos(std::numbers::pi * t));
}

}  // namespace satd::nn
