// 2x2 (configurable) max pooling with stride equal to the window.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace satd::nn {

/// Non-overlapping max pooling over [N, C, H, W]. H and W must be
/// divisible by the window (the paper's 28x28 models pool even extents).
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window = 2);

  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;

  void release_buffers() override;

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;

  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  // Flat input index of each pooled maximum, one per output element.
  std::vector<std::size_t> argmax_;
  Shape in_shape_;
};

}  // namespace satd::nn
