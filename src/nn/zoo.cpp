#include "nn/zoo.h"

#include "common/contract.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"

namespace satd::nn::zoo {

Shape input_shape() { return Shape{kImageChannels, kImageSize, kImageSize}; }

Sequential build(const std::string& spec, Rng& rng) {
  // Note on geometry: starting at 28x28, conv k3 p0 gives 26 -> pool 13.
  // 13 is odd, so the second stage uses conv k4 p0 (13 -> 10) before
  // pooling to 5. This keeps every pooled extent exact.
  if (spec == "cnn_small") {
    Sequential m;
    m.emplace<Conv2d>(kImageChannels, 4, 3, 0, rng);  // [4, 26, 26]
    m.emplace<ReLU>();
    m.emplace<MaxPool2d>(2);                          // [4, 13, 13]
    m.emplace<Conv2d>(4, 8, 4, 0, rng);               // [8, 10, 10]
    m.emplace<ReLU>();
    m.emplace<MaxPool2d>(2);                          // [8, 5, 5]
    m.emplace<Flatten>();                             // [200]
    m.emplace<Dense>(200, 32, rng);
    m.emplace<ReLU>();
    m.emplace<Dense>(32, kNumClasses, rng);
    return m;
  }
  if (spec == "cnn_paper") {
    Sequential m;
    m.emplace<Conv2d>(kImageChannels, 8, 3, 0, rng);  // [8, 26, 26]
    m.emplace<ReLU>();
    m.emplace<MaxPool2d>(2);                          // [8, 13, 13]
    m.emplace<Conv2d>(8, 16, 4, 0, rng);              // [16, 10, 10]
    m.emplace<ReLU>();
    m.emplace<MaxPool2d>(2);                          // [16, 5, 5]
    m.emplace<Flatten>();                             // [400]
    m.emplace<Dense>(400, 64, rng);
    m.emplace<ReLU>();
    m.emplace<Dense>(64, kNumClasses, rng);
    return m;
  }
  if (spec == "cnn_bn") {
    Sequential m;
    m.emplace<Conv2d>(kImageChannels, 4, 3, 0, rng);  // [4, 26, 26]
    m.emplace<BatchNorm2d>(4);
    m.emplace<ReLU>();
    m.emplace<MaxPool2d>(2);                          // [4, 13, 13]
    m.emplace<Conv2d>(4, 8, 4, 0, rng);               // [8, 10, 10]
    m.emplace<BatchNorm2d>(8);
    m.emplace<ReLU>();
    m.emplace<MaxPool2d>(2);                          // [8, 5, 5]
    m.emplace<Flatten>();                             // [200]
    m.emplace<Dense>(200, 32, rng);
    m.emplace<ReLU>();
    m.emplace<Dense>(32, kNumClasses, rng);
    return m;
  }
  if (spec == "mlp") {
    Sequential m;
    m.emplace<Flatten>();
    m.emplace<Dense>(kImageSize * kImageSize, 256, rng);
    m.emplace<ReLU>();
    m.emplace<Dense>(256, 128, rng);
    m.emplace<ReLU>();
    m.emplace<Dense>(128, kNumClasses, rng);
    return m;
  }
  if (spec == "mlp_small") {
    Sequential m;
    m.emplace<Flatten>();
    m.emplace<Dense>(kImageSize * kImageSize, 64, rng);
    m.emplace<ReLU>();
    m.emplace<Dense>(64, kNumClasses, rng);
    return m;
  }
  SATD_EXPECT(false, "unknown model spec: " + spec);
  return Sequential{};  // unreachable
}

bool is_known_spec(const std::string& spec) {
  for (const auto& s : known_specs()) {
    if (s == spec) return true;
  }
  return false;
}

std::vector<std::string> known_specs() {
  return {"cnn_small", "cnn_paper", "cnn_bn", "mlp", "mlp_small"};
}

}  // namespace satd::nn::zoo
