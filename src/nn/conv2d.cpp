#include "nn/conv2d.h"

#include "common/contract.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace satd::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding, Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      padding_(padding),
      w_(Shape{out_channels, in_channels * kernel * kernel}),
      b_(Shape{out_channels}),
      gw_(Shape{out_channels, in_channels * kernel * kernel}),
      gb_(Shape{out_channels}) {
  SATD_EXPECT(in_channels > 0 && out_channels > 0 && kernel > 0,
              "Conv2d dimensions must be positive");
  init::he_normal(w_, in_channels * kernel * kernel, rng);
}

ConvGeometry Conv2d::geometry_for(const Shape& batch_shape) const {
  SATD_EXPECT(batch_shape.rank() == 4,
              "Conv2d expects [N, C, H, W], got " + batch_shape.to_string());
  SATD_EXPECT(batch_shape[1] == in_c_, "Conv2d channel mismatch");
  ConvGeometry g;
  g.in_channels = in_c_;
  g.in_h = batch_shape[2];
  g.in_w = batch_shape[3];
  g.kernel = kernel_;
  g.padding = padding_;
  return g;
}

Tensor Conv2d::forward(const Tensor& x, bool /*training*/) {
  const ConvGeometry g = geometry_for(x.shape());
  const std::size_t n = x.shape()[0];
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  cached_geometry_ = g;
  cached_batch_ = n;
  cols_cache_.resize(n);

  Tensor out(Shape{n, out_c_, oh, ow});
  Tensor y;  // per-image [oh*ow, out_c]
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor img = x.slice_row(i);  // [C, H, W]
    im2col(img, g, cols_cache_[i]);
    // y = cols · Wᵀ : [oh*ow, patch] x [out_c, patch]ᵀ -> [oh*ow, out_c]
    ops::matmul_nt(cols_cache_[i], w_, y);
    // Scatter into [out_c, oh, ow] layout with bias.
    float* dst = out.raw() + i * out_c_ * oh * ow;
    const float* src = y.raw();
    const float* bias = b_.raw();
    for (std::size_t p = 0; p < oh * ow; ++p) {
      for (std::size_t c = 0; c < out_c_; ++c) {
        dst[c * oh * ow + p] = src[p * out_c_ + c] + bias[c];
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  SATD_EXPECT(cached_batch_ > 0, "Conv2d backward before forward");
  const ConvGeometry& g = cached_geometry_;
  const std::size_t n = cached_batch_;
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  SATD_EXPECT((grad_out.shape() == Shape{n, out_c_, oh, ow}),
              "Conv2d backward: grad shape mismatch");

  Tensor gx(Shape{n, g.in_channels, g.in_h, g.in_w});
  Tensor g2(Shape{oh * ow, out_c_});  // per-image grad in column layout
  Tensor gw_img, gcols, gximg;
  for (std::size_t i = 0; i < n; ++i) {
    // Re-layout [out_c, oh*ow] -> [oh*ow, out_c].
    const float* src = grad_out.raw() + i * out_c_ * oh * ow;
    float* dst = g2.raw();
    for (std::size_t c = 0; c < out_c_; ++c) {
      for (std::size_t p = 0; p < oh * ow; ++p) {
        dst[p * out_c_ + c] = src[c * oh * ow + p];
      }
    }
    // gW += g2ᵀ · cols : [out_c, patch]
    ops::matmul_tn(g2, cols_cache_[i], gw_img);
    ops::axpy(1.0f, gw_img, gw_);
    // gb += column sums of g2.
    Tensor gb_img;
    ops::sum_rows(g2, gb_img);
    ops::axpy(1.0f, gb_img, gb_);
    // gcols = g2 · W : [oh*ow, patch]; then fold back to image space.
    ops::matmul(g2, w_, gcols);
    col2im(gcols, g, gximg);
    gx.set_row(i, gximg);
  }
  return gx;
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ", k=" + std::to_string(kernel_) + ", p=" + std::to_string(padding_) +
         ")";
}

Shape Conv2d::output_shape(const Shape& input) const {
  SATD_EXPECT(input.rank() == 3 && input[0] == in_c_,
              "Conv2d expects a [C, H, W] input shape");
  ConvGeometry g;
  g.in_channels = in_c_;
  g.in_h = input[1];
  g.in_w = input[2];
  g.kernel = kernel_;
  g.padding = padding_;
  return Shape{out_c_, g.out_h(), g.out_w()};
}

}  // namespace satd::nn
