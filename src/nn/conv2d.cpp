#include "nn/conv2d.h"

#include "common/contract.h"
#include "common/thread_pool.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace satd::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding, Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      padding_(padding),
      w_(Shape{out_channels, in_channels * kernel * kernel}),
      b_(Shape{out_channels}),
      gw_(Shape{out_channels, in_channels * kernel * kernel}),
      gb_(Shape{out_channels}) {
  SATD_EXPECT(in_channels > 0 && out_channels > 0 && kernel > 0,
              "Conv2d dimensions must be positive");
  init::he_normal(w_, in_channels * kernel * kernel, rng);
}

ConvGeometry Conv2d::geometry_for(const Shape& batch_shape) const {
  SATD_EXPECT(batch_shape.rank() == 4,
              "Conv2d expects [N, C, H, W], got " + batch_shape.to_string());
  SATD_EXPECT(batch_shape[1] == in_c_, "Conv2d channel mismatch");
  ConvGeometry g;
  g.in_channels = in_c_;
  g.in_h = batch_shape[2];
  g.in_w = batch_shape[3];
  g.kernel = kernel_;
  g.padding = padding_;
  return g;
}

void Conv2d::forward_into(const Tensor& x, Tensor& out, bool /*training*/) {
  const ConvGeometry g = geometry_for(x.shape());
  const std::size_t n = x.shape()[0];
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  cached_geometry_ = g;
  cached_batch_ = n;

  im2col_batch(x, g, cols_cache_);
  // y = cols · Wᵀ : [N*oh*ow, patch] x [out_c, patch]ᵀ -> [N*oh*ow, out_c]
  ops::matmul_nt(cols_cache_, w_, y_);
  // Scatter each image's rows into [out_c, oh, ow] layout with bias.
  out.ensure_shape(Shape{n, out_c_, oh, ow});
  const float* bias = b_.raw();
  float* pout = out.raw();
  const float* py = y_.raw();
  const std::size_t out_c = out_c_;
  parallel_for(n, [pout, py, bias, out_c, oh, ow](std::size_t i0,
                                                  std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* dst = pout + i * out_c * oh * ow;
      const float* src = py + i * oh * ow * out_c;
      for (std::size_t p = 0; p < oh * ow; ++p) {
        for (std::size_t c = 0; c < out_c; ++c) {
          dst[c * oh * ow + p] = src[p * out_c + c] + bias[c];
        }
      }
    }
  });
  note_forward();
}

void Conv2d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("Conv2d");
  const ConvGeometry& g = cached_geometry_;
  const std::size_t n = cached_batch_;
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  SATD_EXPECT((grad_out.shape() == Shape{n, out_c_, oh, ow}),
              "Conv2d backward: grad shape mismatch");

  // Re-layout [N][out_c, oh*ow] -> [N*oh*ow, out_c] column layout.
  g2_.ensure_shape(Shape{n * oh * ow, out_c_});
  const float* pgrad = grad_out.raw();
  float* pg2 = g2_.raw();
  const std::size_t out_c = out_c_;
  parallel_for(n, [pgrad, pg2, out_c, oh, ow](std::size_t i0,
                                              std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* src = pgrad + i * out_c * oh * ow;
      float* dst = pg2 + i * oh * ow * out_c;
      for (std::size_t c = 0; c < out_c; ++c) {
        for (std::size_t p = 0; p < oh * ow; ++p) {
          dst[p * out_c + c] = src[c * oh * ow + p];
        }
      }
    }
  });
  // gW += g2ᵀ · cols : [out_c, patch], one GEMM over the whole batch.
  ops::matmul_tn(g2_, cols_cache_, gw_batch_);
  ops::axpy(1.0f, gw_batch_, gw_);
  // gb += column sums of g2.
  ops::sum_rows(g2_, gb_batch_);
  ops::axpy(1.0f, gb_batch_, gb_);
  // gcols = g2 · W : [N*oh*ow, patch]; then fold back to image space.
  ops::matmul(g2_, w_, gcols_);
  col2im_batch(gcols_, n, g, grad_in);
}

void Conv2d::release_buffers() {
  Layer::release_buffers();
  cols_cache_ = Tensor();
  y_ = Tensor();
  g2_ = Tensor();
  gw_batch_ = Tensor();
  gb_batch_ = Tensor();
  gcols_ = Tensor();
  cached_batch_ = 0;
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ", k=" + std::to_string(kernel_) + ", p=" + std::to_string(padding_) +
         ")";
}

Shape Conv2d::output_shape(const Shape& input) const {
  SATD_EXPECT(input.rank() == 3 && input[0] == in_c_,
              "Conv2d expects a [C, H, W] input shape");
  ConvGeometry g;
  g.in_channels = in_c_;
  g.in_h = input[1];
  g.in_w = input[2];
  g.kernel = kernel_;
  g.padding = padding_;
  return Shape{out_c_, g.out_h(), g.out_w()};
}

}  // namespace satd::nn
