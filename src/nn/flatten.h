// Flatten layer: [N, C, H, W] (or any rank >= 2) -> [N, D].
#pragma once

#include "nn/layer.h"

namespace satd::nn {

/// Reshapes each example to a flat vector; backward restores the shape.
class Flatten : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::string name() const override { return "Flatten"; }
  Shape output_shape(const Shape& input) const override;

 private:
  Shape in_shape_;
};

}  // namespace satd::nn
