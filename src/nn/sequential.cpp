#include "nn/sequential.h"

#include <sstream>

#include "common/contract.h"

namespace satd::nn {

Sequential& Sequential::add(LayerPtr layer) {
  SATD_EXPECT(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Layer& Sequential::layer(std::size_t i) {
  SATD_EXPECT(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  SATD_EXPECT(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  SATD_EXPECT(!layers_.empty(), "forward on empty model");
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, training);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_logits) {
  SATD_EXPECT(!layers_.empty(), "backward on empty model");
  Tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* g : l->gradients()) out.push_back(g);
  }
  return out;
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    for (Tensor* p : const_cast<Layer&>(*l).parameters()) n += p->numel();
  }
  return n;
}

void Sequential::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

std::string Sequential::summary(const Shape& input) const {
  std::ostringstream ss;
  Shape s = input;
  ss << "Sequential {\n";
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    ss << "  " << l->name() << " -> " << s.to_string() << "\n";
  }
  ss << "} params=" << parameter_count() << "\n";
  return ss.str();
}

}  // namespace satd::nn
