#include "nn/sequential.h"

#include <sstream>

#include "common/contract.h"

namespace satd::nn {

Sequential& Sequential::add(LayerPtr layer) {
  SATD_EXPECT(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Layer& Sequential::layer(std::size_t i) {
  SATD_EXPECT(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  SATD_EXPECT(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  Tensor out;
  forward_into(x, out, training);
  return out;
}

Tensor Sequential::backward(const Tensor& grad_logits) {
  Tensor grad_in;
  backward_into(grad_logits, grad_in);
  return grad_in;
}

void Sequential::forward_into(const Tensor& x, Tensor& out, bool training) {
  SATD_EXPECT(!layers_.empty(), "forward on empty model");
  if (act_tape_.size() + 1 != layers_.size()) {
    act_tape_.resize(layers_.size() - 1);
  }
  const Tensor* h = &x;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    layers_[i]->forward_into(*h, act_tape_[i], training);
    h = &act_tape_[i];
  }
  layers_.back()->forward_into(*h, out, training);
}

void Sequential::backward_into(const Tensor& grad_logits, Tensor& grad_in) {
  SATD_EXPECT(!layers_.empty(), "backward on empty model");
  if (grad_tape_.size() + 1 != layers_.size()) {
    grad_tape_.resize(layers_.size() - 1);
  }
  const Tensor* g = &grad_logits;
  for (std::size_t i = layers_.size(); i-- > 1;) {
    layers_[i]->backward_into(*g, grad_tape_[i - 1]);
    g = &grad_tape_[i - 1];
  }
  layers_.front()->backward_into(*g, grad_in);
}

void Sequential::release_buffers() {
  for (auto& l : layers_) l->release_buffers();
  act_tape_.clear();
  act_tape_.shrink_to_fit();
  grad_tape_.clear();
  grad_tape_.shrink_to_fit();
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* g : l->gradients()) out.push_back(g);
  }
  return out;
}

std::vector<Tensor*> Sequential::state_tensors() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* s : l->state_tensors()) out.push_back(s);
  }
  return out;
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    for (Tensor* p : const_cast<Layer&>(*l).parameters()) n += p->numel();
  }
  return n;
}

void Sequential::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

std::string Sequential::summary(const Shape& input) const {
  std::ostringstream ss;
  Shape s = input;
  ss << "Sequential {\n";
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    ss << "  " << l->name() << " -> " << s.to_string() << "\n";
  }
  ss << "} params=" << parameter_count() << "\n";
  return ss.str();
}

}  // namespace satd::nn
