// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace satd::nn {

/// Rectified linear unit. Works on any rank; the backward mask uses the
/// convention relu'(0) = 0.
class ReLU : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  void release_buffers() override;
  std::string name() const override { return "ReLU"; }
  Shape output_shape(const Shape& input) const override { return input; }

 private:
  Tensor x_cache_;
};

/// Hyperbolic tangent (used by one of the zoo's alternative models).
class Tanh : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  void release_buffers() override;
  std::string name() const override { return "Tanh"; }
  Shape output_shape(const Shape& input) const override { return input; }

 private:
  Tensor y_cache_;  // tanh output; derivative is 1 - y^2
};

/// Leaky ReLU with configurable negative slope.
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f);
  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  void release_buffers() override;
  std::string name() const override;
  Shape output_shape(const Shape& input) const override { return input; }

  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor x_cache_;
};

}  // namespace satd::nn
