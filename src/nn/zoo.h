// Model zoo: the architectures used by the reproduction.
//
// Every experiment builds its classifier from a textual spec so that the
// trained-model cache and model files are self-describing. Specs:
//
//   "cnn_small"  — conv(1->4,k3) relu pool2 conv(4->8,k3) relu pool2
//                  flatten dense(200->32) relu dense(32->10).
//                  The default for benches: small enough to train
//                  adversarially on a single core in seconds per epoch.
//   "cnn_paper"  — conv(1->8,k3) relu pool2 conv(8->16,k3) relu pool2
//                  flatten dense(400->64) relu dense(64->10).
//                  Closer to the capacity class the paper trained.
//   "cnn_bn"     — cnn_small with BatchNorm2d after each conv
//                  (normalization/robustness interaction experiments).
//   "mlp"        — 784-256-128-10 ReLU MLP (ablation / speed baseline).
//   "mlp_small"  — 784-64-10 ReLU MLP (unit-test scale).
//
// All models take [N, 1, 28, 28] images in [0, 1] and emit 10 logits
// (MLPs flatten internally, so callers never special-case input shape).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/sequential.h"

namespace satd::nn::zoo {

/// Image geometry shared by both synthetic datasets.
inline constexpr std::size_t kImageChannels = 1;
inline constexpr std::size_t kImageSize = 28;
inline constexpr std::size_t kNumClasses = 10;

/// Per-example input shape every zoo model accepts.
Shape input_shape();

/// Builds a model from a spec string; throws ContractViolation for an
/// unknown spec. Weights are drawn from `rng`.
Sequential build(const std::string& spec, Rng& rng);

/// True if `spec` names a known architecture.
bool is_known_spec(const std::string& spec);

/// All known spec names (for tests / CLI help).
std::vector<std::string> known_specs();

}  // namespace satd::nn::zoo
