// 2-D convolution layer (stride 1, optional symmetric zero padding),
// lowered to matmul via im2col / col2im.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "tensor/im2col.h"

namespace satd::nn {

/// Convolution over [N, C, H, W] batches with a square kernel.
///
/// The filter bank is stored as a [out_channels, in_channels*k*k] matrix
/// so both the forward pass and the weight-gradient pass are plain GEMMs
/// against im2col columns; the input-gradient pass (needed by adversarial
/// attacks) is a GEMM followed by col2im, the exact adjoint of the
/// forward lowering.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t padding, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&gw_, &gb_}; }

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t padding() const { return padding_; }

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

 private:
  ConvGeometry geometry_for(const Shape& batch_shape) const;

  std::size_t in_c_, out_c_, kernel_, padding_;
  Tensor w_, b_;    // [out_c, in_c*k*k], [out_c]
  Tensor gw_, gb_;
  // Cached per-image im2col columns from the last forward (one entry per
  // batch element) plus the input geometry, both needed by backward.
  std::vector<Tensor> cols_cache_;
  ConvGeometry cached_geometry_;
  std::size_t cached_batch_ = 0;
};

}  // namespace satd::nn
