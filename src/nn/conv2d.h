// 2-D convolution layer (stride 1, optional symmetric zero padding),
// lowered to matmul via im2col / col2im.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"
#include "tensor/im2col.h"

namespace satd::nn {

/// Convolution over [N, C, H, W] batches with a square kernel.
///
/// The filter bank is stored as a [out_channels, in_channels*k*k] matrix.
/// The whole batch is unfolded at once (im2col_batch), so the forward
/// pass and the weight-gradient pass are each ONE GEMM per batch rather
/// than one per image; the input-gradient pass (needed by adversarial
/// attacks) is a GEMM followed by col2im_batch, the exact adjoint of the
/// forward lowering. All scratch (columns, GEMM outputs, re-layout
/// buffers) persists across batches and resizes only on shape change.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t padding, Rng& rng);

  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;

  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&gw_, &gb_}; }

  void release_buffers() override;

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t padding() const { return padding_; }

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

 private:
  ConvGeometry geometry_for(const Shape& batch_shape) const;

  std::size_t in_c_, out_c_, kernel_, padding_;
  Tensor w_, b_;    // [out_c, in_c*k*k], [out_c]
  Tensor gw_, gb_;
  // Batched im2col columns from the last forward
  // ([N*oh*ow, patch], needed by the weight-gradient pass) plus the
  // input geometry.
  Tensor cols_cache_;
  ConvGeometry cached_geometry_;
  std::size_t cached_batch_ = 0;
  // Reused scratch: forward GEMM output, backward grad re-layout,
  // per-batch weight/bias gradients, column gradients.
  Tensor y_, g2_, gw_batch_, gb_batch_, gcols_;
};

}  // namespace satd::nn
