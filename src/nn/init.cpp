#include "nn/init.h"

#include <cmath>

#include "common/contract.h"

namespace satd::nn::init {

void he_normal(Tensor& w, std::size_t fan_in, Rng& rng) {
  SATD_EXPECT(fan_in > 0, "fan_in must be positive");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : w.data()) v = static_cast<float>(rng.normal(0.0, stddev));
}

void glorot_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng) {
  SATD_EXPECT(fan_in + fan_out > 0, "fan sizes must be positive");
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : w.data()) v = static_cast<float>(rng.uniform(-a, a));
}

void uniform(Tensor& w, double lo, double hi, Rng& rng) {
  for (float& v : w.data()) v = static_cast<float>(rng.uniform(lo, hi));
}

}  // namespace satd::nn::init
