// First-order optimizers.
//
// Optimizers operate on (parameter, gradient) pointer pairs taken from a
// Sequential model; state (momentum / Adam moments) is allocated lazily
// on the first step and keyed by position, so an optimizer must be used
// with one model only.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace satd::nn {

/// Abstract optimizer over parallel parameter/gradient lists.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update. `params` and `grads` must be the same lists
  /// (same order, same shapes) on every call.
  virtual void step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) = 0;

  /// Current learning rate.
  double learning_rate() const { return lr_; }

  /// Adjusts the learning rate (used by LR schedules).
  void set_learning_rate(double lr);

  virtual std::string name() const = 0;

  /// Serializes accumulated state (momenta etc.) so training can resume
  /// exactly (see core/checkpoint). Stateless optimizers write a marker
  /// only.
  virtual void save_state(std::ostream& os) const = 0;

  /// Restores state written by save_state(); throws SerializeError on
  /// mismatch.
  virtual void load_state(std::istream& is) = 0;

 protected:
  explicit Optimizer(double lr);
  double lr_;
};

/// Plain SGD with optional classical momentum and L2 weight decay
/// (decay is added to the gradient: g += wd * w).
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  double momentum() const { return momentum_; }

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction and decoupled weight
/// decay (AdamW style: w -= lr * wd * w, independent of the moments).
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override { return "Adam"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::vector<Tensor> m_, v_;
  std::size_t t_ = 0;
};

}  // namespace satd::nn
