// Weight initializers.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace satd::nn::init {

/// He (Kaiming) normal: N(0, sqrt(2 / fan_in)). Standard for ReLU nets.
void he_normal(Tensor& w, std::size_t fan_in, Rng& rng);

/// Glorot (Xavier) uniform: U(-a, a) with a = sqrt(6 / (fan_in+fan_out)).
void glorot_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng);

/// Uniform in [lo, hi].
void uniform(Tensor& w, double lo, double hi, Rng& rng);

}  // namespace satd::nn::init
