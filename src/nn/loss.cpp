#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace satd::nn {

namespace {
void check_batch(const Tensor& logits, std::span<const std::size_t> labels) {
  SATD_EXPECT(logits.shape().rank() == 2, "logits must be [N, K]");
  SATD_EXPECT(logits.shape()[0] == labels.size(),
              "label count does not match batch size");
  const std::size_t k = logits.shape()[1];
  for (std::size_t y : labels) {
    SATD_EXPECT(y < k, "label out of range");
  }
}
}  // namespace

Tensor softmax(const Tensor& logits) {
  Tensor out;
  softmax_into(logits, out);
  return out;
}

void softmax_into(const Tensor& logits, Tensor& out) {
  SATD_EXPECT(logits.shape().rank() == 2, "logits must be [N, K]");
  const std::size_t n = logits.shape()[0];
  const std::size_t k = logits.shape()[1];
  out.ensure_shape(logits.shape());
  const float* pl = logits.raw();
  float* po = out.raw();
  // Rows are independent (the denominator reduction stays within a row),
  // so a row split is deterministic for any thread count.
  const std::size_t grain = std::max<std::size_t>(1, 512 / (k + 1));
  parallel_for(n, grain, [pl, po, k](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* row = pl + i * k;
      float* orow = po + i * k;
      const float m = *std::max_element(row, row + k);
      double denom = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        orow[j] = std::exp(row[j] - m);
        denom += orow[j];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (std::size_t j = 0; j < k; ++j) orow[j] *= inv;
    }
  });
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::size_t> labels) {
  LossResult res;
  softmax_cross_entropy_into(logits, labels, res);
  return res;
}

void softmax_cross_entropy_into(const Tensor& logits,
                                std::span<const std::size_t> labels,
                                LossResult& res) {
  check_batch(logits, labels);
  const std::size_t n = logits.shape()[0];
  const std::size_t k = logits.shape()[1];
  SATD_EXPECT(n > 0, "empty batch");
  softmax_into(logits, res.grad_logits);
  double loss = 0.0;
  float* pg = res.grad_logits.raw();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = pg + i * k;
    const float p = std::max(row[labels[i]], 1e-12f);
    loss -= std::log(p);
    row[labels[i]] -= 1.0f;
    for (std::size_t j = 0; j < k; ++j) row[j] *= inv_n;
  }
  res.value = static_cast<float>(loss / static_cast<double>(n));
}

float softmax_cross_entropy_value(const Tensor& logits,
                                  std::span<const std::size_t> labels) {
  check_batch(logits, labels);
  const std::size_t n = logits.shape()[0];
  const std::size_t k = logits.shape()[1];
  SATD_EXPECT(n > 0, "empty batch");
  const float* pl = logits.raw();
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = pl + i * k;
    const float m = *std::max_element(row, row + k);
    double denom = 0.0;
    for (std::size_t j = 0; j < k; ++j) denom += std::exp(row[j] - m);
    loss += std::log(denom) - (row[labels[i]] - m);
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

LossResult softmax_cross_entropy_smoothed(const Tensor& logits,
                                          std::span<const std::size_t> labels,
                                          float alpha) {
  LossResult res;
  softmax_cross_entropy_smoothed_into(logits, labels, alpha, res);
  return res;
}

void softmax_cross_entropy_smoothed_into(const Tensor& logits,
                                         std::span<const std::size_t> labels,
                                         float alpha, LossResult& res) {
  check_batch(logits, labels);
  SATD_EXPECT(alpha >= 0.0f && alpha <= 1.0f, "alpha must be in [0,1]");
  const std::size_t n = logits.shape()[0];
  const std::size_t k = logits.shape()[1];
  SATD_EXPECT(n > 0, "empty batch");
  softmax_into(logits, res.grad_logits);
  const float off = alpha / static_cast<float>(k);
  const float on = 1.0f - alpha + off;
  double loss = 0.0;
  float* pg = res.grad_logits.raw();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = pg + i * k;
    for (std::size_t j = 0; j < k; ++j) {
      const float target = (j == labels[i]) ? on : off;
      const float p = std::max(row[j], 1e-12f);
      loss -= static_cast<double>(target) * std::log(p);
      row[j] = (row[j] - target) * inv_n;
    }
  }
  res.value = static_cast<float>(loss / static_cast<double>(n));
}

float softmax_cross_entropy_smoothed_value(
    const Tensor& logits, std::span<const std::size_t> labels, float alpha) {
  check_batch(logits, labels);
  SATD_EXPECT(alpha >= 0.0f && alpha <= 1.0f, "alpha must be in [0,1]");
  const std::size_t n = logits.shape()[0];
  const std::size_t k = logits.shape()[1];
  SATD_EXPECT(n > 0, "empty batch");
  const Tensor p = softmax(logits);
  const float off = alpha / static_cast<float>(k);
  const float on = 1.0f - alpha + off;
  const float* pp = p.raw();
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const float target = (j == labels[i]) ? on : off;
      loss -= static_cast<double>(target) *
              std::log(std::max(pp[i * k + j], 1e-12f));
    }
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float accuracy(const Tensor& logits, std::span<const std::size_t> labels) {
  check_batch(logits, labels);
  if (labels.empty()) return 0.0f;
  const auto preds = ops::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

}  // namespace satd::nn
