// Batch normalization (Ioffe & Szegedy 2015) over [N, C, H, W].
//
// Normalizes each channel by the batch statistics at train time (exact
// backward through the statistics, the part naive implementations get
// wrong) and by running exponential-moving-average statistics at
// inference. Attacks backprop through the INFERENCE path (they perturb
// inputs against the deployed network), so backward supports both modes
// and keys off the mode of the preceding forward.
#pragma once

#include "nn/layer.h"

namespace satd::nn {

/// Per-channel batch normalization with learned scale/shift.
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;

  std::vector<Tensor*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> gradients() override { return {&ggamma_, &gbeta_}; }
  /// Running statistics are what inference normalizes by; they must
  /// survive save/load or a served model behaves like an untrained one.
  std::vector<Tensor*> state_tensors() override {
    return {&running_mean_, &running_var_};
  }

  void release_buffers() override;

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;

  std::size_t channels() const { return channels_; }
  float eps() const { return eps_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }

 private:
  std::size_t channels_;
  float momentum_;
  float eps_;
  Tensor gamma_, beta_;
  Tensor ggamma_, gbeta_;
  Tensor running_mean_, running_var_;
  // Forward cache (reused buffers, resized only on shape change).
  bool cached_training_ = false;
  Tensor x_hat_;        // normalized activations
  Tensor inv_std_;      // [C] 1/sqrt(var + eps) actually used
  Shape in_shape_;
};

}  // namespace satd::nn
