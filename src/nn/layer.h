// Layer interface for the layer-wise backprop NN framework.
//
// The framework deliberately avoids a general autograd graph: the models
// in this paper are plain feed-forward chains, so each layer implements
// an exact forward and an exact backward (producing both parameter
// gradients and the gradient with respect to its input). The input
// gradient is what the attack library consumes — FGSM/BIM are defined by
// the sign of dLoss/dInput.
//
// Execution model (see DESIGN.md "Execution model: workspaces and buffer
// reuse"): the primitive operations are the OUT-PARAMETER pair
// forward_into / backward_into. Layers own their scratch and cache
// buffers persistently and resize them only on shape change, so a
// steady-state training loop (fixed batch shape) performs zero heap
// allocations inside layer forward/backward. The value-returning
// forward / backward are thin non-virtual wrappers that allocate the
// result tensor and delegate — the convenience form for tests and cold
// paths, mirroring the ops.h idiom.
//
// Contract:
//  * forward_into(x, out, training) writes the activation into `out`
//    (resized in place on shape change, storage reused otherwise) and
//    caches whatever backward needs. `out` must not alias `x` or any
//    live cache. `training` toggles train-only behaviour (dropout).
//  * backward_into(grad_out, grad_in) must follow a matching
//    forward_into with the same batch; it ACCUMULATES into the parameter
//    gradients (so a mixture loss can run clean and adversarial batches
//    back to back before one optimizer step) and writes dLoss/dInput
//    into `grad_in` (same reuse semantics). Each forward overwrites the
//    layer's cache and each backward CONSUMES it, so the legal order is
//    forward(a); backward(ga); forward(b); backward(gb). Running
//    backward against a consumed cache fails fast with a
//    ContractViolation instead of silently computing wrong gradients.
//  * zero_grad() clears accumulated parameter gradients.
//  * release_buffers() frees scratch/caches; they regrow on next use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/contract.h"
#include "tensor/tensor.h"

namespace satd::nn {

/// Abstract NN layer (see file comment for the forward/backward contract).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the activation for a batch into `out` (reused across
  /// calls); caches state for backward. `out` must not alias `x`.
  virtual void forward_into(const Tensor& x, Tensor& out, bool training) = 0;

  /// Back-propagates: accumulates parameter gradients and writes the
  /// gradient with respect to the layer input into `grad_in` (reused
  /// across calls). `grad_in` must not alias `grad_out`.
  virtual void backward_into(const Tensor& grad_out, Tensor& grad_in) = 0;

  /// Value-returning convenience wrapper over forward_into.
  Tensor forward(const Tensor& x, bool training) {
    Tensor out;
    forward_into(x, out, training);
    return out;
  }

  /// Value-returning convenience wrapper over backward_into.
  Tensor backward(const Tensor& grad_out) {
    Tensor grad_in;
    backward_into(grad_out, grad_in);
    return grad_in;
  }

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Tensor*> parameters() { return {}; }

  /// Gradient buffers, aligned index-for-index with parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Non-trainable persistent state the layer needs at inference (e.g.
  /// BatchNorm running statistics). Unlike forward caches this state is
  /// part of what a trained model IS, so model_io serializes it next to
  /// the parameters. Empty for stateless layers.
  virtual std::vector<Tensor*> state_tensors() { return {}; }

  /// Zeroes all gradient buffers.
  virtual void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0f);
  }

  /// Releases persistent scratch/cache buffers (they regrow on the next
  /// forward). Lets long-lived models shed memory when idle; also used
  /// by benches to measure the cost of cold-buffer execution.
  virtual void release_buffers() { cache_valid_ = false; }

  /// Human-readable layer name (for model summaries and serialization).
  virtual std::string name() const = 0;

  /// Output shape for a given per-example input shape (no batch dim).
  virtual Shape output_shape(const Shape& input) const = 0;

 protected:
  /// Implementations call this at the end of forward_into: marks the
  /// backward cache as freshly written.
  void note_forward() { cache_valid_ = true; }

  /// Implementations call this at the start of backward_into: fails fast
  /// when the cache was never written or was already consumed by a
  /// previous backward (the silent-wrong-gradient hazard of the old
  /// API), then marks it consumed.
  void consume_cache(const char* layer) {
    SATD_EXPECT(cache_valid_,
                std::string(layer) +
                    " backward without a fresh forward (cache is missing, "
                    "stale, or already consumed)");
    cache_valid_ = false;
  }

 private:
  bool cache_valid_ = false;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace satd::nn
