// Layer interface for the layer-wise backprop NN framework.
//
// The framework deliberately avoids a general autograd graph: the models
// in this paper are plain feed-forward chains, so each layer implements
// an exact forward and an exact backward (producing both parameter
// gradients and the gradient with respect to its input). The input
// gradient is what the attack library consumes — FGSM/BIM are defined by
// the sign of dLoss/dInput.
//
// Contract:
//  * forward(x, training) caches whatever backward needs and returns the
//    activation. `training` toggles train-only behaviour (dropout).
//  * backward(grad_out) must be called after a matching forward with the
//    same batch; it ACCUMULATES into the parameter gradients (so a
//    mixture loss can run clean and adversarial batches back to back
//    before one optimizer step... note each backward overwrites the
//    layer's forward cache, so the order is forward(a); backward(ga);
//    forward(b); backward(gb)) and returns dLoss/dInput.
//  * zero_grad() clears accumulated parameter gradients.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace satd::nn {

/// Abstract NN layer (see file comment for the forward/backward contract).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the activation for a batch; caches state for backward.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Back-propagates: accumulates parameter gradients and returns the
  /// gradient with respect to the layer input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Tensor*> parameters() { return {}; }

  /// Gradient buffers, aligned index-for-index with parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Zeroes all gradient buffers.
  virtual void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0f);
  }

  /// Human-readable layer name (for model summaries and serialization).
  virtual std::string name() const = 0;

  /// Output shape for a given per-example input shape (no batch dim).
  virtual Shape output_shape(const Shape& input) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace satd::nn
