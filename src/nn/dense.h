// Fully connected layer: y = x·W + b.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace satd::nn {

/// Dense (fully connected) layer over [N, in] batches.
///
/// Weights are [in, out] so the forward pass is a single row-major
/// matmul; He-normal initialization by default (suits the ReLU networks
/// in the paper's experiments).
class Dense : public Layer {
 public:
  /// Constructs with He-normal weights drawn from `rng` and zero bias.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  void forward_into(const Tensor& x, Tensor& out, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;

  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&gw_, &gb_}; }

  void release_buffers() override;

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  /// Direct parameter access for tests and serialization.
  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor w_, b_;    // parameters
  Tensor gw_, gb_;  // accumulated gradients
  Tensor x_cache_;  // input from the last forward (reused buffer)
  Tensor gw_batch_, gb_batch_;  // backward scratch (reused buffers)
};

}  // namespace satd::nn
