#include "nn/maxpool2d.h"

#include "common/contract.h"
#include "common/thread_pool.h"

namespace satd::nn {

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  SATD_EXPECT(window >= 1, "pool window must be >= 1");
}

void MaxPool2d::forward_into(const Tensor& x, Tensor& out,
                             bool /*training*/) {
  SATD_EXPECT(x.shape().rank() == 4, "MaxPool2d expects [N, C, H, W]");
  const std::size_t n = x.shape()[0];
  const std::size_t c = x.shape()[1];
  const std::size_t h = x.shape()[2];
  const std::size_t w = x.shape()[3];
  SATD_EXPECT(h % window_ == 0 && w % window_ == 0,
              "input extent not divisible by pool window");
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;
  in_shape_ = x.shape();
  out.ensure_shape(Shape{n, c, oh, ow});
  argmax_.assign(out.numel(), 0);
  const float* src = x.raw();
  float* dst = out.raw();
  std::size_t* amax = argmax_.data();
  const std::size_t window = window_;
  // One [H, W] plane per unit of work; every plane owns a disjoint slice
  // of the output and the argmax record.
  parallel_for(n * c, [src, dst, amax, h, w, oh, ow,
                       window](std::size_t p0, std::size_t p1) {
    for (std::size_t pl = p0; pl < p1; ++pl) {
      const std::size_t plane = pl * h * w;
      std::size_t o = pl * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++o) {
          std::size_t best = plane + (oy * window) * w + ox * window;
          float best_v = src[best];
          for (std::size_t dy = 0; dy < window; ++dy) {
            for (std::size_t dx = 0; dx < window; ++dx) {
              const std::size_t idx =
                  plane + (oy * window + dy) * w + (ox * window + dx);
              if (src[idx] > best_v) {
                best_v = src[idx];
                best = idx;
              }
            }
          }
          dst[o] = best_v;
          amax[o] = best;
        }
      }
    }
  });
  note_forward();
}

void MaxPool2d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("MaxPool2d");
  SATD_EXPECT(in_shape_.rank() == 4, "MaxPool2d backward before forward");
  SATD_EXPECT(grad_out.numel() == argmax_.size(),
              "MaxPool2d backward: grad shape mismatch");
  // The scatter below accumulates, so the reused buffer must be zeroed.
  grad_in.ensure_shape(in_shape_);
  grad_in.fill(0.0f);
  const float* g = grad_out.raw();
  float* dst = grad_in.raw();
  const std::size_t* amax = argmax_.data();
  const std::size_t plane_out =
      (in_shape_[2] / window_) * (in_shape_[3] / window_);
  // Every argmax index stays inside its own plane's [H, W] block, so a
  // per-plane split scatters into disjoint ranges.
  parallel_for(in_shape_[0] * in_shape_[1],
               [g, dst, amax, plane_out](std::size_t p0, std::size_t p1) {
                 for (std::size_t o = p0 * plane_out; o < p1 * plane_out; ++o) {
                   dst[amax[o]] += g[o];
                 }
               });
}

void MaxPool2d::release_buffers() {
  Layer::release_buffers();
  argmax_.clear();
  argmax_.shrink_to_fit();
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(window_) + ")";
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  SATD_EXPECT(input.rank() == 3, "MaxPool2d expects a [C, H, W] input shape");
  SATD_EXPECT(input[1] % window_ == 0 && input[2] % window_ == 0,
              "input extent not divisible by pool window");
  return Shape{input[0], input[1] / window_, input[2] / window_};
}

}  // namespace satd::nn
