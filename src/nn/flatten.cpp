#include "nn/flatten.h"

#include "common/contract.h"

namespace satd::nn {

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
  SATD_EXPECT(x.shape().rank() >= 2, "Flatten expects rank >= 2");
  in_shape_ = x.shape();
  const std::size_t n = x.shape()[0];
  return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  SATD_EXPECT(in_shape_.rank() >= 2, "Flatten backward before forward");
  SATD_EXPECT(grad_out.numel() == in_shape_.numel(),
              "Flatten backward: grad size mismatch");
  return grad_out.reshaped(in_shape_);
}

Shape Flatten::output_shape(const Shape& input) const {
  return Shape{input.numel()};
}

}  // namespace satd::nn
