#include "nn/flatten.h"

#include <algorithm>

#include "common/contract.h"

namespace satd::nn {

void Flatten::forward_into(const Tensor& x, Tensor& out, bool /*training*/) {
  SATD_EXPECT(x.shape().rank() >= 2, "Flatten expects rank >= 2");
  in_shape_ = x.shape();
  const std::size_t n = x.shape()[0];
  out.ensure_shape(Shape{n, x.numel() / n});
  std::copy(x.raw(), x.raw() + x.numel(), out.raw());
  note_forward();
}

void Flatten::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  consume_cache("Flatten");
  SATD_EXPECT(in_shape_.rank() >= 2, "Flatten backward before forward");
  SATD_EXPECT(grad_out.numel() == in_shape_.numel(),
              "Flatten backward: grad size mismatch");
  grad_in.ensure_shape(in_shape_);
  std::copy(grad_out.raw(), grad_out.raw() + grad_out.numel(),
            grad_in.raw());
}

Shape Flatten::output_shape(const Shape& input) const {
  return Shape{input.numel()};
}

}  // namespace satd::nn
