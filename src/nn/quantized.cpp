#include "nn/quantized.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/contract.h"
#include "common/thread_pool.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"
#include "tensor/im2col.h"
#include "tensor/kernel/microkernel.h"

namespace satd::nn {

namespace {

std::int8_t quantize_value(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
}

/// Row-wise dynamic activation quantization: each row of the [rows, cols]
/// matrix gets its own scale from its own max|x| alone, so a row's int8
/// image never depends on what else is in the batch (the serving
/// batch-of-1 invariance) and rows can quantize in parallel.
void quantize_rows(const float* x, std::size_t rows, std::size_t cols,
                   QuantizedWorkspace& ws) {
  ws.qx.resize(rows * cols);
  ws.row_scale.resize(rows);
  std::int8_t* q = ws.qx.data();
  float* scales = ws.row_scale.data();
  const std::size_t grain =
      std::max<std::size_t>(1, kElementGrain / std::max<std::size_t>(1, cols));
  parallel_for(rows, grain, [x, q, scales, cols](std::size_t i0,
                                                 std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* row = x + i * cols;
      float amax = 0.0f;
      for (std::size_t j = 0; j < cols; ++j) {
        amax = std::max(amax, std::fabs(row[j]));
      }
      const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
      scales[i] = scale;
      const float inv = 1.0f / scale;
      std::int8_t* qrow = q + i * cols;
      for (std::size_t j = 0; j < cols; ++j) {
        qrow[j] = quantize_value(row[j], inv);
      }
    }
  });
}

void apply_dense(const QuantizedOp& op, const Tensor& in, Tensor& out,
                 QuantizedWorkspace& ws) {
  SATD_EXPECT(in.shape().rank() == 2, "quantized Dense expects [N, in]");
  const std::size_t rows = in.shape()[0];
  const std::size_t kdim = op.w.shape[0];
  const std::size_t out_f = op.w.shape[1];
  SATD_EXPECT(in.shape()[1] == kdim, "quantized Dense input width mismatch");
  quantize_rows(in.raw(), rows, kdim, ws);
  ws.acc.resize(rows * out_f);
  kernel::gemm_s8(ws.qx.data(), op.w.q.data(), rows, out_f, kdim,
                  ws.acc.data());
  out.ensure_shape(Shape{rows, out_f});
  const std::int32_t* acc = ws.acc.data();
  const float* scales = ws.row_scale.data();
  const float* bias = op.bias.raw();
  const float wscale = op.w.scale;
  float* po = out.raw();
  const std::size_t grain =
      std::max<std::size_t>(1, kElementGrain / std::max<std::size_t>(1, out_f));
  parallel_for(rows, grain,
               [acc, scales, bias, wscale, po, out_f](std::size_t i0,
                                                      std::size_t i1) {
                 for (std::size_t i = i0; i < i1; ++i) {
                   const float s = scales[i] * wscale;
                   const std::int32_t* arow = acc + i * out_f;
                   float* orow = po + i * out_f;
                   for (std::size_t j = 0; j < out_f; ++j) {
                     orow[j] = static_cast<float>(arow[j]) * s + bias[j];
                   }
                 }
               });
}

void apply_conv(const QuantizedOp& op, const Tensor& in, Tensor& out,
                QuantizedWorkspace& ws) {
  SATD_EXPECT(in.shape().rank() == 4, "quantized Conv expects [N, C, H, W]");
  SATD_EXPECT(in.shape()[1] == op.in_c, "quantized Conv channel mismatch");
  ConvGeometry g;
  g.in_channels = op.in_c;
  g.in_h = in.shape()[2];
  g.in_w = in.shape()[3];
  g.kernel = op.kernel;
  g.padding = op.padding;
  const std::size_t n = in.shape()[0];
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t patch = g.patch_size();
  const std::size_t out_c = op.out_c;

  im2col_batch(in, g, ws.cols);  // [N*oh*ow, patch]
  const std::size_t rows = n * oh * ow;
  quantize_rows(ws.cols.raw(), rows, patch, ws);
  ws.acc.resize(rows * out_c);
  // The filter bank was pre-transposed to [patch, out_c] at quantize
  // time, so this is the same plain NN GEMM shape as the dense path.
  kernel::gemm_s8(ws.qx.data(), op.w.q.data(), rows, out_c, patch,
                  ws.acc.data());

  // Dequantizing scatter into [N, out_c, oh, ow] — the mirror of
  // Conv2d::forward_into's bias scatter.
  out.ensure_shape(Shape{n, out_c, oh, ow});
  const std::int32_t* acc = ws.acc.data();
  const float* scales = ws.row_scale.data();
  const float* bias = op.bias.raw();
  const float wscale = op.w.scale;
  float* po = out.raw();
  parallel_for(n, [acc, scales, bias, wscale, po, out_c, oh,
                   ow](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* dst = po + i * out_c * oh * ow;
      const std::int32_t* arows = acc + i * oh * ow * out_c;
      const float* srows = scales + i * oh * ow;
      for (std::size_t p = 0; p < oh * ow; ++p) {
        const float s = srows[p] * wscale;
        for (std::size_t c = 0; c < out_c; ++c) {
          dst[c * oh * ow + p] =
              static_cast<float>(arows[p * out_c + c]) * s + bias[c];
        }
      }
    }
  });
}

void apply_affine(const QuantizedOp& op, const Tensor& in, Tensor& out) {
  SATD_EXPECT(in.shape().rank() == 4, "folded BatchNorm expects [N, C, H, W]");
  const std::size_t n = in.shape()[0];
  const std::size_t c = in.shape()[1];
  const std::size_t hw = in.shape()[2] * in.shape()[3];
  SATD_EXPECT(c == static_cast<std::size_t>(op.ch_scale.numel()),
              "folded BatchNorm channel mismatch");
  out.ensure_shape(in.shape());
  const float* px = in.raw();
  const float* sc = op.ch_scale.raw();
  const float* sh = op.ch_shift.raw();
  float* po = out.raw();
  parallel_for(n, [px, sc, sh, po, c, hw](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        const float* src = px + (i * c + ch) * hw;
        float* dst = po + (i * c + ch) * hw;
        for (std::size_t p = 0; p < hw; ++p) dst[p] = sc[ch] * src[p] + sh[ch];
      }
    }
  });
}

void apply_maxpool(const QuantizedOp& op, const Tensor& in, Tensor& out) {
  SATD_EXPECT(in.shape().rank() == 4, "MaxPool expects [N, C, H, W]");
  const std::size_t w = op.window;
  const std::size_t n = in.shape()[0];
  const std::size_t c = in.shape()[1];
  const std::size_t h = in.shape()[2];
  const std::size_t ww = in.shape()[3];
  SATD_EXPECT(h % w == 0 && ww % w == 0,
              "MaxPool extents must be divisible by the window");
  const std::size_t oh = h / w;
  const std::size_t ow = ww / w;
  out.ensure_shape(Shape{n, c, oh, ow});
  const float* px = in.raw();
  float* po = out.raw();
  parallel_for(n * c, [px, po, w, h, ww, oh, ow](std::size_t i0,
                                                 std::size_t i1) {
    for (std::size_t nc = i0; nc < i1; ++nc) {
      const float* src = px + nc * h * ww;
      float* dst = po + nc * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = src[oy * w * ww + ox * w];
          for (std::size_t dy = 0; dy < w; ++dy) {
            for (std::size_t dx = 0; dx < w; ++dx) {
              best = std::max(best, src[(oy * w + dy) * ww + ox * w + dx]);
            }
          }
          dst[oy * ow + ox] = best;
        }
      }
    }
  });
}

void apply_elementwise(const QuantizedOp& op, const Tensor& in, Tensor& out) {
  out.ensure_shape(in.shape());
  const float* px = in.raw();
  float* po = out.raw();
  const float slope = op.slope;
  const QuantizedOp::Kind kind = op.kind;
  parallel_for(in.numel(), kElementGrain,
               [px, po, slope, kind](std::size_t i0, std::size_t i1) {
                 switch (kind) {
                   case QuantizedOp::Kind::kReLU:
                     for (std::size_t i = i0; i < i1; ++i) {
                       po[i] = px[i] > 0.0f ? px[i] : 0.0f;
                     }
                     break;
                   case QuantizedOp::Kind::kLeakyReLU:
                     for (std::size_t i = i0; i < i1; ++i) {
                       po[i] = px[i] > 0.0f ? px[i] : slope * px[i];
                     }
                     break;
                   case QuantizedOp::Kind::kTanh:
                     for (std::size_t i = i0; i < i1; ++i) {
                       po[i] = std::tanh(px[i]);
                     }
                     break;
                   default:
                     break;  // unreachable (dispatch is exhaustive)
                 }
               });
}

void apply_flatten(const Tensor& in, Tensor& out) {
  const std::size_t n = in.shape()[0];
  SATD_EXPECT(n > 0, "Flatten expects a non-empty batch");
  out.ensure_shape(Shape{n, in.numel() / n});
  std::copy(in.raw(), in.raw() + in.numel(), out.raw());
}

}  // namespace

void quantize_symmetric(const Tensor& t, QuantizedTensor& out) {
  out.shape = t.shape();
  out.q.resize(t.numel());
  float amax = 0.0f;
  const float* p = t.raw();
  for (std::size_t i = 0; i < t.numel(); ++i) {
    amax = std::max(amax, std::fabs(p[i]));
  }
  out.scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  const float inv = 1.0f / out.scale;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    out.q[i] = quantize_value(p[i], inv);
  }
}

QuantizedModel QuantizedModel::from(Sequential& model) {
  QuantizedModel qm;
  qm.ops_.reserve(model.layer_count());
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Layer& layer = model.layer(i);
    QuantizedOp op;
    if (auto* dense = dynamic_cast<Dense*>(&layer)) {
      op.kind = QuantizedOp::Kind::kDense;
      quantize_symmetric(dense->weight(), op.w);
      op.bias = dense->bias();
      SATD_EXPECT(dense->in_features() <= kernel::kMaxS8Depth,
                  "Dense too deep for int8 accumulation");
    } else if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      op.kind = QuantizedOp::Kind::kConv;
      op.in_c = conv->in_channels();
      op.out_c = conv->out_channels();
      op.kernel = conv->kernel();
      op.padding = conv->padding();
      // Pre-transpose the [out_c, patch] filter bank to [patch, out_c]
      // so the forward GEMM is plain NN (cols · Wᵀ without a transposed
      // operand). Transposing BEFORE quantizing keeps the int8 image
      // identical to quantizing the original bank.
      const Tensor& w = conv->weight();
      const std::size_t out_c = w.shape()[0];
      const std::size_t patch = w.shape()[1];
      SATD_EXPECT(patch <= kernel::kMaxS8Depth,
                  "Conv patch too deep for int8 accumulation");
      Tensor wt(Shape{patch, out_c});
      for (std::size_t c = 0; c < out_c; ++c) {
        for (std::size_t p = 0; p < patch; ++p) {
          wt.raw()[p * out_c + c] = w.raw()[c * patch + p];
        }
      }
      quantize_symmetric(wt, op.w);
      op.bias = conv->bias();
    } else if (auto* bn = dynamic_cast<BatchNorm2d*>(&layer)) {
      // Inference BatchNorm is an affine in the running statistics:
      //   y = gamma * (x - mean) * inv_std + beta
      //     = (gamma * inv_std) * x + (beta - mean * gamma * inv_std).
      op.kind = QuantizedOp::Kind::kAffine;
      const std::size_t c = bn->channels();
      op.ch_scale = Tensor(Shape{c});
      op.ch_shift = Tensor(Shape{c});
      const float* gamma = bn->gamma().raw();
      const float* beta = bn->beta().raw();
      const float* mean = bn->running_mean().raw();
      const float* var = bn->running_var().raw();
      for (std::size_t ch = 0; ch < c; ++ch) {
        const float inv_std = 1.0f / std::sqrt(var[ch] + bn->eps());
        const float s = gamma[ch] * inv_std;
        op.ch_scale.raw()[ch] = s;
        op.ch_shift.raw()[ch] = beta[ch] - mean[ch] * s;
      }
    } else if (auto* leaky = dynamic_cast<LeakyReLU*>(&layer)) {
      op.kind = QuantizedOp::Kind::kLeakyReLU;
      op.slope = leaky->slope();
    } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
      op.kind = QuantizedOp::Kind::kReLU;
    } else if (dynamic_cast<Tanh*>(&layer) != nullptr) {
      op.kind = QuantizedOp::Kind::kTanh;
    } else if (auto* pool = dynamic_cast<MaxPool2d*>(&layer)) {
      op.kind = QuantizedOp::Kind::kMaxPool;
      op.window = pool->window();
    } else if (dynamic_cast<Flatten*>(&layer) != nullptr) {
      op.kind = QuantizedOp::Kind::kFlatten;
    } else if (dynamic_cast<Dropout*>(&layer) != nullptr) {
      op.kind = QuantizedOp::Kind::kIdentity;
    } else {
      SATD_EXPECT(false, "cannot quantize layer: " + layer.name());
    }
    qm.ops_.push_back(std::move(op));
  }
  return qm;
}

void QuantizedModel::forward_into(const Tensor& x, Tensor& out,
                                  QuantizedWorkspace& ws) const {
  SATD_EXPECT(x.shape().rank() >= 2, "quantized forward needs a batch");
  const Tensor* cur = &x;
  bool use_ping = true;
  for (const QuantizedOp& op : ops_) {
    if (op.kind == QuantizedOp::Kind::kIdentity) continue;
    Tensor& dst = use_ping ? ws.ping : ws.pong;
    switch (op.kind) {
      case QuantizedOp::Kind::kDense:
        apply_dense(op, *cur, dst, ws);
        break;
      case QuantizedOp::Kind::kConv:
        apply_conv(op, *cur, dst, ws);
        break;
      case QuantizedOp::Kind::kAffine:
        apply_affine(op, *cur, dst);
        break;
      case QuantizedOp::Kind::kMaxPool:
        apply_maxpool(op, *cur, dst);
        break;
      case QuantizedOp::Kind::kFlatten:
        apply_flatten(*cur, dst);
        break;
      default:
        apply_elementwise(op, *cur, dst);
        break;
    }
    cur = &dst;
    use_ping = !use_ping;
  }
  out.ensure_shape(cur->shape());
  std::copy(cur->raw(), cur->raw() + cur->numel(), out.raw());
}

}  // namespace satd::nn
