#include "net/frontend.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/contract.h"
#include "common/log.h"
#include "net/fault.h"

namespace satd::net {

FrontEnd::FrontEnd(FrontEndConfig config, FrontEndSink sink, Clock& clock)
    : config_(std::move(config)), sink_(std::move(sink)), clock_(clock) {
  SATD_EXPECT(config_.listen.valid(), "front end needs a listen address");
  SATD_EXPECT(static_cast<bool>(sink_.submit), "front end needs a submit sink");
  SATD_EXPECT(config_.poll_interval > 0, "poll_interval must be positive");
}

FrontEnd::~FrontEnd() { stop(); }

void FrontEnd::start() {
  if (started_) return;
  listener_ = listen_socket(config_.listen);
  if (config_.listen.kind == env::ListenAddress::Kind::kTcp) {
    port_ = local_port(listener_);
  }
  stop_.store(false);
  started_ = true;
  loop_ = std::thread([this] { run(); });
  log::info() << "frontend: listening on " << to_string(config_.listen);
}

void FrontEnd::stop() {
  if (!started_) return;
  stop_.store(true);
  if (loop_.joinable()) loop_.join();
  for (auto& c : conns_) close_conn(*c);
  conns_.clear();
  listener_.reset();
  started_ = false;
}

FrontEndStats FrontEnd::stats() const {
  FrontEndStats s;
  s.accepted = accepted_.load();
  s.closed = closed_.load();
  s.requests = requests_.load();
  s.responses = responses_.load();
  s.rejects = rejects_.load();
  s.wire_errors = wire_errors_.load();
  s.slow_loris = slow_loris_.load();
  s.cancelled = cancelled_.load();
  s.faults_injected = faults_.load();
  return s;
}

void FrontEnd::close_conn(Conn& conn) {
  if (!conn.fd.valid()) return;
  // Abandoned tickets: free the queue slots so the server does not
  // compute responses nobody will read. Cancel-after-pop is a benign
  // no-op (the worker serves into the dead ticket).
  for (const Pending& p : conn.pending) {
    if (p.cancel_id != 0 && sink_.cancel && sink_.cancel(p.shard, p.cancel_id)) {
      cancelled_.fetch_add(1);
    }
  }
  conn.pending.clear();
  conn.fd.reset();
  closed_.fetch_add(1);
}

void FrontEnd::enqueue_reject(Conn& conn, std::uint64_t request_id,
                              WireReject code, const std::string& message) {
  RejectFrame f;
  f.request_id = request_id;
  f.code = code;
  f.message = message;
  conn.outbuf += encode_reject(f);
  rejects_.fetch_add(1);
}

void FrontEnd::accept_new() {
  for (;;) {
    const int raw = ::accept(listener_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      log::warn() << "frontend: accept failed: " << std::strerror(errno);
      return;
    }
    Fd fd(raw);
    set_nonblocking(fd.get());
    accepted_.fetch_add(1);
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(fd);
    conn->decoder = FrameDecoder(config_.max_payload);
    conn->last_read = clock_.now();
    if (conns_.size() >= config_.max_connections) {
      // Over the limit: say why, flush, close. The reject frame makes
      // this distinguishable from a crash at the client.
      enqueue_reject(*conn, 0, WireReject::kOverloaded,
                     "connection limit reached");
      conn->closing = true;
    }
    conns_.push_back(std::move(conn));
  }
}

bool FrontEnd::service_read(Conn& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      conn.last_read = clock_.now();
      conn.decoder.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET and friends
  }

  FrameType type;
  std::string payload;
  while (conn.decoder.next(type, payload)) {
    if (type != FrameType::kRequest) {
      // Clients must not send response/reject frames; treat as protocol
      // abuse and close.
      enqueue_reject(conn, 0, WireReject::kMalformed,
                     "unexpected frame type from client");
      conn.closing = true;
      wire_errors_.fetch_add(1);
      return true;
    }
    RequestFrame req;
    std::string err;
    if (!decode_request(payload, req, err)) {
      enqueue_reject(conn, 0, WireReject::kMalformed, err);
      conn.closing = true;
      wire_errors_.fetch_add(1);
      return true;
    }
    Pending p;
    p.request_id = req.request_id;
    p.ticket = sink_.submit(req.image, req.timeout, req.route_key, &p.shard,
                            &p.cancel_id);
    conn.pending.push_back(std::move(p));
    requests_.fetch_add(1);
  }
  if (conn.decoder.error() != WireError::kNone) {
    const WireReject code = conn.decoder.error() == WireError::kOversized
                                ? WireReject::kTooLarge
                                : WireReject::kMalformed;
    enqueue_reject(conn, 0, code, to_string(conn.decoder.error()));
    conn.closing = true;
    wire_errors_.fetch_add(1);
  }
  return true;
}

void FrontEnd::harvest(Conn& conn) {
  for (std::size_t i = 0; i < conn.pending.size();) {
    Pending& p = conn.pending[i];
    if (!p.ticket.ready()) {
      ++i;
      continue;
    }
    serve::Response resp = p.ticket.wait();
    ResponseFrame f;
    f.request_id = p.request_id;
    f.serve_error = static_cast<std::uint8_t>(resp.error);
    f.model_version = resp.model_version;
    f.predicted = static_cast<std::uint32_t>(resp.predicted);
    f.batch_size = static_cast<std::uint32_t>(resp.batch_size);
    f.shard = p.shard;
    f.latency = resp.latency;
    f.probabilities = std::move(resp.probabilities);
    std::string frame = encode_response(f);

    std::size_t torn = 0;
    switch (fault::take_response_fault(torn)) {
      case fault::ResponseFault::kNone:
        conn.outbuf += frame;
        responses_.fetch_add(1);
        break;
      case fault::ResponseFault::kTorn:
        // Server "crashes" mid-write: K bytes, then a hard close.
        faults_.fetch_add(1);
        conn.outbuf += frame.substr(0, std::min(torn, frame.size()));
        conn.closing = true;
        break;
      case fault::ResponseFault::kCorrupt: {
        // Damage one payload byte; the CRC trailer convicts it.
        faults_.fetch_add(1);
        frame[kHeaderBytes] = static_cast<char>(frame[kHeaderBytes] ^ 0x5a);
        conn.outbuf += frame;
        responses_.fetch_add(1);
        break;
      }
      case fault::ResponseFault::kDrop:
        // Swallow the response, keep the connection: the client's read
        // deadline is on its own.
        faults_.fetch_add(1);
        break;
      case fault::ResponseFault::kDisconnect:
        faults_.fetch_add(1);
        conn.closing = true;
        break;
    }
    conn.pending[i] = std::move(conn.pending.back());
    conn.pending.pop_back();
  }
}

bool FrontEnd::flush(Conn& conn) {
  while (!conn.outbuf.empty()) {
    // MSG_NOSIGNAL: a peer that vanished mid-flush must surface as EPIPE
    // here, not SIGPIPE the whole process.
    const ssize_t n = ::send(conn.fd.get(), conn.outbuf.data(),
                             conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // EPIPE/ECONNRESET: peer is gone
  }
  return true;
}

void FrontEnd::run() {
  std::vector<pollfd> pfds;
  while (!stop_.load()) {
    pfds.clear();
    pfds.push_back({listener_.get(), POLLIN, 0});
    for (auto& c : conns_) {
      short events = 0;
      // Backpressure: a peer that will not drain its responses stops
      // being read, bounding outbuf at cap + one frame.
      if (!c->closing && c->outbuf.size() < config_.max_write_buffer) {
        events |= POLLIN;
      }
      if (!c->outbuf.empty()) events |= POLLOUT;
      pfds.push_back({c->fd.get(), events, 0});
    }
    const int timeout_ms =
        std::max(1, static_cast<int>(config_.poll_interval * 1000.0 + 0.5));
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);

    if (pfds[0].revents & POLLIN) accept_new();

    const double now = clock_.now();
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& conn = *conns_[i];
      // pfds index i+1 only covers conns that existed when the poll set
      // was built; fresh accepts are serviced next quantum.
      const short revents = i + 1 < pfds.size() ? pfds[i + 1].revents : 0;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
      if (alive && (revents & POLLIN)) alive = service_read(conn);
      if (alive && !conn.closing && conn.decoder.mid_frame() &&
          now - conn.last_read > config_.read_deadline) {
        // Slow loris: bytes of a frame arrived, then the stream stalled.
        slow_loris_.fetch_add(1);
        alive = false;
      }
      if (alive) {
        harvest(conn);
        alive = flush(conn);
      }
      if (alive && conn.closing && conn.outbuf.empty()) alive = false;
      if (!alive) close_conn(conn);
    }
    // Compact closed connections.
    for (std::size_t i = 0; i < conns_.size();) {
      if (!conns_[i]->fd.valid()) {
        conns_[i] = std::move(conns_.back());
        conns_.pop_back();
      } else {
        ++i;
      }
    }

    if (sink_.tick) sink_.tick();
  }
}

}  // namespace satd::net
