#include "net/fault.h"

#include <atomic>

namespace satd::net::fault {

namespace {
std::atomic<int> g_response_fault{0};
std::atomic<std::size_t> g_torn_bytes{0};
std::atomic<std::size_t> g_connect_refused{0};
}  // namespace

void arm_torn_response(std::size_t bytes) {
  g_torn_bytes.store(bytes);
  g_response_fault.store(static_cast<int>(ResponseFault::kTorn));
}

void arm_corrupt_response() {
  g_response_fault.store(static_cast<int>(ResponseFault::kCorrupt));
}

void arm_drop_response() {
  g_response_fault.store(static_cast<int>(ResponseFault::kDrop));
}

void arm_disconnect_response() {
  g_response_fault.store(static_cast<int>(ResponseFault::kDisconnect));
}

void arm_connect_refused(std::size_t count) {
  g_connect_refused.store(count);
}

void disarm() {
  g_response_fault.store(0);
  g_torn_bytes.store(0);
  g_connect_refused.store(0);
}

ResponseFault take_response_fault(std::size_t& torn_bytes_out) {
  const int f = g_response_fault.exchange(0);
  torn_bytes_out = g_torn_bytes.load();
  return static_cast<ResponseFault>(f);
}

bool take_connect_refused() {
  std::size_t n = g_connect_refused.load();
  while (n > 0) {
    if (g_connect_refused.compare_exchange_weak(n, n - 1)) return true;
  }
  return false;
}

bool armed() {
  return g_response_fault.load() != 0 || g_connect_refused.load() > 0;
}

}  // namespace satd::net::fault
