// SATDWIRE1: the length-prefixed binary wire protocol of the socket
// serving front end.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     8  magic "SATDWIRE"
//        8     1  version byte '1' (the stream leads with "SATDWIRE1")
//        9     1  frame type (1=request, 2=response, 3=reject)
//       10     4  payload length N (u32, capped by the decoder)
//       14     N  payload
//     14+N     4  CRC-32 trailer over bytes [8, 14+N) — version, type,
//                 length and payload, the same IEEE/zlib polynomial the
//                 durable file frame uses (common/crc32.h)
//
// Request payload:   u64 request_id, f64 timeout_seconds, u64 route_key,
//                    u32 rank, u64 dims[rank], f32 pixels[numel]
// Response payload:  u64 request_id, u8 serve_error, u64 model_version,
//                    u32 predicted, u32 batch_size, u32 shard,
//                    f64 latency_seconds, u32 nprobs, f32 probs[nprobs]
// Reject payload:    u64 request_id (0 = unparseable request), u8 code,
//                    u32 message_length, bytes message
//
// A reject frame is the PROTOCOL-level "no": malformed input, oversized
// frames, overload at the accept loop, shutdown. Serve-level rejections
// (queue full, infeasible deadline, ...) travel as ordinary response
// frames carrying their typed ServeError — the client distinguishes
// "the server could not read me" from "the server read me and said no".
//
// The FrameDecoder is incremental: feed() accepts arbitrary byte chunks
// (a TCP stream has no message boundaries) and next() yields complete
// frames. Any framing damage — wrong magic, unknown version or type, a
// length past the cap, a CRC mismatch — poisons the decoder with a typed
// WireError: after desynchronization resynchronizing a byte stream is
// guesswork, so the connection must be closed. Malformed input NEVER
// crashes: every decode path is bounds-checked (drilled by the fuzz
// sweeps in tests/net/wire_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace satd::net {

/// Wire protocol magic: these 9 bytes lead every frame.
inline constexpr char kWireMagic[9] = {'S', 'A', 'T', 'D', 'W', 'I',
                                       'R', 'E', '1'};
inline constexpr std::uint8_t kWireVersion = '1';
inline constexpr std::size_t kHeaderBytes = 14;   ///< magic..length
inline constexpr std::size_t kTrailerBytes = 4;   ///< CRC-32

/// Frame kinds on the wire.
enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kReject = 3,
};

/// Protocol-level rejection codes carried by reject frames.
enum class WireReject : std::uint8_t {
  kMalformed = 1,     ///< the frame/payload could not be parsed
  kTooLarge = 2,      ///< payload exceeded the server's cap
  kOverloaded = 3,    ///< connection/backpressure limits hit
  kShuttingDown = 4,  ///< server is draining
};

/// Typed decoder failure. Any value but kNone poisons the stream.
enum class WireError {
  kNone = 0,
  kBadMagic,     ///< stream does not start with SATDWIRE1
  kBadVersion,   ///< version byte is not '1'
  kBadType,      ///< unknown frame type
  kOversized,    ///< declared payload length exceeds the cap
  kBadCrc,       ///< CRC-32 trailer mismatch (torn or corrupted frame)
  kBadPayload,   ///< frame intact but payload malformed for its type
};

const char* to_string(WireError e);
const char* to_string(WireReject r);

/// One inference request on the wire.
struct RequestFrame {
  std::uint64_t request_id = 0;  ///< client-chosen; echoed in the response
  double timeout = 0.0;          ///< relative seconds; 0 = no deadline
  std::uint64_t route_key = 0;   ///< shard-routing key; 0 = server picks
  Tensor image;
};

/// One inference response on the wire (serve::Response + routing info).
struct ResponseFrame {
  std::uint64_t request_id = 0;
  std::uint8_t serve_error = 0;      ///< serve::ServeError value
  std::uint64_t model_version = 0;
  std::uint32_t predicted = 0;
  std::uint32_t batch_size = 0;
  std::uint32_t shard = 0;           ///< which shard served it
  double latency = 0.0;
  std::vector<float> probabilities;
};

/// Protocol-level rejection.
struct RejectFrame {
  std::uint64_t request_id = 0;  ///< 0 when the request was unparseable
  WireReject code = WireReject::kMalformed;
  std::string message;
};

/// Frames a payload: header + payload + CRC trailer.
std::string wrap_frame(FrameType type, const std::string& payload);

std::string encode_request(const RequestFrame& f);
std::string encode_response(const ResponseFrame& f);
std::string encode_reject(const RejectFrame& f);

/// Payload decoders. Return false (and fill `err` with a human-readable
/// reason) on any malformation; never throw, never read out of bounds.
bool decode_request(const std::string& payload, RequestFrame& out,
                    std::string& err);
bool decode_response(const std::string& payload, ResponseFrame& out,
                     std::string& err);
bool decode_reject(const std::string& payload, RejectFrame& out,
                   std::string& err);

/// Default payload cap: a [1, 28, 28] image is ~3 KB; 4 MB leaves two
/// orders of magnitude of headroom while bounding a hostile length field.
inline constexpr std::size_t kDefaultMaxPayload = 4u << 20;

/// Upper bound on the tensor rank a request may carry.
inline constexpr std::uint32_t kMaxWireRank = 8;

/// Incremental frame parser over a byte stream (see file comment).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes. Returns false once the stream is poisoned
  /// (error() != kNone); further input is ignored.
  bool feed(const char* data, std::size_t n);

  /// Extracts the next complete frame. Returns false when no complete
  /// frame is buffered (or the stream is poisoned). Header/CRC damage is
  /// detected here and poisons the stream.
  bool next(FrameType& type, std::string& payload);

  WireError error() const { return error_; }

  /// True while a frame is buffered only partially — the slow-loris
  /// signal the front end's read deadline acts on.
  bool mid_frame() const { return error_ == WireError::kNone && !buf_.empty(); }

  std::size_t buffered() const { return buf_.size(); }

 private:
  std::size_t max_payload_;
  std::string buf_;
  WireError error_ = WireError::kNone;
};

}  // namespace satd::net
