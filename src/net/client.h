// SATDWIRE1 client: one connection at a time, typed errors, idempotent
// retry with seeded-jitter backoff and endpoint failover.
//
// Inference is idempotent — resubmitting an image cannot double-apply
// anything — so the client retries aggressively on every TRANSPORT
// failure: refused/failed connects, connections lost mid-conversation,
// CRC-damaged responses, response timeouts. Retries rotate through the
// configured endpoints (failover: if shard A's front end died, the next
// attempt lands on B) and sleep a common/backoff schedule between
// attempts; the jitter is drawn from a seeded Rng, so a test can assert
// the exact schedule a client executed (via FakeClock::sleeps()).
//
// Not everything retries. A server that READ the request and said no is
// not a transport failure:
//   - reject(kMalformed|kTooLarge): resending the same bytes cannot
//     help -> terminal kRejected.
//   - reject(kOverloaded|kShuttingDown): transient by construction ->
//     retry on the next endpoint.
//   - response with a serve error: kQueueFull/kStopping are transient
//     (another shard may have room) -> retry; kDeadlineInfeasible,
//     kDeadlineMiss, kNoModel, kCancelled are verdicts about THIS
//     request -> terminal kServe.
//
// Every outcome is a ClientResult carrying a typed ClientError, the
// attempt count, and the last failure detail — callers never parse
// message strings to branch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/env.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/types.h"

namespace satd::net {

/// Client knobs. Defaults suit tests/localhost; production raises the
/// timeouts.
struct ClientConfig {
  std::vector<env::ListenAddress> endpoints;  ///< failover rotation order
  double connect_timeout = 1.0;    ///< seconds per connect attempt
  double request_timeout = 10.0;   ///< seconds awaiting each response
  std::size_t max_attempts = 4;    ///< total tries across endpoints
  BackoffPolicy backoff{0.01, 2.0, 0.5, 0.1};  ///< inter-attempt sleeps
  std::uint64_t backoff_seed = 0x5eedULL;      ///< reproducible jitter
  std::size_t max_payload = kDefaultMaxPayload;
};

/// Typed terminal outcome of a request() call.
enum class ClientError {
  kNone = 0,        ///< served; serve_error/result fields are valid
  kConnectFailed,   ///< attempts exhausted without ever connecting
  kConnectionLost,  ///< attempts exhausted on mid-conversation EOF/reset
  kTimeout,         ///< attempts exhausted on response deadlines
  kProtocol,        ///< attempts exhausted on wire damage (CRC, framing)
  kRejected,        ///< server rejected the request as malformed/too large
  kServe,           ///< served a terminal serve error (see serve_error)
};

const char* to_string(ClientError e);

/// Everything a request() call produces.
struct ClientResult {
  ClientError error = ClientError::kNone;
  serve::ServeError serve_error = serve::ServeError::kNone;
  std::size_t predicted = 0;
  std::vector<float> probabilities;
  std::uint64_t model_version = 0;
  std::uint32_t shard = 0;       ///< which shard served it
  std::size_t batch_size = 0;
  double latency = 0.0;          ///< server-side seconds
  std::size_t attempts = 0;      ///< tries consumed (1 = first try worked)
  std::string detail;            ///< last failure description (diagnostics)

  bool ok() const { return error == ClientError::kNone; }
};

/// Retrying SATDWIRE1 client (see file comment). Not thread-safe; one
/// Client per thread.
class Client {
 public:
  explicit Client(ClientConfig config, Clock& clock = SystemClock::instance());
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one image and awaits its response, retrying per the file
  /// comment. `timeout` is the SERVER-side deadline forwarded in the
  /// frame (0 = none); the transport deadline is config.request_timeout.
  ClientResult request(const Tensor& image, double timeout = 0.0,
                       std::uint64_t route_key = 0);

  /// Drops the cached connection (next request reconnects).
  void close();

  /// Endpoint index the cached connection points at (diagnostics).
  std::size_t endpoint_cursor() const { return cursor_; }

 private:
  /// Ensures conn_ is connected to endpoints_[cursor_]; false + detail
  /// on failure.
  bool ensure_connected(std::string& detail);
  /// Advances to the next endpoint and drops the connection.
  void rotate();
  bool send_all(const std::string& bytes, std::string& detail);
  /// Reads until a frame arrives or `deadline` (clock time) passes.
  /// Returns false with `why` one of "timeout" | "lost" | "protocol".
  bool read_frame(double deadline, FrameType& type, std::string& payload,
                  std::string& why, std::string& detail);

  ClientConfig config_;
  Clock& clock_;
  Backoff backoff_;
  Fd conn_;
  FrameDecoder decoder_;
  std::size_t cursor_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace satd::net
