#include "net/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/contract.h"

namespace satd::net {

const char* to_string(ClientError e) {
  switch (e) {
    case ClientError::kNone: return "ok";
    case ClientError::kConnectFailed: return "connect_failed";
    case ClientError::kConnectionLost: return "connection_lost";
    case ClientError::kTimeout: return "timeout";
    case ClientError::kProtocol: return "protocol";
    case ClientError::kRejected: return "rejected";
    case ClientError::kServe: return "serve";
  }
  return "unknown";
}

Client::Client(ClientConfig config, Clock& clock)
    : config_(std::move(config)),
      clock_(clock),
      backoff_(config_.backoff, config_.backoff_seed),
      decoder_(config_.max_payload) {
  SATD_EXPECT(!config_.endpoints.empty(), "client needs at least one endpoint");
  SATD_EXPECT(config_.max_attempts >= 1, "max_attempts must be >= 1");
  for (const auto& ep : config_.endpoints) {
    SATD_EXPECT(ep.valid(), "client endpoints must be valid addresses");
  }
}

Client::~Client() { close(); }

void Client::close() {
  conn_.reset();
  decoder_ = FrameDecoder(config_.max_payload);
}

void Client::rotate() {
  close();
  cursor_ = (cursor_ + 1) % config_.endpoints.size();
}

bool Client::ensure_connected(std::string& detail) {
  if (conn_.valid()) return true;
  conn_ = connect_socket(config_.endpoints[cursor_], config_.connect_timeout,
                         detail);
  decoder_ = FrameDecoder(config_.max_payload);
  return conn_.valid();
}

bool Client::send_all(const std::string& bytes, std::string& detail) {
  std::size_t off = 0;
  const double deadline = clock_.now() + config_.request_timeout;
  while (off < bytes.size()) {
    const ssize_t n = ::send(conn_.get(), bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const double remaining = deadline - clock_.now();
      if (remaining <= 0) {
        detail = "send timed out";
        return false;
      }
      pollfd pfd{conn_.get(), POLLOUT, 0};
      ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    detail = std::string("send failed: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::read_frame(double deadline, FrameType& type,
                        std::string& payload, std::string& why,
                        std::string& detail) {
  for (;;) {
    if (decoder_.next(type, payload)) return true;
    if (decoder_.error() != WireError::kNone) {
      why = "protocol";
      detail = std::string("wire error: ") + to_string(decoder_.error());
      return false;
    }
    const double remaining = deadline - clock_.now();
    if (remaining <= 0) {
      why = "timeout";
      detail = "response deadline exceeded";
      return false;
    }
    pollfd pfd{conn_.get(), POLLIN, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (n < 0 && errno != EINTR) {
      why = "lost";
      detail = std::string("poll failed: ") + std::strerror(errno);
      return false;
    }
    if (n <= 0) continue;  // re-check the deadline
    char buf[64 * 1024];
    const ssize_t r = ::read(conn_.get(), buf, sizeof(buf));
    if (r > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    why = "lost";
    detail = r == 0 ? "connection closed by server"
                    : std::string("read failed: ") + std::strerror(errno);
    return false;
  }
}

ClientResult Client::request(const Tensor& image, double timeout,
                             std::uint64_t route_key) {
  ClientResult result;
  // What request() returns when every attempt fails: the classification
  // of the LAST failure (the freshest evidence about the fleet's state).
  ClientError last_error = ClientError::kConnectFailed;
  serve::ServeError last_serve = serve::ServeError::kNone;
  std::string detail;

  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    result.attempts = attempt + 1;
    if (attempt > 0) clock_.sleep_for(backoff_.delay(attempt - 1));

    if (!ensure_connected(detail)) {
      last_error = ClientError::kConnectFailed;
      last_serve = serve::ServeError::kNone;
      result.detail = detail;
      rotate();
      continue;
    }

    RequestFrame req;
    req.request_id = next_id_++;
    req.timeout = timeout;
    req.route_key = route_key;
    req.image = image;
    if (!send_all(encode_request(req), detail)) {
      last_error = ClientError::kConnectionLost;
      last_serve = serve::ServeError::kNone;
      result.detail = detail;
      rotate();
      continue;
    }

    const double deadline = clock_.now() + config_.request_timeout;
    bool retry = false;
    for (;;) {
      FrameType type;
      std::string payload, why;
      if (!read_frame(deadline, type, payload, why, detail)) {
        last_error = why == "timeout"    ? ClientError::kTimeout
                     : why == "protocol" ? ClientError::kProtocol
                                         : ClientError::kConnectionLost;
        last_serve = serve::ServeError::kNone;
        result.detail = detail;
        // The connection may still deliver the stale response later;
        // a retry must start from a clean stream.
        rotate();
        retry = true;
        break;
      }

      if (type == FrameType::kReject) {
        RejectFrame rej;
        std::string err;
        if (!decode_reject(payload, rej, err)) {
          last_error = ClientError::kProtocol;
          result.detail = "undecodable reject frame: " + err;
          rotate();
          retry = true;
          break;
        }
        if (rej.code == WireReject::kOverloaded ||
            rej.code == WireReject::kShuttingDown) {
          // Transient by construction: another endpoint (or a moment of
          // patience) may succeed.
          last_error = ClientError::kRejected;
          result.detail = std::string(to_string(rej.code)) + ": " +
                          rej.message;
          rotate();
          retry = true;
          break;
        }
        // Malformed/too large: resending the same bytes cannot help.
        result.error = ClientError::kRejected;
        result.detail = std::string(to_string(rej.code)) + ": " + rej.message;
        // The server closes poisoned streams; drop ours too.
        close();
        return result;
      }

      if (type != FrameType::kResponse) {
        last_error = ClientError::kProtocol;
        result.detail = "unexpected frame type from server";
        rotate();
        retry = true;
        break;
      }

      ResponseFrame resp;
      std::string err;
      if (!decode_response(payload, resp, err)) {
        last_error = ClientError::kProtocol;
        result.detail = "undecodable response: " + err;
        rotate();
        retry = true;
        break;
      }
      if (resp.request_id != req.request_id) continue;  // stale; keep reading

      const auto serve_error =
          static_cast<serve::ServeError>(resp.serve_error);
      if (serve_error == serve::ServeError::kQueueFull ||
          serve_error == serve::ServeError::kStopping) {
        // Transient serve-side pressure: retry (the router may pick a
        // different shard for the resubmission).
        last_error = ClientError::kServe;
        last_serve = serve_error;
        result.detail = std::string("serve: ") + serve::to_string(serve_error);
        retry = true;
        break;
      }
      result.error = serve_error == serve::ServeError::kNone
                         ? ClientError::kNone
                         : ClientError::kServe;
      result.serve_error = serve_error;
      result.predicted = resp.predicted;
      result.probabilities = std::move(resp.probabilities);
      result.model_version = resp.model_version;
      result.shard = resp.shard;
      result.batch_size = resp.batch_size;
      result.latency = resp.latency;
      return result;
    }
    SATD_ENSURE(retry, "inner loop exits by return or retry");
  }

  result.error = last_error;
  result.serve_error = last_serve;
  return result;
}

}  // namespace satd::net
