// Thin POSIX socket layer: RAII fds, unix-domain + TCP listen/connect.
//
// Everything above this file (front end, client) works in terms of
// non-blocking fds and poll(); this file owns the address-family
// plumbing. Addresses arrive pre-parsed as env::ListenAddress (the
// hardened SATD_LISTEN/--listen parser), so by the time a socket is
// created the address is structurally valid — failures here are OS
// failures (port in use, path not writable, peer gone) and surface as a
// typed SocketError carrying the address and strerror(errno).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/env.h"

namespace satd::net {

/// Thrown on OS-level socket failures (socket/bind/listen/connect/
/// getsockname). The message carries the address and errno context.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// Move-only RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Marks an fd non-blocking (O_NONBLOCK). Throws SocketError.
void set_nonblocking(int fd);

/// Creates a non-blocking listening socket on the given address.
/// Unix: an existing socket file at the path is unlinked first (stale
/// sockets from a crashed server must not block restart). TCP: binds
/// with SO_REUSEADDR; the host must be a numeric IPv4 address,
/// "localhost" (-> 127.0.0.1) or "*" / "0.0.0.0" (any interface).
/// Port 0 binds an ephemeral port — read it back with local_port().
Fd listen_socket(const env::ListenAddress& addr, int backlog = 128);

/// Resolved TCP port of a bound socket (getsockname).
std::uint16_t local_port(const Fd& listener);

/// Non-blocking connect with a poll()-based timeout (seconds). Returns
/// a CONNECTED non-blocking fd, or an invalid Fd on refusal/timeout/
/// unreachable (err_out carries the reason). Only OS-level absurdities
/// (socket() itself failing) throw.
Fd connect_socket(const env::ListenAddress& addr, double timeout,
                  std::string& err_out);

/// Renders an address back to its canonical textual form (diagnostics).
std::string to_string(const env::ListenAddress& addr);

}  // namespace satd::net
