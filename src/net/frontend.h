// Socket front end: a single-threaded poll() event loop that speaks
// SATDWIRE1 and feeds the serving stack's admission queue.
//
// One thread, no thread-per-connection, no thread-per-request: the loop
// polls the listener plus every connection on a short quantum, reads
// whatever bytes arrived, decodes complete request frames, and submits
// them through a Sink (the shard router adapts itself into one). The
// serve::Ticket returned by the sink is future-based; instead of parking
// a thread on each future, the loop HARVESTS tickets with
// Ticket::ready() every quantum and writes response frames as they
// resolve. Responses therefore interleave freely on a connection —
// request ids, not arrival order, correlate them.
//
// Robustness posture (drilled by tests/net/):
//   - Malformed input never crashes: framing damage poisons the decoder,
//     the client gets a typed reject frame, and the connection closes.
//   - Slow loris: a connection stalled MID-FRAME past read_deadline is
//     closed (idle connections between frames are fine — keep-alive).
//   - Backpressure: a connection whose write buffer exceeds
//     max_write_buffer stops being read until the peer drains it, so a
//     slow reader bounds its own memory, not the server's.
//   - Connection limit: accepts past max_connections are told
//     kOverloaded and closed.
//   - Abandoned work: when a connection dies with requests still queued,
//     the sink's cancel hook frees their queue slots (satellite of the
//     queue-cancellation path) — the server does not compute responses
//     nobody will read.
//   - Fault injection: before sending a response the loop consults
//     net::fault and applies the armed damage (torn write + close, CRC
//     corruption, drop, disconnect) — the chaos tests' server half.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/types.h"

namespace satd::net {

/// Front-end knobs.
struct FrontEndConfig {
  env::ListenAddress listen;       ///< where to bind (unix or tcp)
  double read_deadline = 5.0;      ///< max seconds stalled mid-frame
  std::size_t max_payload = kDefaultMaxPayload;
  std::size_t max_write_buffer = 4u << 20;  ///< backpressure cap per conn
  std::size_t max_connections = 64;
  double poll_interval = 0.001;    ///< event-loop quantum (seconds)
};

/// Event-loop counters (atomics; readable while the loop runs).
struct FrontEndStats {
  std::uint64_t accepted = 0;      ///< connections accepted
  std::uint64_t closed = 0;        ///< connections closed (any reason)
  std::uint64_t requests = 0;      ///< request frames decoded + submitted
  std::uint64_t responses = 0;     ///< response frames written
  std::uint64_t rejects = 0;       ///< protocol reject frames written
  std::uint64_t wire_errors = 0;   ///< poisoned streams
  std::uint64_t slow_loris = 0;    ///< mid-frame read-deadline closes
  std::uint64_t cancelled = 0;     ///< pending requests cancelled at close
  std::uint64_t faults_injected = 0;  ///< armed faults applied
};

/// How the front end talks to the serving stack. A Sink decouples net/
/// from serve/: in production it wraps a ShardRouter, in tests it can be
/// three lambdas.
struct FrontEndSink {
  /// Submit one image; returns the ticket plus (optionally) the shard
  /// index and admission id for cancellation.
  std::function<serve::Ticket(const Tensor& image, double timeout,
                              std::uint64_t route_key,
                              std::uint32_t* shard_out,
                              std::uint64_t* id_out)>
      submit;
  /// Cancel a queued request (abandoned connection). May be null.
  std::function<bool(std::uint32_t shard, std::uint64_t id)> cancel;
  /// Called once per loop quantum (the router's rollout tick). May be
  /// null.
  std::function<void()> tick;
};

/// poll()-driven SATDWIRE1 server (see file comment).
class FrontEnd {
 public:
  FrontEnd(FrontEndConfig config, FrontEndSink sink,
           Clock& clock = SystemClock::instance());
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Binds the listener and spawns the event-loop thread. Throws
  /// SocketError when the address cannot be bound. Idempotent.
  void start();

  /// Closes the listener and every connection (cancelling their pending
  /// requests), then joins the loop. Idempotent; runs from the dtor.
  void stop();

  /// Resolved TCP port (after start(); meaningful for port-0 binds).
  std::uint16_t port() const { return port_; }

  FrontEndStats stats() const;

 private:
  struct Pending {
    std::uint64_t request_id = 0;   ///< wire id, echoed in the response
    serve::Ticket ticket;
    std::uint32_t shard = 0;
    std::uint64_t cancel_id = 0;    ///< admission id (0 = rejected)
  };

  struct Conn {
    Fd fd;
    FrameDecoder decoder;
    std::string outbuf;
    std::vector<Pending> pending;
    double last_read = 0.0;   ///< clock time of the last byte received
    bool closing = false;     ///< flush outbuf, then close
  };

  void run();
  void accept_new();
  /// Reads + decodes; returns false when the connection must die now.
  bool service_read(Conn& conn);
  void harvest(Conn& conn);
  /// Flushes outbuf; returns false when the connection must die now.
  bool flush(Conn& conn);
  void enqueue_reject(Conn& conn, std::uint64_t request_id, WireReject code,
                      const std::string& message);
  void close_conn(Conn& conn);

  FrontEndConfig config_;
  FrontEndSink sink_;
  Clock& clock_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread loop_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::atomic<std::uint64_t> accepted_{0}, closed_{0}, requests_{0},
      responses_{0}, rejects_{0}, wire_errors_{0}, slow_loris_{0},
      cancelled_{0}, faults_{0};
};

}  // namespace satd::net
