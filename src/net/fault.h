// Wire-level fault injection for the socket serving stack (tests only).
//
// Mirrors the PR-2 durable-io and PR-7 spooler fault discipline at the
// network boundary: tests ARM a fault, drive real traffic over real
// sockets, and assert the typed outcome — a client error or a clean
// retry, never a crash or a hang. Faults are one-shot or counted and
// disarm themselves as they fire, so a chaos test's blast radius is
// exactly the requests it targets.
//
// Server-side faults (consulted by net::FrontEnd when a response frame
// is about to be sent):
//   torn response      — write only the first K bytes of the encoded
//                        frame, then hard-close the connection (models a
//                        server crash mid-write; the client sees EOF
//                        inside a frame -> retryable connection loss).
//   corrupt response   — flip one payload byte before sending, so the
//                        frame arrives complete but its CRC trailer
//                        fails (models bit-rot/middlebox damage ->
//                        typed protocol error at the client).
//   drop response      — swallow the response entirely, connection kept
//                        open (models a stalled server -> the client's
//                        request read deadline fires).
//   disconnect         — close the connection instead of responding
//                        (mid-conversation disconnect -> retryable).
//
// Client-side fault (consulted by net::Client before a real connect):
//   refused connect    — the next N connect attempts fail immediately as
//                        if ECONNREFUSED, without touching the network
//                        (deterministic backoff/failover tests on a
//                        FakeClock, no real ports needed).
//
// All flags are atomics: the front end's event loop and the test thread
// race benignly (arm happens-before the traffic that should trip it).
#pragma once

#include <cstddef>

namespace satd::net::fault {

/// What the front end should do to the NEXT response frame it sends.
enum class ResponseFault {
  kNone = 0,
  kTorn,        ///< write `torn_bytes` bytes of the frame, then close
  kCorrupt,     ///< flip a payload byte (CRC mismatch at the client)
  kDrop,        ///< never send it; keep the connection open
  kDisconnect,  ///< close the connection instead of sending
};

void arm_torn_response(std::size_t bytes);
void arm_corrupt_response();
void arm_drop_response();
void arm_disconnect_response();

/// The next `count` client connect() attempts fail as ECONNREFUSED.
void arm_connect_refused(std::size_t count);

/// Clears every armed fault.
void disarm();

/// Consumed by FrontEnd: returns the armed response fault (disarming it)
/// or kNone. `torn_bytes_out` receives the torn-write budget.
ResponseFault take_response_fault(std::size_t& torn_bytes_out);

/// Consumed by Client: true if this connect attempt should fail.
bool take_connect_refused();

/// Introspection for tests.
bool armed();

}  // namespace satd::net::fault
