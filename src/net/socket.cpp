#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/contract.h"
#include "net/fault.h"

namespace satd::net {

namespace {

std::string errno_context(const std::string& what, const std::string& where) {
  return what + ": " + where + ": " + std::strerror(errno);
}

/// Fills a sockaddr_in from the (pre-validated) host/port. Numeric IPv4
/// only, plus the two spellings everyone actually uses.
void fill_inet(const env::ListenAddress& addr, sockaddr_in& sa) {
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  std::string host = addr.host;
  if (host == "localhost") host = "127.0.0.1";
  if (host == "*" || host == "0.0.0.0") {
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
    return;
  }
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    throw SocketError("not a numeric IPv4 host (use a.b.c.d, localhost or "
                      "*): " + addr.host);
  }
}

void fill_unix(const env::ListenAddress& addr, sockaddr_un& sa) {
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  SATD_EXPECT(addr.path.size() < sizeof(sa.sun_path),
              "unix socket path too long (parse_listen_address bounds it)");
  std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw SocketError(errno_context("cannot set O_NONBLOCK",
                                    "fd " + std::to_string(fd)));
  }
}

Fd listen_socket(const env::ListenAddress& addr, int backlog) {
  SATD_EXPECT(addr.valid(), "cannot listen on an unset address");
  const int family =
      addr.kind == env::ListenAddress::Kind::kUnix ? AF_UNIX : AF_INET;
  Fd fd(::socket(family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw SocketError(errno_context("socket() failed", to_string(addr)));
  }
  if (addr.kind == env::ListenAddress::Kind::kUnix) {
    // A stale socket file from a crashed server must not block restart;
    // ENOENT is the normal case.
    ::unlink(addr.path.c_str());
    sockaddr_un sa;
    fill_unix(addr, sa);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      throw SocketError(errno_context("bind failed", to_string(addr)));
    }
  } else {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa;
    fill_inet(addr, sa);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      throw SocketError(errno_context("bind failed", to_string(addr)));
    }
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw SocketError(errno_context("listen failed", to_string(addr)));
  }
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t local_port(const Fd& listener) {
  sockaddr_in sa;
  socklen_t len = sizeof(sa);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&sa), &len) !=
          0 ||
      sa.sin_family != AF_INET) {
    throw SocketError(errno_context("getsockname failed",
                                    "fd " + std::to_string(listener.get())));
  }
  return ntohs(sa.sin_port);
}

Fd connect_socket(const env::ListenAddress& addr, double timeout,
                  std::string& err_out) {
  err_out.clear();
  if (fault::take_connect_refused()) {
    err_out = "connection refused (injected): " + to_string(addr);
    return Fd();
  }
  const int family =
      addr.kind == env::ListenAddress::Kind::kUnix ? AF_UNIX : AF_INET;
  Fd fd(::socket(family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw SocketError(errno_context("socket() failed", to_string(addr)));
  }
  set_nonblocking(fd.get());

  int rc;
  if (addr.kind == env::ListenAddress::Kind::kUnix) {
    sockaddr_un sa;
    fill_unix(addr, sa);
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } else {
    sockaddr_in sa;
    try {
      fill_inet(addr, sa);
    } catch (const SocketError& e) {
      err_out = e.what();
      return Fd();
    }
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  }
  if (rc == 0) return fd;
  if (errno != EINPROGRESS && errno != EAGAIN) {
    err_out = errno_context("connect failed", to_string(addr));
    return Fd();
  }

  // Await writability, then read the final verdict from SO_ERROR.
  pollfd pfd{fd.get(), POLLOUT, 0};
  const int timeout_ms =
      timeout <= 0 ? 0 : static_cast<int>(timeout * 1000.0 + 0.5);
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n == 0) {
    err_out = "connect timed out: " + to_string(addr);
    return Fd();
  }
  if (n < 0) {
    err_out = errno_context("poll during connect failed", to_string(addr));
    return Fd();
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
    err_out = errno_context("getsockopt failed", to_string(addr));
    return Fd();
  }
  if (so_error != 0) {
    err_out = "connect failed: " + to_string(addr) + ": " +
              std::strerror(so_error);
    return Fd();
  }
  return fd;
}

std::string to_string(const env::ListenAddress& addr) {
  switch (addr.kind) {
    case env::ListenAddress::Kind::kNone:
      return "(none)";
    case env::ListenAddress::Kind::kUnix:
      return "unix:" + addr.path;
    case env::ListenAddress::Kind::kTcp:
      return "tcp:" + addr.host + ":" + std::to_string(addr.port);
  }
  return "(invalid)";
}

}  // namespace satd::net
