#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace satd::net {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

void put_f32(std::string& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  put_u32(out, bits);
}

/// Bounds-checked little-endian reader over a payload string. Every
/// take_* returns false instead of reading past the end — the decode
/// functions translate that into one typed "truncated payload" failure.
struct Reader {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;

  explicit Reader(const std::string& s)
      : p(reinterpret_cast<const unsigned char*>(s.data())), n(s.size()) {}

  bool take_u8(std::uint8_t& v) {
    if (off + 1 > n) return false;
    v = p[off++];
    return true;
  }
  bool take_u32(std::uint32_t& v) {
    if (off + 4 > n) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[off + i]) << (8 * i);
    }
    off += 4;
    return true;
  }
  bool take_u64(std::uint64_t& v) {
    if (off + 8 > n) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    }
    off += 8;
    return true;
  }
  bool take_f64(double& v) {
    std::uint64_t bits;
    if (!take_u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool take_f32(float& v) {
    std::uint32_t bits;
    if (!take_u32(bits)) return false;
    std::memcpy(&v, &bits, 4);
    return true;
  }
  bool done() const { return off == n; }
};

std::uint32_t read_u32_at(const std::string& s, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(s[off + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* to_string(WireError e) {
  switch (e) {
    case WireError::kNone: return "ok";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadType: return "bad_type";
    case WireError::kOversized: return "oversized";
    case WireError::kBadCrc: return "bad_crc";
    case WireError::kBadPayload: return "bad_payload";
  }
  return "unknown";
}

const char* to_string(WireReject r) {
  switch (r) {
    case WireReject::kMalformed: return "malformed";
    case WireReject::kTooLarge: return "too_large";
    case WireReject::kOverloaded: return "overloaded";
    case WireReject::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

std::string wrap_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  out.append(kWireMagic, 9);  // magic + version byte
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  // CRC covers version..payload: header damage past the magic is caught
  // by the same trailer that catches payload corruption.
  const std::uint32_t crc =
      satd::crc32(out.data() + 8, out.size() - 8);
  put_u32(out, crc);
  return out;
}

std::string encode_request(const RequestFrame& f) {
  std::string p;
  const auto& dims = f.image.shape().dims();
  p.reserve(28 + dims.size() * 8 + f.image.numel() * 4);
  put_u64(p, f.request_id);
  put_f64(p, f.timeout);
  put_u64(p, f.route_key);
  put_u32(p, static_cast<std::uint32_t>(dims.size()));
  for (std::size_t d : dims) put_u64(p, d);
  for (float v : f.image.data()) put_f32(p, v);
  return wrap_frame(FrameType::kRequest, p);
}

std::string encode_response(const ResponseFrame& f) {
  std::string p;
  p.reserve(41 + f.probabilities.size() * 4);
  put_u64(p, f.request_id);
  p.push_back(static_cast<char>(f.serve_error));
  put_u64(p, f.model_version);
  put_u32(p, f.predicted);
  put_u32(p, f.batch_size);
  put_u32(p, f.shard);
  put_f64(p, f.latency);
  put_u32(p, static_cast<std::uint32_t>(f.probabilities.size()));
  for (float v : f.probabilities) put_f32(p, v);
  return wrap_frame(FrameType::kResponse, p);
}

std::string encode_reject(const RejectFrame& f) {
  std::string p;
  p.reserve(13 + f.message.size());
  put_u64(p, f.request_id);
  p.push_back(static_cast<char>(f.code));
  put_u32(p, static_cast<std::uint32_t>(f.message.size()));
  p += f.message;
  return wrap_frame(FrameType::kReject, p);
}

bool decode_request(const std::string& payload, RequestFrame& out,
                    std::string& err) {
  Reader r(payload);
  std::uint32_t rank = 0;
  if (!r.take_u64(out.request_id) || !r.take_f64(out.timeout) ||
      !r.take_u64(out.route_key) || !r.take_u32(rank)) {
    err = "truncated request header";
    return false;
  }
  if (rank == 0 || rank > kMaxWireRank) {
    err = "request tensor rank out of range: " + std::to_string(rank);
    return false;
  }
  if (!(out.timeout >= 0.0)) {  // also rejects NaN
    err = "request timeout must be a non-negative number";
    return false;
  }
  std::vector<std::size_t> dims(rank);
  std::size_t numel = 1;
  for (std::uint32_t i = 0; i < rank; ++i) {
    std::uint64_t d = 0;
    if (!r.take_u64(d)) {
      err = "truncated request dims";
      return false;
    }
    // Each dim is bounded by what the (already length-capped) payload
    // could possibly carry, so the product cannot overflow size_t.
    if (d == 0 || d > payload.size()) {
      err = "request dim out of range";
      return false;
    }
    dims[i] = static_cast<std::size_t>(d);
    numel *= dims[i];
    if (numel > payload.size()) {  // 4*numel floats can never fit
      err = "request tensor larger than its payload";
      return false;
    }
  }
  if (r.n - r.off != numel * 4) {
    err = "request pixel data length mismatch";
    return false;
  }
  std::vector<float> data(numel);
  for (std::size_t i = 0; i < numel; ++i) {
    if (!r.take_f32(data[i])) {
      err = "truncated request pixels";
      return false;
    }
  }
  out.image = Tensor(Shape(std::move(dims)), std::move(data));
  return true;
}

bool decode_response(const std::string& payload, ResponseFrame& out,
                     std::string& err) {
  Reader r(payload);
  std::uint32_t nprobs = 0;
  if (!r.take_u64(out.request_id) || !r.take_u8(out.serve_error) ||
      !r.take_u64(out.model_version) || !r.take_u32(out.predicted) ||
      !r.take_u32(out.batch_size) || !r.take_u32(out.shard) ||
      !r.take_f64(out.latency) || !r.take_u32(nprobs)) {
    err = "truncated response header";
    return false;
  }
  if ((r.n - r.off) != static_cast<std::size_t>(nprobs) * 4) {
    err = "response probability data length mismatch";
    return false;
  }
  out.probabilities.resize(nprobs);
  for (std::uint32_t i = 0; i < nprobs; ++i) {
    if (!r.take_f32(out.probabilities[i])) {
      err = "truncated response probabilities";
      return false;
    }
  }
  return true;
}

bool decode_reject(const std::string& payload, RejectFrame& out,
                   std::string& err) {
  Reader r(payload);
  std::uint8_t code = 0;
  std::uint32_t len = 0;
  if (!r.take_u64(out.request_id) || !r.take_u8(code) || !r.take_u32(len)) {
    err = "truncated reject header";
    return false;
  }
  if (r.n - r.off != len) {
    err = "reject message length mismatch";
    return false;
  }
  out.code = static_cast<WireReject>(code);
  out.message.assign(payload, r.off, len);
  return true;
}

bool FrameDecoder::feed(const char* data, std::size_t n) {
  if (error_ != WireError::kNone) return false;
  buf_.append(data, n);
  return true;
}

bool FrameDecoder::next(FrameType& type, std::string& payload) {
  if (error_ != WireError::kNone) return false;
  if (buf_.size() < kHeaderBytes) {
    // Check as much of the magic as has arrived: a stream that is wrong
    // from byte 0 is poisoned immediately, not after 14 bytes trickle in.
    if (std::memcmp(buf_.data(), kWireMagic,
                    std::min(buf_.size(), std::size_t{8})) != 0) {
      error_ = WireError::kBadMagic;
    } else if (buf_.size() > 8 &&
               static_cast<std::uint8_t>(buf_[8]) != kWireVersion) {
      error_ = WireError::kBadVersion;
    }
    return false;
  }
  if (std::memcmp(buf_.data(), kWireMagic, 8) != 0) {
    error_ = WireError::kBadMagic;
    return false;
  }
  if (static_cast<std::uint8_t>(buf_[8]) != kWireVersion) {
    error_ = WireError::kBadVersion;
    return false;
  }
  const auto raw_type = static_cast<std::uint8_t>(buf_[9]);
  if (raw_type < 1 || raw_type > 3) {
    error_ = WireError::kBadType;
    return false;
  }
  const std::uint32_t len = read_u32_at(buf_, 10);
  if (len > max_payload_) {
    error_ = WireError::kOversized;
    return false;
  }
  const std::size_t total = kHeaderBytes + len + kTrailerBytes;
  if (buf_.size() < total) return false;  // frame still incomplete
  const std::uint32_t stored = read_u32_at(buf_, kHeaderBytes + len);
  const std::uint32_t actual =
      satd::crc32(buf_.data() + 8, kHeaderBytes - 8 + len);
  if (stored != actual) {
    error_ = WireError::kBadCrc;
    return false;
  }
  type = static_cast<FrameType>(raw_type);
  payload.assign(buf_, kHeaderBytes, len);
  buf_.erase(0, total);
  return true;
}

}  // namespace satd::net
