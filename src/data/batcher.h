// Mini-batch iteration over a Dataset.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace satd::data {

/// One mini-batch: an image tensor plus labels, and the dataset indices
/// the examples came from (the Proposed trainer needs the indices to
/// address its persistent adversarial buffer).
struct Batch {
  Tensor images;                     // [B, C, H, W]
  std::vector<std::size_t> labels;   // size B
  std::vector<std::size_t> indices;  // positions within the source dataset

  std::size_t size() const { return labels.size(); }
  std::span<const std::size_t> label_span() const { return labels; }
};

/// Epoch iterator producing shuffled fixed-size mini-batches (last batch
/// may be smaller). Shuffling consumes the Rng passed to begin_epoch, so
/// epochs are deterministic but distinct.
class Batcher {
 public:
  Batcher(const Dataset& dataset, std::size_t batch_size);

  /// Re-shuffles for a new epoch.
  void begin_epoch(Rng& rng);

  /// Number of batches per epoch.
  std::size_t batch_count() const;

  /// Assembles batch `b` (0-based) from the current epoch order.
  Batch make_batch(std::size_t b) const;

  std::size_t batch_size() const { return batch_size_; }

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  std::vector<std::size_t> order_;
};

}  // namespace satd::data
