// PGM (portable graymap) image export/import.
//
// The simplest portable way to look at synthetic examples and their
// adversarial perturbations outside the terminal: every image viewer
// opens binary PGM (P5). Used by examples/render_dataset and handy for
// debugging the glyph renderer.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace satd::data {

/// Writes a [1, H, W] (or [H, W]) tensor in [0,1] as an 8-bit binary PGM.
void write_pgm(const std::string& path, const Tensor& image);

/// Reads a binary (P5, maxval 255) PGM into a [1, H, W] tensor in [0,1].
/// Throws std::runtime_error on malformed files.
Tensor read_pgm(const std::string& path);

/// Tiles images [N, 1, H, W] into one [1, rows*H, cols*W] montage
/// (row-major, missing trailing cells black). rows = ceil(N / cols).
Tensor montage(const Tensor& images, std::size_t cols);

}  // namespace satd::data
