// Common-corruption suite (Hendrycks & Dietterich 2019 style, scaled to
// 28x28 grayscale).
//
// Adversarial robustness and corruption robustness are different axes:
// a defense can master the worst-case eps-ball yet fail under benign
// distribution shift. This module applies parametric corruptions to a
// dataset so the extension benches can measure both axes for every
// trained method. Each corruption has a severity in [0, 1] and is
// deterministic given the provided Rng.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace satd::data {

/// Kinds of corruption supported.
enum class Corruption {
  kGaussianNoise,   ///< additive pixel noise
  kBrightness,      ///< additive global brightness shift
  kContrast,        ///< contrast reduction towards the mean
  kBlur,            ///< repeated 3x3 box blur
  kOcclusion,       ///< random square patch set to black
  kPixelDropout,    ///< random pixels set to zero
};

/// All corruption kinds (for sweeps).
std::vector<Corruption> all_corruptions();

/// Display name, e.g. "gaussian-noise".
const char* corruption_name(Corruption kind);

/// Applies a corruption to one [1, H, W] image (returns a new tensor;
/// output stays in [0, 1]). `severity` in [0, 1].
Tensor corrupt_image(const Tensor& image, Corruption kind, float severity,
                     Rng& rng);

/// Applies a corruption to every image of a dataset.
Dataset corrupt_dataset(const Dataset& clean, Corruption kind, float severity,
                        std::uint64_t seed);

}  // namespace satd::data
