#include "data/batcher.h"

#include <algorithm>

#include "common/contract.h"

namespace satd::data {

Batcher::Batcher(const Dataset& dataset, std::size_t batch_size)
    : dataset_(dataset), batch_size_(batch_size) {
  SATD_EXPECT(batch_size > 0, "batch size must be positive");
  SATD_EXPECT(dataset.size() > 0, "empty dataset");
  order_.resize(dataset.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

void Batcher::begin_epoch(Rng& rng) {
  // Reset to identity before shuffling so each epoch's order is a pure
  // function of the RNG state — a checkpointed run that restores the
  // shuffle stream then reproduces the exact same batch sequence.
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  rng.shuffle(order_);
}

std::size_t Batcher::batch_count() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

Batch Batcher::make_batch(std::size_t b) const {
  SATD_EXPECT(b < batch_count(), "batch index out of range");
  const std::size_t begin = b * batch_size_;
  const std::size_t end = std::min(begin + batch_size_, dataset_.size());
  const auto& dims = dataset_.images.shape().dims();
  Batch batch;
  batch.images = Tensor(Shape{end - begin, dims[1], dims[2], dims[3]});
  batch.labels.reserve(end - begin);
  batch.indices.reserve(end - begin);
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = order_[k];
    batch.images.set_row(k - begin, dataset_.images.slice_row(i));
    batch.labels.push_back(dataset_.labels[i]);
    batch.indices.push_back(i);
  }
  return batch;
}

}  // namespace satd::data
