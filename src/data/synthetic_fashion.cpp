#include <cmath>
#include <numbers>

#include "common/contract.h"
#include "data/glyph.h"
#include "data/synthetic.h"

namespace satd::data {

namespace {

constexpr double kPi = std::numbers::pi;

struct FashionStyle {
  Jitter jitter;
  double fill;    // garment brightness
  double texture; // cloth texture amplitude
  double noise;   // background pixel noise

  static FashionStyle random(Rng& rng) {
    FashionStyle s;
    s.jitter = Jitter::random(rng, /*max_angle=*/0.14, /*scale_spread=*/0.16,
                              /*max_shift=*/0.05);
    s.fill = rng.uniform(0.55, 0.95);
    s.texture = rng.uniform(0.08, 0.2);
    s.noise = rng.uniform(0.02, 0.05);
    return s;
  }
};

// Torso helper shared by the three confusable top-wear classes; the
// sleeve geometry is what (weakly) separates them, mirroring how
// t-shirt / pullover / shirt differ in Fashion-MNIST.
void draw_torso(Canvas& c, const FashionStyle& s, double top, double bottom) {
  c.fill_rect(0.33, top, 0.67, bottom, s.fill, s.jitter);
}

void draw_fashion(Canvas& c, std::size_t cls, const FashionStyle& s,
                  Rng& rng) {
  const Jitter& j = s.jitter;
  const double f = s.fill;
  switch (cls) {
    case 0: {  // t-shirt: torso + short sleeves
      draw_torso(c, s, 0.28, 0.78);
      c.fill_rect(0.18, 0.28, 0.33, 0.46, f, j);
      c.fill_rect(0.67, 0.28, 0.82, 0.46, f, j);
      break;
    }
    case 1: {  // trouser: waistband + two legs with a gap
      c.fill_rect(0.36, 0.18, 0.64, 0.3, f, j);
      c.fill_rect(0.36, 0.3, 0.47, 0.85, f, j);
      c.fill_rect(0.53, 0.3, 0.64, 0.85, f, j);
      break;
    }
    case 2: {  // pullover: torso + full-length sleeves
      draw_torso(c, s, 0.26, 0.78);
      c.fill_rect(0.16, 0.26, 0.33, 0.76, f, j);
      c.fill_rect(0.67, 0.26, 0.84, 0.76, f, j);
      break;
    }
    case 3: {  // dress: narrow shoulders flaring to a wide hem
      c.fill_triangle(0.44, 0.18, 0.56, 0.18, 0.76, 0.85, f, j);
      c.fill_triangle(0.44, 0.18, 0.76, 0.85, 0.24, 0.85, f, j);
      break;
    }
    case 4: {  // coat: long split body + sleeves
      c.fill_rect(0.3, 0.2, 0.485, 0.85, f, j);
      c.fill_rect(0.515, 0.2, 0.7, 0.85, f, j);
      c.fill_rect(0.15, 0.22, 0.3, 0.8, f, j);
      c.fill_rect(0.7, 0.22, 0.85, 0.8, f, j);
      break;
    }
    case 5: {  // sandal: thin sole + sparse straps
      c.fill_rect(0.2, 0.68, 0.8, 0.75, f, j);
      c.segment(0.3, 0.68, 0.42, 0.52, 0.9, f, j);
      c.segment(0.55, 0.52, 0.68, 0.68, 0.9, f, j);
      c.segment(0.42, 0.52, 0.55, 0.52, 0.9, f, j);
      break;
    }
    case 6: {  // shirt: torso + mid sleeves + collar notch strokes
      draw_torso(c, s, 0.27, 0.8);
      c.fill_rect(0.17, 0.27, 0.33, 0.6, f, j);
      c.fill_rect(0.67, 0.27, 0.83, 0.6, f, j);
      c.segment(0.45, 0.27, 0.5, 0.36, 1.0, std::min(1.0, f + 0.25), j);
      c.segment(0.55, 0.27, 0.5, 0.36, 1.0, std::min(1.0, f + 0.25), j);
      break;
    }
    case 7: {  // sneaker: low profile body + thick sole
      c.fill_ellipse(0.47, 0.62, 0.3, 0.13, f, j);
      c.fill_rect(0.16, 0.68, 0.84, 0.77, std::min(1.0, f + 0.15), j);
      break;
    }
    case 8: {  // bag: box + handle
      c.fill_rect(0.26, 0.44, 0.74, 0.8, f, j);
      c.arc(0.5, 0.44, 0.17, 0.15, -kPi, 0.0, 1.2, f, j);
      break;
    }
    case 9: {  // ankle boot: foot + shaft + sole
      c.fill_ellipse(0.42, 0.66, 0.26, 0.12, f, j);
      c.fill_rect(0.52, 0.32, 0.72, 0.7, f, j);
      c.fill_rect(0.16, 0.72, 0.78, 0.8, std::min(1.0, f + 0.15), j);
      break;
    }
    default:
      SATD_EXPECT(false, "fashion class must be 0-9");
  }
  c.texture(rng, s.texture);
}

}  // namespace

Tensor render_fashion(std::size_t cls, Rng& rng) {
  SATD_EXPECT(cls < 10, "fashion class must be 0-9");
  Canvas c(28);
  const FashionStyle style = FashionStyle::random(rng);
  draw_fashion(c, cls, style, rng);
  c.blur(1);
  c.add_noise(rng, style.noise);
  return c.to_tensor();
}

DatasetPair make_synthetic_fashion(const SyntheticConfig& cfg) {
  SATD_EXPECT(cfg.train_size > 0 && cfg.test_size > 0,
              "dataset sizes must be positive");
  Rng root(cfg.seed);
  Rng train_rng = root.fork(0xFA51);
  Rng test_rng = root.fork(0xFA52);

  auto build = [&](std::size_t n, Rng& rng, const char* split) {
    Dataset d;
    d.name = std::string("synthetic-fashion/") + split;
    d.num_classes = 10;
    d.images = Tensor(Shape{n, 1, 28, 28});
    d.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cls = i % 10;
      d.labels[i] = cls;
      d.images.set_row(i, render_fashion(cls, rng));
    }
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    rng.shuffle(idx);
    return d.gather(idx);
  };

  DatasetPair pair;
  pair.train = build(cfg.train_size, train_rng, "train");
  pair.test = build(cfg.test_size, test_rng, "test");
  return pair;
}

const char* fashion_class_name(std::size_t cls) {
  static const char* kNames[10] = {"t-shirt", "trouser", "pullover", "dress",
                                   "coat",    "sandal",  "shirt",    "sneaker",
                                   "bag",     "ankle-boot"};
  SATD_EXPECT(cls < 10, "fashion class must be 0-9");
  return kNames[cls];
}

}  // namespace satd::data
