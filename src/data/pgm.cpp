#include "data/pgm.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/contract.h"

namespace satd::data {

void write_pgm(const std::string& path, const Tensor& image) {
  const auto rank = image.shape().rank();
  SATD_EXPECT(rank == 2 || (rank == 3 && image.shape()[0] == 1),
              "write_pgm expects [H, W] or [1, H, W]");
  const std::size_t h = image.shape()[rank - 2];
  const std::size_t w = image.shape()[rank - 1];
  std::ofstream os(path, std::ios::binary);
  SATD_EXPECT(static_cast<bool>(os), "cannot open for writing: " + path);
  os << "P5\n" << w << " " << h << "\n255\n";
  std::vector<unsigned char> row(w);
  const float* p = image.raw();
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const float v = std::clamp(p[y * w + x], 0.0f, 1.0f);
      row[x] = static_cast<unsigned char>(std::lround(v * 255.0f));
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(w));
  }
  SATD_ENSURE(static_cast<bool>(os), "write failed: " + path);
}

Tensor read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  std::string magic;
  is >> magic;
  if (magic != "P5") throw std::runtime_error("not a binary PGM: " + path);
  std::size_t w = 0, h = 0, maxval = 0;
  is >> w >> h >> maxval;
  if (!is || w == 0 || h == 0 || maxval != 255) {
    throw std::runtime_error("unsupported PGM header: " + path);
  }
  is.get();  // single whitespace after maxval
  std::vector<unsigned char> bytes(w * h);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!is) throw std::runtime_error("truncated PGM: " + path);
  Tensor out(Shape{1, h, w});
  float* p = out.raw();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    p[i] = static_cast<float>(bytes[i]) / 255.0f;
  }
  return out;
}

Tensor montage(const Tensor& images, std::size_t cols) {
  SATD_EXPECT(images.shape().rank() == 4 && images.shape()[1] == 1,
              "montage expects [N, 1, H, W]");
  SATD_EXPECT(cols > 0, "cols must be positive");
  const std::size_t n = images.shape()[0];
  SATD_EXPECT(n > 0, "montage of zero images");
  const std::size_t h = images.shape()[2];
  const std::size_t w = images.shape()[3];
  const std::size_t rows = (n + cols - 1) / cols;
  Tensor out(Shape{1, rows * h, cols * w});
  float* dst = out.raw();
  const float* src = images.raw();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    for (std::size_t y = 0; y < h; ++y) {
      const float* srow = src + (i * h + y) * w;
      float* drow = dst + ((r * h + y) * cols + c) * w;
      std::copy(srow, srow + w, drow);
    }
  }
  return out;
}

}  // namespace satd::data
