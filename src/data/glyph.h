// Procedural 28x28 glyph renderer.
//
// The reproduction environment has no MNIST/Fashion-MNIST files, so the
// datasets are rendered procedurally (see DESIGN.md, substitution table).
// This module supplies the drawing substrate: a float canvas with
// anti-aliased thick strokes, elliptical arcs, filled shapes, blur and
// noise. Stroke coordinates live in a unit box [0,1]^2 and pass through a
// per-example affine jitter, which is what creates intra-class variation.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace satd::data {

/// Affine map applied to unit-box coordinates before rasterization:
/// rotation + anisotropic scale + translation (about the box center).
struct Jitter {
  double angle = 0.0;    // radians
  double scale_x = 1.0;
  double scale_y = 1.0;
  double shift_x = 0.0;  // in unit-box units
  double shift_y = 0.0;

  /// Draws a random jitter with the given magnitudes.
  static Jitter random(Rng& rng, double max_angle, double scale_spread,
                       double max_shift);

  /// Applies the map to a unit-box point.
  void apply(double& x, double& y) const;
};

/// Grayscale float canvas in [0, 1], row-major, side x side pixels.
class Canvas {
 public:
  explicit Canvas(std::size_t side = 28);

  std::size_t side() const { return side_; }

  /// Stamps an anti-aliased disc of the given radius (pixels) and
  /// intensity at unit-box coordinates (x, y), after jitter.
  void stamp(double x, double y, double radius, double intensity,
             const Jitter& j);

  /// Thick line segment between unit-box points.
  void segment(double x0, double y0, double x1, double y1, double radius,
               double intensity, const Jitter& j);

  /// Elliptical arc centered at (cx, cy) with radii (rx, ry), from angle
  /// a0 to a1 (radians, counterclockwise; a1 > a0 sweeps the long way for
  /// full circles use a0=0, a1=2*pi).
  void arc(double cx, double cy, double rx, double ry, double a0, double a1,
           double radius, double intensity, const Jitter& j);

  /// Axis-aligned filled rectangle (unit-box corners), intensity blended
  /// by max (painting twice does not exceed the intensity).
  void fill_rect(double x0, double y0, double x1, double y1, double intensity,
                 const Jitter& j);

  /// Filled triangle (unit-box vertices).
  void fill_triangle(double x0, double y0, double x1, double y1, double x2,
                     double y2, double intensity, const Jitter& j);

  /// Filled ellipse.
  void fill_ellipse(double cx, double cy, double rx, double ry,
                    double intensity, const Jitter& j);

  /// 3x3 box blur, `passes` times.
  void blur(std::size_t passes = 1);

  /// Adds clamped Gaussian pixel noise.
  void add_noise(Rng& rng, double stddev);

  /// Multiplies pixels by (1 + amp * n) with n ~ N(0,1): a crude cloth
  /// texture used by the fashion dataset.
  void texture(Rng& rng, double amp);

  /// Copies the canvas into a [1, side, side] tensor (clamped to [0,1]).
  Tensor to_tensor() const;

  /// Direct pixel access (row-major), mainly for tests.
  float pixel(std::size_t y, std::size_t x) const;

 private:
  void splat(double px, double py, double radius, double intensity);

  std::size_t side_;
  std::vector<float> pix_;
};

}  // namespace satd::data
