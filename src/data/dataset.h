// In-memory labeled image dataset.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace satd::data {

/// A labeled batch of images: images [N, C, H, W] in [0,1], one integer
/// label per image. This is the unit every trainer / attack / evaluator
/// consumes.
struct Dataset {
  std::string name;
  Tensor images;                    // [N, C, H, W]
  std::vector<std::size_t> labels;  // size N, values < num_classes
  std::size_t num_classes = 0;

  std::size_t size() const { return labels.size(); }

  /// Validates the invariants above; throws ContractViolation if broken.
  void validate() const;

  /// Copies examples [begin, end) into a new dataset.
  Dataset slice(std::size_t begin, std::size_t end) const;

  /// Copies the examples at `indices` (may repeat / reorder).
  Dataset gather(const std::vector<std::size_t>& indices) const;

  /// Per-class example counts.
  std::vector<std::size_t> class_histogram() const;
};

/// Train/test pair produced by the synthetic generators.
struct DatasetPair {
  Dataset train;
  Dataset test;
};

}  // namespace satd::data
