#include <cmath>
#include <numbers>

#include "common/contract.h"
#include "data/glyph.h"
#include "data/synthetic.h"

namespace satd::data {

namespace {

constexpr double kPi = std::numbers::pi;

/// Per-example nuisance parameters shared by all strokes of one digit.
struct DigitStyle {
  Jitter jitter;
  double radius;     // stroke thickness in pixels
  double intensity;  // ink level
  double noise;      // pixel noise stddev

  static DigitStyle random(Rng& rng) {
    DigitStyle s;
    s.jitter = Jitter::random(rng, /*max_angle=*/0.13, /*scale_spread=*/0.12,
                              /*max_shift=*/0.055);
    // Thick, saturated strokes, like MNIST's: robustness to l-inf noise
    // requires the class evidence to survive +-eps per pixel, which a
    // 1-pixel hairline would not.
    s.radius = rng.uniform(1.4, 2.0);
    s.intensity = rng.uniform(0.95, 1.0);
    s.noise = rng.uniform(0.01, 0.03);
    return s;
  }
};

void draw_digit(Canvas& c, std::size_t cls, const DigitStyle& s) {
  const Jitter& j = s.jitter;
  const double r = s.radius;
  const double ink = s.intensity;
  switch (cls) {
    case 0:
      c.arc(0.5, 0.5, 0.21, 0.3, 0.0, 2.0 * kPi, r, ink, j);
      break;
    case 1:
      c.segment(0.52, 0.17, 0.52, 0.83, r, ink, j);
      c.segment(0.38, 0.32, 0.52, 0.17, r, ink, j);
      break;
    case 2:
      // Top hook, body diagonal, base bar.
      c.arc(0.5, 0.33, 0.2, 0.15, -kPi, 0.35 * kPi, r, ink, j);
      c.segment(0.67, 0.45, 0.31, 0.8, r, ink, j);
      c.segment(0.31, 0.8, 0.72, 0.8, r, ink, j);
      break;
    case 3:
      c.arc(0.45, 0.35, 0.2, 0.16, -0.7 * kPi, 0.5 * kPi, r, ink, j);
      c.arc(0.45, 0.66, 0.22, 0.17, -0.5 * kPi, 0.7 * kPi, r, ink, j);
      break;
    case 4:
      c.segment(0.63, 0.15, 0.63, 0.85, r, ink, j);
      c.segment(0.63, 0.15, 0.3, 0.58, r, ink, j);
      c.segment(0.25, 0.58, 0.78, 0.58, r, ink, j);
      break;
    case 5:
      c.segment(0.34, 0.18, 0.7, 0.18, r, ink, j);
      c.segment(0.34, 0.18, 0.33, 0.47, r, ink, j);
      c.arc(0.46, 0.64, 0.22, 0.19, -0.55 * kPi, 0.75 * kPi, r, ink, j);
      break;
    case 6:
      // Left spine curving into a closed bottom loop.
      c.arc(0.62, 0.45, 0.3, 0.33, 0.55 * kPi, 1.05 * kPi, r, ink, j);
      c.arc(0.48, 0.66, 0.17, 0.15, 0.0, 2.0 * kPi, r, ink, j);
      break;
    case 7:
      c.segment(0.28, 0.2, 0.73, 0.2, r, ink, j);
      c.segment(0.73, 0.2, 0.43, 0.85, r, ink, j);
      break;
    case 8:
      c.arc(0.5, 0.34, 0.16, 0.14, 0.0, 2.0 * kPi, r, ink, j);
      c.arc(0.5, 0.66, 0.2, 0.17, 0.0, 2.0 * kPi, r, ink, j);
      break;
    case 9:
      c.arc(0.52, 0.35, 0.17, 0.14, 0.0, 2.0 * kPi, r, ink, j);
      c.segment(0.69, 0.36, 0.6, 0.85, r, ink, j);
      break;
    default:
      SATD_EXPECT(false, "digit class must be 0-9");
  }
}

DatasetPair make_split(const SyntheticConfig& cfg, const std::string& name,
                       Tensor (*render)(std::size_t, Rng&),
                       std::uint64_t stream_salt) {
  SATD_EXPECT(cfg.train_size > 0 && cfg.test_size > 0,
              "dataset sizes must be positive");
  Rng root(cfg.seed);
  Rng train_rng = root.fork(stream_salt);
  Rng test_rng = root.fork(stream_salt + 1);

  auto build = [&](std::size_t n, Rng& rng, const char* split) {
    Dataset d;
    d.name = name + "/" + split;
    d.num_classes = 10;
    d.images = Tensor(Shape{n, 1, 28, 28});
    d.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Round-robin class assignment keeps the split exactly balanced;
      // a shuffle below removes the ordering.
      const std::size_t cls = i % 10;
      d.labels[i] = cls;
      d.images.set_row(i, render(cls, rng));
    }
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    rng.shuffle(idx);
    return d.gather(idx);
  };

  DatasetPair pair;
  pair.train = build(cfg.train_size, train_rng, "train");
  pair.test = build(cfg.test_size, test_rng, "test");
  return pair;
}

}  // namespace

Tensor render_digit(std::size_t cls, Rng& rng) {
  SATD_EXPECT(cls < 10, "digit class must be 0-9");
  Canvas c(28);
  const DigitStyle style = DigitStyle::random(rng);
  draw_digit(c, cls, style);
  c.add_noise(rng, style.noise);
  return c.to_tensor();
}

DatasetPair make_synthetic_digits(const SyntheticConfig& cfg) {
  return make_split(cfg, "synthetic-digits", &render_digit, 0x0D16);
}

DatasetPair make_dataset(const std::string& name, const SyntheticConfig& cfg) {
  if (name == "digits") return make_synthetic_digits(cfg);
  if (name == "fashion") return make_synthetic_fashion(cfg);
  SATD_EXPECT(false, "unknown dataset: " + name + " (try digits|fashion)");
  return {};
}

}  // namespace satd::data
