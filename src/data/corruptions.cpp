#include "data/corruptions.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::data {

std::vector<Corruption> all_corruptions() {
  return {Corruption::kGaussianNoise, Corruption::kBrightness,
          Corruption::kContrast,      Corruption::kBlur,
          Corruption::kOcclusion,     Corruption::kPixelDropout};
}

const char* corruption_name(Corruption kind) {
  switch (kind) {
    case Corruption::kGaussianNoise: return "gaussian-noise";
    case Corruption::kBrightness: return "brightness";
    case Corruption::kContrast: return "contrast";
    case Corruption::kBlur: return "blur";
    case Corruption::kOcclusion: return "occlusion";
    case Corruption::kPixelDropout: return "pixel-dropout";
  }
  SATD_ENSURE(false, "unhandled corruption kind");
  return "";
}

namespace {

void box_blur(Tensor& img, std::size_t h, std::size_t w) {
  Tensor tmp(img.shape());
  const float* src = img.raw();
  float* dst = tmp.raw();
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double acc = 0.0;
      int count = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int yy = static_cast<int>(y) + dy;
          const int xx = static_cast<int>(x) + dx;
          if (yy < 0 || xx < 0 || yy >= static_cast<int>(h) ||
              xx >= static_cast<int>(w)) {
            continue;
          }
          acc += src[static_cast<std::size_t>(yy) * w +
                     static_cast<std::size_t>(xx)];
          ++count;
        }
      }
      dst[y * w + x] = static_cast<float>(acc / count);
    }
  }
  img = std::move(tmp);
}

}  // namespace

Tensor corrupt_image(const Tensor& image, Corruption kind, float severity,
                     Rng& rng) {
  SATD_EXPECT(image.shape().rank() == 3 && image.shape()[0] == 1,
              "corrupt_image expects [1, H, W]");
  SATD_EXPECT(severity >= 0.0f && severity <= 1.0f,
              "severity must be in [0,1]");
  const std::size_t h = image.shape()[1];
  const std::size_t w = image.shape()[2];
  Tensor out = image;
  float* p = out.raw();
  switch (kind) {
    case Corruption::kGaussianNoise: {
      const double stddev = 0.3 * severity;
      for (std::size_t i = 0; i < out.numel(); ++i) {
        p[i] += static_cast<float>(rng.normal(0.0, stddev));
      }
      break;
    }
    case Corruption::kBrightness: {
      // Randomly brighten or darken by up to 0.4 * severity.
      const float shift =
          static_cast<float>(rng.sign()) * 0.4f * severity;
      for (std::size_t i = 0; i < out.numel(); ++i) p[i] += shift;
      break;
    }
    case Corruption::kContrast: {
      const float mean = ops::mean(out);
      const float factor = 1.0f - 0.8f * severity;
      for (std::size_t i = 0; i < out.numel(); ++i) {
        p[i] = mean + (p[i] - mean) * factor;
      }
      break;
    }
    case Corruption::kBlur: {
      const auto passes =
          static_cast<std::size_t>(std::lround(severity * 3.0f));
      for (std::size_t k = 0; k < passes; ++k) box_blur(out, h, w);
      break;
    }
    case Corruption::kOcclusion: {
      const auto side = static_cast<std::size_t>(
          std::lround(severity * 0.5 * static_cast<double>(std::min(h, w))));
      if (side > 0) {
        const std::size_t y0 = rng.uniform_index(h - side + 1);
        const std::size_t x0 = rng.uniform_index(w - side + 1);
        for (std::size_t y = y0; y < y0 + side; ++y) {
          for (std::size_t x = x0; x < x0 + side; ++x) p[y * w + x] = 0.0f;
        }
      }
      break;
    }
    case Corruption::kPixelDropout: {
      const double drop = 0.4 * severity;
      for (std::size_t i = 0; i < out.numel(); ++i) {
        if (rng.bernoulli(drop)) p[i] = 0.0f;
      }
      break;
    }
  }
  ops::clamp(out, 0.0f, 1.0f, out);
  return out;
}

Dataset corrupt_dataset(const Dataset& clean, Corruption kind, float severity,
                        std::uint64_t seed) {
  clean.validate();
  Rng rng(seed);
  Dataset out;
  out.name = clean.name + "+" + corruption_name(kind);
  out.num_classes = clean.num_classes;
  out.labels = clean.labels;
  out.images = Tensor(clean.images.shape());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    out.images.set_row(
        i, corrupt_image(clean.images.slice_row(i), kind, severity, rng));
  }
  return out;
}

}  // namespace satd::data
