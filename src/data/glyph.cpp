#include "data/glyph.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"

namespace satd::data {

Jitter Jitter::random(Rng& rng, double max_angle, double scale_spread,
                      double max_shift) {
  Jitter j;
  j.angle = rng.uniform(-max_angle, max_angle);
  j.scale_x = 1.0 + rng.uniform(-scale_spread, scale_spread);
  j.scale_y = 1.0 + rng.uniform(-scale_spread, scale_spread);
  j.shift_x = rng.uniform(-max_shift, max_shift);
  j.shift_y = rng.uniform(-max_shift, max_shift);
  return j;
}

void Jitter::apply(double& x, double& y) const {
  // Rotate and scale about the box center, then translate.
  const double cx = x - 0.5;
  const double cy = y - 0.5;
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const double rx = (c * cx - s * cy) * scale_x;
  const double ry = (s * cx + c * cy) * scale_y;
  x = rx + 0.5 + shift_x;
  y = ry + 0.5 + shift_y;
}

Canvas::Canvas(std::size_t side) : side_(side), pix_(side * side, 0.0f) {
  SATD_EXPECT(side >= 4, "canvas too small");
}

void Canvas::splat(double px, double py, double radius, double intensity) {
  // Anti-aliased disc: intensity falls off linearly over one pixel at
  // the rim; blended by max so overlapping strokes stay in range.
  const double r = std::max(radius, 0.3);
  const int lo_y = std::max(0, static_cast<int>(std::floor(py - r - 1)));
  const int hi_y = std::min(static_cast<int>(side_) - 1,
                            static_cast<int>(std::ceil(py + r + 1)));
  const int lo_x = std::max(0, static_cast<int>(std::floor(px - r - 1)));
  const int hi_x = std::min(static_cast<int>(side_) - 1,
                            static_cast<int>(std::ceil(px + r + 1)));
  for (int y = lo_y; y <= hi_y; ++y) {
    for (int x = lo_x; x <= hi_x; ++x) {
      const double dx = x - px;
      const double dy = y - py;
      const double d = std::sqrt(dx * dx + dy * dy);
      const double cover = std::clamp(r + 0.5 - d, 0.0, 1.0);
      if (cover <= 0.0) continue;
      float& p = pix_[static_cast<std::size_t>(y) * side_ +
                      static_cast<std::size_t>(x)];
      p = std::max(p, static_cast<float>(cover * intensity));
    }
  }
}

void Canvas::stamp(double x, double y, double radius, double intensity,
                   const Jitter& j) {
  j.apply(x, y);
  splat(x * static_cast<double>(side_ - 1), y * static_cast<double>(side_ - 1),
        radius, intensity);
}

void Canvas::segment(double x0, double y0, double x1, double y1, double radius,
                     double intensity, const Jitter& j) {
  // Sample densely along the segment; jitter is applied per endpoint via
  // stamp so straight lines stay straight under the affine map.
  const double len_px =
      std::hypot((x1 - x0) * static_cast<double>(side_),
                 (y1 - y0) * static_cast<double>(side_));
  const std::size_t steps = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(len_px * 2.0)));
  for (std::size_t i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps);
    stamp(x0 + t * (x1 - x0), y0 + t * (y1 - y0), radius, intensity, j);
  }
}

void Canvas::arc(double cx, double cy, double rx, double ry, double a0,
                 double a1, double radius, double intensity, const Jitter& j) {
  SATD_EXPECT(a1 >= a0, "arc angles must be ordered");
  const double arc_px = std::max(rx, ry) * static_cast<double>(side_) *
                        (a1 - a0);
  const std::size_t steps = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::ceil(arc_px * 2.0)));
  for (std::size_t i = 0; i <= steps; ++i) {
    const double a =
        a0 + (a1 - a0) * static_cast<double>(i) / static_cast<double>(steps);
    stamp(cx + rx * std::cos(a), cy + ry * std::sin(a), radius, intensity, j);
  }
}

void Canvas::fill_rect(double x0, double y0, double x1, double y1,
                       double intensity, const Jitter& j) {
  fill_triangle(x0, y0, x1, y0, x1, y1, intensity, j);
  fill_triangle(x0, y0, x1, y1, x0, y1, intensity, j);
}

void Canvas::fill_triangle(double x0, double y0, double x1, double y1,
                           double x2, double y2, double intensity,
                           const Jitter& j) {
  j.apply(x0, y0);
  j.apply(x1, y1);
  j.apply(x2, y2);
  const double s = static_cast<double>(side_ - 1);
  const double ax = x0 * s, ay = y0 * s;
  const double bx = x1 * s, by = y1 * s;
  const double cx = x2 * s, cy = y2 * s;
  const int lo_y = std::max(
      0, static_cast<int>(std::floor(std::min({ay, by, cy}))));
  const int hi_y = std::min(static_cast<int>(side_) - 1,
                            static_cast<int>(std::ceil(std::max({ay, by, cy}))));
  const int lo_x = std::max(
      0, static_cast<int>(std::floor(std::min({ax, bx, cx}))));
  const int hi_x = std::min(static_cast<int>(side_) - 1,
                            static_cast<int>(std::ceil(std::max({ax, bx, cx}))));
  const double denom = (by - cy) * (ax - cx) + (cx - bx) * (ay - cy);
  if (std::fabs(denom) < 1e-12) return;  // degenerate
  for (int y = lo_y; y <= hi_y; ++y) {
    for (int x = lo_x; x <= hi_x; ++x) {
      const double l0 =
          ((by - cy) * (x - cx) + (cx - bx) * (y - cy)) / denom;
      const double l1 =
          ((cy - ay) * (x - cx) + (ax - cx) * (y - cy)) / denom;
      const double l2 = 1.0 - l0 - l1;
      if (l0 >= -1e-9 && l1 >= -1e-9 && l2 >= -1e-9) {
        float& p = pix_[static_cast<std::size_t>(y) * side_ +
                        static_cast<std::size_t>(x)];
        p = std::max(p, static_cast<float>(intensity));
      }
    }
  }
}

void Canvas::fill_ellipse(double cx, double cy, double rx, double ry,
                          double intensity, const Jitter& j) {
  // Rasterize by scanning the bounding box in jittered space: jitter the
  // center and axes endpoints to recover the mapped ellipse approximately
  // (affine maps take ellipses to ellipses; we sample the interior on a
  // grid in source space and stamp each covered cell).
  const std::size_t grid = side_ * 2;
  for (std::size_t gy = 0; gy <= grid; ++gy) {
    const double sy = cy - ry + 2.0 * ry * static_cast<double>(gy) /
                                    static_cast<double>(grid);
    const double dy = (sy - cy) / ry;
    const double span = 1.0 - dy * dy;
    if (span <= 0.0) continue;
    const double half = rx * std::sqrt(span);
    for (std::size_t gx = 0; gx <= grid; ++gx) {
      const double sx = cx - half + 2.0 * half * static_cast<double>(gx) /
                                        static_cast<double>(grid);
      stamp(sx, sy, 0.6, intensity, j);
    }
  }
}

void Canvas::blur(std::size_t passes) {
  std::vector<float> tmp(pix_.size());
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (std::size_t y = 0; y < side_; ++y) {
      for (std::size_t x = 0; x < side_; ++x) {
        double acc = 0.0;
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int yy = static_cast<int>(y) + dy;
            const int xx = static_cast<int>(x) + dx;
            if (yy < 0 || xx < 0 || yy >= static_cast<int>(side_) ||
                xx >= static_cast<int>(side_)) {
              continue;
            }
            acc += pix_[static_cast<std::size_t>(yy) * side_ +
                        static_cast<std::size_t>(xx)];
            ++count;
          }
        }
        tmp[y * side_ + x] = static_cast<float>(acc / count);
      }
    }
    pix_.swap(tmp);
  }
}

void Canvas::add_noise(Rng& rng, double stddev) {
  for (float& p : pix_) {
    p = std::clamp(p + static_cast<float>(rng.normal(0.0, stddev)), 0.0f, 1.0f);
  }
}

void Canvas::texture(Rng& rng, double amp) {
  for (float& p : pix_) {
    if (p > 0.05f) {
      p = std::clamp(p * (1.0f + static_cast<float>(rng.normal(0.0, amp))),
                     0.0f, 1.0f);
    }
  }
}

Tensor Canvas::to_tensor() const {
  Tensor t(Shape{1, side_, side_});
  float* dst = t.raw();
  for (std::size_t i = 0; i < pix_.size(); ++i) {
    dst[i] = std::clamp(pix_[i], 0.0f, 1.0f);
  }
  return t;
}

float Canvas::pixel(std::size_t y, std::size_t x) const {
  SATD_EXPECT(y < side_ && x < side_, "pixel out of range");
  return pix_[y * side_ + x];
}

}  // namespace satd::data
