#include "data/dataset.h"

#include "common/contract.h"

namespace satd::data {

void Dataset::validate() const {
  SATD_EXPECT(images.shape().rank() == 4, "images must be [N, C, H, W]");
  SATD_EXPECT(images.shape()[0] == labels.size(),
              "image/label count mismatch");
  SATD_EXPECT(num_classes > 0, "num_classes must be positive");
  for (std::size_t y : labels) {
    SATD_EXPECT(y < num_classes, "label out of range in dataset " + name);
  }
  for (float v : images.data()) {
    SATD_EXPECT(v >= 0.0f && v <= 1.0f, "pixel outside [0,1] in " + name);
  }
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  SATD_EXPECT(begin <= end && end <= size(), "bad slice range");
  std::vector<std::size_t> idx;
  idx.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) idx.push_back(i);
  return gather(idx);
}

Dataset Dataset::gather(const std::vector<std::size_t>& indices) const {
  const auto& dims = images.shape().dims();
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.images = Tensor(
      Shape{indices.size(), dims[1], dims[2], dims[3]});
  out.labels.reserve(indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t i = indices[k];
    SATD_EXPECT(i < size(), "gather index out of range");
    out.images.set_row(k, images.slice_row(i));
    out.labels.push_back(labels[i]);
  }
  return out;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes, 0);
  for (std::size_t y : labels) ++hist[y];
  return hist;
}

}  // namespace satd::data
