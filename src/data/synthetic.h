// Synthetic stand-ins for MNIST and Fashion-MNIST.
//
// SyntheticDigits renders stroke-drawn digit archetypes (0-9) with random
// affine jitter, stroke thickness and pixel noise; SyntheticFashion
// renders filled garment silhouettes with cloth texture, stronger jitter
// and deliberately confusable class groups (t-shirt/pullover/shirt,
// sandal/sneaker/boot) so it plays the "harder dataset" role
// Fashion-MNIST plays in the paper. Both emit [N, 1, 28, 28] images in
// [0, 1] with balanced classes, deterministically from a seed.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace satd::data {

/// Size/seed knobs for the synthetic generators.
struct SyntheticConfig {
  std::size_t train_size = 2000;
  std::size_t test_size = 500;
  std::uint64_t seed = 1;
};

/// Renders one digit example (class 0-9) with randomized nuisance
/// parameters drawn from `rng`. Returns a [1, 28, 28] tensor.
Tensor render_digit(std::size_t cls, Rng& rng);

/// Renders one garment example (class 0-9).
Tensor render_fashion(std::size_t cls, Rng& rng);

/// MNIST stand-in: balanced train/test split of rendered digits.
DatasetPair make_synthetic_digits(const SyntheticConfig& cfg);

/// Fashion-MNIST stand-in.
DatasetPair make_synthetic_fashion(const SyntheticConfig& cfg);

/// Builds a dataset by name: "digits" or "fashion" (used by CLI tools).
DatasetPair make_dataset(const std::string& name, const SyntheticConfig& cfg);

/// Class display names for the fashion dataset (for reports).
const char* fashion_class_name(std::size_t cls);

}  // namespace satd::data
