// Ablation: the Proposed method's per-epoch step size.
//
// Property P1 motivates a "relatively large" step (eps/10). This bench
// sweeps step_fraction: a huge step (eps/2) degenerates towards FGSM-Adv
// (the buffer saturates at the ball surface immediately); a tiny step
// (eps/40) means the buffered examples never reach the full budget
// between resets, echoing the paper's claim that overly small steps
// waste computation without improving the defense.
#include <cstdio>
#include <vector>

#include "attack/bim.h"
#include "bench_util.h"
#include "metrics/evaluator.h"

using namespace satd;

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Ablation — Proposed method's per-epoch step size (fraction of eps)",
      env);

  const std::string dataset = "digits";
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  const data::DatasetPair data = bench::load_dataset(env, dataset);

  const std::vector<float> fractions{0.5f, 0.25f, 0.1f, 0.05f, 0.025f};

  metrics::Table table(
      {"step (x eps)", "clean", "BIM(10)", "BIM(30)", "s/epoch"});
  for (float fraction : fractions) {
    bench::MethodOverrides ov;
    ov.step_fraction = fraction;
    metrics::CachedModel trained =
        bench::train_cached(env, data, dataset, "proposed", ov);
    attack::Bim bim10(eps, 10), bim30(eps, 30);
    char label[32];
    std::snprintf(label, sizeof label, "%.3f", fraction);
    table.add_row(
        {label,
         metrics::percent(metrics::evaluate_clean(trained.model, data.test)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim10)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim30)),
         metrics::seconds(trained.report.mean_epoch_seconds())});
  }

  std::fputs(table.to_string().c_str(), stdout);
  table.write_csv("ablation_step.csv");
  std::printf("(rows written to ablation_step.csv)\n");
  return 0;
}
