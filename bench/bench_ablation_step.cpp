// Ablation: the Proposed method's per-epoch step size.
//
// Property P1 motivates a "relatively large" step (eps/10). This bench
// sweeps step_fraction: a huge step (eps/2) degenerates towards FGSM-Adv
// (the buffer saturates at the ball surface immediately); a tiny step
// (eps/40) means the buffered examples never reach the full budget
// between resets, echoing the paper's claim that overly small steps
// waste computation without improving the defense.
//
// The body lives in experiments.cpp so the supervised bench_all
// orchestrator can run the same experiment as a resumable job.
#include "experiments.h"

using namespace satd;

int main() {
  bench::ExperimentContext ctx;
  ctx.env = metrics::ExperimentEnv::from_env();
  bench::run_ablation_step(ctx);
  return 0;
}
