// Extension: training dynamics — robust accuracy after EVERY epoch.
//
// This is the mechanism view of the Proposed method: its robustness
// climbs as the persistent buffer matures (the epoch-wise iteration
// accumulating toward the full budget), dips transiently right after a
// buffer reset, and recovers — while FGSM-Adv plateaus early and
// BIM(10)-Adv pays the full iterative cost for a similar trajectory.
// Not a figure in the paper; it visualizes why Figure 3b works.
//
// Trains fresh (uncached) small models: the per-epoch evaluation
// pollutes wall-clock timings, so these runs must never be reused by
// the timing benches.
#include <cstdio>
#include <vector>

#include "attack/bim.h"
#include "bench_util.h"
#include "metrics/chart.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

using namespace satd;

namespace {

std::vector<float> robust_per_epoch(const std::string& method,
                                    const data::DatasetPair& data,
                                    const core::TrainConfig& base_cfg,
                                    const std::string& model_spec) {
  Rng rng(base_cfg.seed);
  nn::Sequential model = nn::zoo::build(model_spec, rng);
  auto trainer = core::make_trainer(method, model, base_cfg);
  std::vector<float> curve;
  curve.reserve(base_cfg.epochs);
  attack::Bim bim(base_cfg.eps, 10);
  trainer->fit(data.train, [&](const core::EpochStats&) {
    curve.push_back(metrics::evaluate_attack(model, data.test, bim, 64));
  });
  return curve;
}

}  // namespace

int main() {
  metrics::ExperimentEnv env = metrics::ExperimentEnv::from_env();
  // Reduced sizes: this bench trains fresh every run (see file comment).
  env.train_size = std::min<std::size_t>(env.train_size, 600);
  env.test_size = std::min<std::size_t>(env.test_size, 150);
  bench::print_header(
      "Extension — BIM(10) robustness after every training epoch", env);

  const std::string dataset = "digits";
  const data::DatasetPair data = bench::load_dataset(env, dataset);
  core::TrainConfig cfg = env.train_config(dataset);
  // A mid-run reset makes the dip-and-recover effect visible.
  cfg.reset_period = std::max<std::size_t>(2, cfg.epochs / 2);

  metrics::AsciiChart chart(64, 16);
  metrics::Table table([&] {
    std::vector<std::string> header{"epoch"};
    for (std::size_t e = 0; e < cfg.epochs; ++e) {
      header.push_back(std::to_string(e));
    }
    return header;
  }());

  std::vector<std::string> x_labels;
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    x_labels.push_back(std::to_string(e));
  }
  chart.set_x_labels(x_labels);

  for (const std::string method : {"fgsm_adv", "proposed", "bim_adv"}) {
    std::printf("training %s (fresh, evaluated every epoch)...\n",
                method.c_str());
    const auto curve = robust_per_epoch(method, data, cfg, env.model_spec);
    chart.add_series(method, curve);
    std::vector<std::string> row{method};
    for (float acc : curve) row.push_back(metrics::percent(acc));
    table.add_row(std::move(row));
  }
  std::printf(
      "\nBIM(10) accuracy vs training epoch (eps=%.2f; Proposed resets "
      "its buffer at epoch %zu):\n\n",
      cfg.eps, cfg.reset_period);
  std::fputs(chart.to_string().c_str(), stdout);
  table.write_csv("extension_dynamics.csv");
  std::printf("(series written to extension_dynamics.csv)\n");
  return 0;
}
