// Reusable bodies of the reproduction experiments.
//
// Each run_* function is the full body of one bench binary (banner,
// cached training, evaluation, table + CSV output), factored out so the
// same code path serves two callers: the standalone bench binaries
// (bench_table1, bench_fig1, ...) and the supervised bench_all
// orchestrator, which runs them as resumable jobs with a watchdog
// deadline and a robustness-collapse sentinel.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gauntlet/gauntlet.h"
#include "runtime/supervisor.h"

namespace satd::bench {

/// How an experiment body should run: the workload scale, an optional
/// stop predicate polled during training (the supervisor wires its
/// watchdog deadline here), and whether single-step adversarial methods
/// train under the robustness-collapse sentinel (core/sentinel.h).
struct ExperimentContext {
  metrics::ExperimentEnv env;
  core::StopCheck stop;
  bool sentinel = false;
};

/// Thrown when the stop predicate fires mid-training: the run was
/// abandoned at an epoch boundary and nothing was cached — the partial
/// model never reaches the model cache, so a later retry retrains from
/// scratch and stays bit-identical to an uninterrupted run.
class ExperimentInterrupted : public std::runtime_error {
 public:
  explicit ExperimentInterrupted(const std::string& what)
      : std::runtime_error(what) {}
};

/// train_cached with the context applied: the stop check is polled at
/// batch boundaries, and (when ctx.sentinel is set) fgsm_adv/proposed
/// train under a BIM-probe sentinel whose collapse verdict rides the
/// trainer's rollback-and-retry path. Throws ExperimentInterrupted when
/// the stop check ended training early.
metrics::CachedModel train_cached_ctx(const ExperimentContext& ctx,
                                      const data::DatasetPair& data,
                                      const std::string& dataset_name,
                                      const std::string& method,
                                      const MethodOverrides& ov = {});

/// Table I: five methods x {Original, FGSM, BIM(10), BIM(30)} x both
/// datasets + s/epoch. Writes table1.csv.
void run_table1(const ExperimentContext& ctx);

/// One Figure-1 panel (accuracy vs BIM iteration count). Writes
/// fig1_<dataset>.csv. `panel` is the paper's panel letter ("a"/"b").
void run_fig1_panel(const ExperimentContext& ctx, const std::string& dataset,
                    const char* panel);

/// One Figure-2 panel (accuracy on intermediate BIM(10) iterates).
/// Writes fig2_<dataset>.csv.
void run_fig2_panel(const ExperimentContext& ctx, const std::string& dataset,
                    const char* panel);

/// Ablation of the Proposed method's buffer reset period. Writes
/// ablation_reset.csv.
void run_ablation_reset(const ExperimentContext& ctx);

/// Ablation of the Proposed method's per-epoch step size. Writes
/// ablation_step.csv.
void run_ablation_step(const ExperimentContext& ctx);

// ---- supervised job graphs ----

/// One supervised matrix entry: the job metadata (name, deps, promised
/// outputs, deadline) plus the experiment body it runs. The body is kept
/// separate from Job::run so the same definition serves all three
/// execution modes (in-process supervisor, spooler parent — which never
/// runs bodies — and `--run-job` child re-entry).
struct ExperimentJob {
  runtime::Job job;
  std::function<void(const ExperimentContext&)> body;
};

// ---- adaptive-attack gauntlet (src/gauntlet/) ----

/// One defense participating in the gauntlet: a trainer-factory method
/// name plus the config overrides its cache key uses.
struct ParticipantSpec {
  std::string label;   ///< row name / job suffix (comma-free)
  std::string method;  ///< core::make_trainer identifier
  MethodOverrides ov;
};

/// Every method core::known_methods() exposes, once each, in factory
/// order — the gauntlet's row set.
const std::vector<ParticipantSpec>& gauntlet_participants();

/// Gauntlet knobs for one dataset at this env's scale (eps from
/// ExperimentEnv::eps_for; fixed sweep/iteration structure so cached
/// results stay comparable across runs).
gauntlet::GauntletConfig gauntlet_config(const std::string& dataset);

/// Trains (or cache-loads) every participant. The returned vector owns
/// the models; take pointers only after it is fully built.
std::vector<metrics::CachedModel> train_participants(
    const ExperimentContext& ctx, const data::DatasetPair& data,
    const std::string& dataset);

/// One gauntlet matrix row: loads every participant (cache hits once the
/// training jobs ran), evaluates `label`'s defense against the full
/// attack plan and writes gauntlet_row_<label>.csv (header + one row,
/// fixed %.6f cells — byte-identical across reruns).
void run_gauntlet_row(const ExperimentContext& ctx,
                      const std::string& dataset, const std::string& label);

/// Merges the per-defense row CSVs verbatim into gauntlet_matrix.csv and
/// writes BENCH_gauntlet.json (satd-bench-1) with one result per row.
/// Byte-level merge, so the matrix is bit-identical whenever the row
/// files are.
void run_gauntlet_merge(const ExperimentContext& ctx,
                        const std::string& dataset);

/// The gauntlet job graph: one cached training job per participant, one
/// row job per defense (depending on ALL training jobs — every row needs
/// the full pool as transfer surrogates), and a final merge job.
std::vector<ExperimentJob> build_gauntlet_jobs(
    const metrics::ExperimentEnv& env, const std::string& dataset,
    double deadline, std::size_t max_attempts);

}  // namespace satd::bench
