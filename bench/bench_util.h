// Shared plumbing for the reproduction benches: dataset construction,
// cached training of the paper's five methods, and header printing.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/experiment.h"
#include "metrics/model_cache.h"
#include "metrics/report.h"

namespace satd::bench {

/// Builds (deterministically) the train/test pair for "digits"/"fashion".
inline data::DatasetPair load_dataset(const metrics::ExperimentEnv& env,
                                      const std::string& name) {
  return data::make_dataset(name, env.dataset_config());
}

/// Optional per-method config tweaks applied on top of env defaults.
struct MethodOverrides {
  std::size_t bim_iterations = 10;
  std::size_t reset_period = 0;   // 0 = keep env default
  float step_fraction = 0.0f;     // 0 = keep default (0.1)
};

/// Resolves the TrainConfig for (env, dataset) with overrides applied.
inline core::TrainConfig resolve_config(const metrics::ExperimentEnv& env,
                                        const std::string& dataset_name,
                                        const MethodOverrides& ov) {
  core::TrainConfig cfg = env.train_config(dataset_name);
  cfg.bim_iterations = ov.bim_iterations;
  if (ov.reset_period > 0) cfg.reset_period = ov.reset_period;
  if (ov.step_fraction > 0.0f) cfg.step_fraction = ov.step_fraction;
  return cfg;
}

/// Cache key identifying one training run (shared by the benches and the
/// bench_all supervisor, which needs it to declare job outputs).
inline metrics::ModelKey make_model_key(const metrics::ExperimentEnv& env,
                                        const core::TrainConfig& cfg,
                                        const std::string& dataset_name,
                                        const std::string& method) {
  metrics::ModelKey key;
  key.method = method;
  key.dataset = dataset_name;
  key.model_spec = env.model_spec;
  key.train_size = env.train_size;
  key.epochs = cfg.epochs;
  key.batch_size = cfg.batch_size;
  key.seed = cfg.seed;
  key.eps = cfg.eps;
  key.bim_iterations = method == "bim_adv" ? cfg.bim_iterations : 0;
  key.reset_period = method == "proposed" ? cfg.reset_period : 0;
  key.step_fraction = method == "proposed" ? cfg.step_fraction : 0.0f;
  return key;
}

/// Trains (or loads from bench_cache) one method on one dataset.
inline metrics::CachedModel train_cached(const metrics::ExperimentEnv& env,
                                         const data::DatasetPair& data,
                                         const std::string& dataset_name,
                                         const std::string& method,
                                         const MethodOverrides& ov = {}) {
  const core::TrainConfig cfg = resolve_config(env, dataset_name, ov);
  const metrics::ModelKey key =
      make_model_key(env, cfg, dataset_name, method);
  return metrics::train_or_load(
      env.cache_dir, key, [&](nn::Sequential& model) {
        auto trainer = core::make_trainer(method, model, cfg);
        return trainer->fit(data.train);
      });
}

/// One row of a machine-readable bench result: a name plus named numbers.
struct JsonResult {
  std::string name;
  std::vector<std::pair<std::string, double>> numbers;
};

/// Writes the "satd-bench-1" JSON document shared by bench_micro,
/// bench_all and bench_serve (BENCH_*.json; format documented in
/// README.md). `kind` tags what was measured, `reps` the samples per
/// median (0 when not a timing document).
inline void write_bench_json(const std::string& path, const std::string& kind,
                             int reps, const std::vector<JsonResult>& results) {
  std::ofstream os(path);
  os << "{\n  \"schema\": \"satd-bench-1\",\n  \"kind\": \"" << kind
     << "\",\n  \"reps\": " << reps << ",\n  \"hardware_threads\": "
     << std::thread::hardware_concurrency() << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "    {\"name\": \"" << results[i].name << "\"";
    for (const auto& [key, value] : results[i].numbers) {
      os << ", \"" << key << "\": " << value;
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Prints the experiment banner common to all benches.
inline void print_header(const std::string& experiment,
                         const metrics::ExperimentEnv& env) {
  metrics::print_banner(experiment);
  std::printf("scale: %s\n", env.describe().c_str());
  std::printf(
      "(models cached under %s/ — delete it to retrain; SATD_SCALE=paper "
      "for a larger run)\n\n",
      env.cache_dir.c_str());
}

}  // namespace satd::bench
