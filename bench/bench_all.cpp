// Supervised end-to-end reproduction: runs the whole experiment matrix
// (Table I, Figures 1 and 2, both ablations) under a resilient job
// orchestrator — in-process (src/runtime/supervisor.h) by default, or
// with every job fork/exec'd as an isolated child process under the
// multi-process spooler (src/runtime/spooler.h) when --spool is given.
//
// The matrix is decomposed into resumable jobs: one training job per
// (dataset, method) pair — whose output is the model-cache entry — and
// one job per table/figure/ablation artifact, depending on the training
// jobs it evaluates. Every state transition is journaled in a durable
// manifest, so killing the process mid-matrix (even `kill -9`) and
// rerunning resumes from the last completed job; because training is
// deterministic and completed models live in the cache, the resumed
// run's CSVs are bit-identical to an uninterrupted run's. A job that
// exhausts its retries is reported DEGRADED, but independent jobs keep
// running: one broken corner never costs the rest of the matrix.
//
// Spool mode adds crash isolation (a child can segfault or be OOM-killed
// without hurting the matrix), hard SIGKILL watchdogs, per-child CPU
// pinning from a --cores budget, per-job resource accounting (peak RSS,
// wall/user/sys time) in the report and BENCH_matrix.json, and a named
// --farm slot gate so several bench_all invocations share one machine-
// wide concurrency budget. Children re-enter this binary with
// `--run-job <name>` and report back through the process exit protocol
// (0 = ok, 75 = cooperative watchdog overrun, else failure).
//
// Single-step training jobs (FGSM-Adv and Proposed) run under the
// robustness-collapse sentinel (core/sentinel.h) unless --no-sentinel
// is given.
//
// --gauntlet swaps the paper matrix for the adaptive-attack gauntlet
// (src/gauntlet/): every method in core::known_methods() is trained on
// digits and crossed against FGSM, BIM, MI-FGSM, best-of-R restart PGD,
// a held-out-surrogate transfer attack and the eps-sweep collapse knee.
// Per-defense rows are independent resumable jobs merged byte-verbatim
// into gauntlet_matrix.csv + BENCH_gauntlet.json, under a separate
// manifest (gauntlet_manifest.bin) so the two matrices never adopt each
// other's journaled progress.
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <exception>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/durable_io.h"
#include "experiments.h"
#include "runtime/spooler.h"
#include "runtime/supervisor.h"

using namespace satd;

namespace {

/// One trained classifier the matrix needs: a cache-backed training job.
struct TrainSpec {
  std::string label;   // job-name suffix, e.g. "bim10"
  std::string method;  // trainer factory name
  bench::MethodOverrides ov;
};

const std::vector<TrainSpec>& train_specs() {
  static const std::vector<TrainSpec> specs{
      {"vanilla", "vanilla", {}},
      {"fgsm_adv", "fgsm_adv", {}},
      {"atda", "atda", {}},
      {"proposed", "proposed", {}},
      {"bim10", "bim_adv", {.bim_iterations = 10}},
      {"bim30", "bim_adv", {.bim_iterations = 30}},
  };
  return specs;
}

std::string train_job_name(const std::string& dataset,
                           const std::string& label) {
  return "train:" + dataset + ":" + label;
}

/// The cache files a training job promises (what resume checks for).
std::vector<std::string> train_outputs(const metrics::ExperimentEnv& env,
                                       const std::string& dataset,
                                       const TrainSpec& spec) {
  const core::TrainConfig cfg = bench::resolve_config(env, dataset, spec.ov);
  const std::string stem =
      env.cache_dir + "/" +
      bench::make_model_key(env, cfg, dataset, spec.method).stem();
  return {stem + ".model", stem + ".report"};
}

/// Builds the full experiment matrix. The job graph (names, deps,
/// outputs) is identical in every mode, which is what makes the child
/// re-entry protocol safe: parent and child agree on what each job name
/// means and which files it promises.
std::vector<bench::ExperimentJob> build_matrix(
    const metrics::ExperimentEnv& env, double deadline,
    std::size_t max_attempts) {
  std::vector<bench::ExperimentJob> matrix;
  auto add_job = [&](std::string name,
                     std::function<void(const bench::ExperimentContext&)> body,
                     std::vector<std::string> deps,
                     std::vector<std::string> outputs) {
    bench::ExperimentJob entry;
    entry.job.name = std::move(name);
    entry.job.deps = std::move(deps);
    entry.job.outputs = std::move(outputs);
    entry.job.deadline_seconds = deadline;
    entry.job.max_attempts = max_attempts;
    entry.body = std::move(body);
    matrix.push_back(std::move(entry));
  };

  // Training jobs: populate the model cache, one classifier each.
  const std::vector<std::string> datasets{"digits", "fashion"};
  for (const std::string& dataset : datasets) {
    for (const TrainSpec& spec : train_specs()) {
      add_job(
          train_job_name(dataset, spec.label),
          [&env, dataset, spec](const bench::ExperimentContext& ctx) {
            const data::DatasetPair data = bench::load_dataset(ctx.env, dataset);
            bench::train_cached_ctx(ctx, data, dataset, spec.method, spec.ov);
          },
          {}, train_outputs(env, dataset, spec));
    }
  }

  // Table I evaluates every method except vanilla on both datasets.
  std::vector<std::string> table1_deps;
  for (const std::string& dataset : datasets) {
    for (const TrainSpec& spec : train_specs()) {
      if (spec.label != "vanilla") {
        table1_deps.push_back(train_job_name(dataset, spec.label));
      }
    }
  }
  add_job("exp:table1", [](const bench::ExperimentContext& ctx) {
    bench::run_table1(ctx);
  }, std::move(table1_deps), {"table1.csv"});

  // Figures 1 and 2 share the same four classifiers per dataset.
  const std::vector<std::string> figure_labels{"vanilla", "fgsm_adv", "bim10",
                                               "bim30"};
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const std::string& dataset = datasets[i];
    const char* panel = i == 0 ? "a" : "b";
    std::vector<std::string> deps;
    for (const std::string& label : figure_labels) {
      deps.push_back(train_job_name(dataset, label));
    }
    add_job("exp:fig1:" + dataset,
            [dataset, panel](const bench::ExperimentContext& ctx) {
              bench::run_fig1_panel(ctx, dataset, panel);
            },
            deps, {"fig1_" + dataset + ".csv"});
    add_job("exp:fig2:" + dataset,
            [dataset, panel](const bench::ExperimentContext& ctx) {
              bench::run_fig2_panel(ctx, dataset, panel);
            },
            std::move(deps), {"fig2_" + dataset + ".csv"});
  }

  // The ablations train their own Proposed variants (distinct cache
  // keys), so they are dependency-free — they demonstrate that
  // independent jobs keep running when another corner degrades.
  add_job("exp:ablation_reset", [](const bench::ExperimentContext& ctx) {
    bench::run_ablation_reset(ctx);
  }, {}, {"ablation_reset.csv"});
  add_job("exp:ablation_step", [](const bench::ExperimentContext& ctx) {
    bench::run_ablation_step(ctx);
  }, {}, {"ablation_step.csv"});

  return matrix;
}

/// Wraps an experiment body as a job attempt: the watchdog deadline is
/// polled at batch boundaries via the trainer stop check, an interrupted
/// run reports an overrun (retryable), any other error a failure.
runtime::JobResult run_attempt(
    const metrics::ExperimentEnv& env, bool sentinel,
    runtime::JobContext& jc,
    const std::function<void(const bench::ExperimentContext&)>& body) {
  bench::ExperimentContext ctx{env, jc.stop_check(), sentinel};
  try {
    body(ctx);
  } catch (const bench::ExperimentInterrupted& e) {
    return runtime::JobResult::overrun(e.what());
  } catch (const std::exception& e) {
    return runtime::JobResult::failed(e.what());
  }
  return runtime::JobResult::ok();
}

/// Child re-entry (`--run-job <name>`): runs ONE job body in this
/// process and reports through the exit code — 0 ok, 75 cooperative
/// overrun (Spooler::kExitOverrun), 1 failure, 2 unknown job. The
/// spooler parent owns the manifest; the child only writes the job's
/// own artifacts (which are atomic, so a SIGKILL mid-write never leaves
/// a torn file for the retry to trip over).
int run_single_job(const std::vector<bench::ExperimentJob>& matrix,
                   const std::string& name,
                   const metrics::ExperimentEnv& env, bool sentinel,
                   double deadline) {
  const bench::ExperimentJob* found = nullptr;
  for (const bench::ExperimentJob& entry : matrix) {
    if (entry.job.name == name) {
      found = &entry;
      break;
    }
  }
  if (found == nullptr) {
    std::fprintf(stderr, "bench_all --run-job: unknown job \"%s\"\n",
                 name.c_str());
    return 2;
  }

  Clock& clock = SystemClock::instance();
  const double deadline_at =
      deadline > 0.0 ? clock.now() + deadline
                     : std::numeric_limits<double>::infinity();
  runtime::JobContext jc(clock, deadline_at);
  const runtime::JobResult result =
      run_attempt(env, sentinel, jc, found->body);
  switch (result.status) {
    case runtime::JobResult::Status::kOk:
      return 0;
    case runtime::JobResult::Status::kOverrun:
      std::fprintf(stderr, "bench_all --run-job %s: overrun: %s\n",
                   name.c_str(), result.message.c_str());
      return runtime::Spooler::kExitOverrun;
    case runtime::JobResult::Status::kFailed:
      break;
  }
  std::fprintf(stderr, "bench_all --run-job %s: failed: %s\n", name.c_str(),
               result.message.c_str());
  return 1;
}

/// Path of this very binary, for spawning `--run-job` children.
std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_all",
                "Runs the full experiment matrix (Table I, Figures 1-2, "
                "ablations) under the resilient job supervisor, or as "
                "isolated child processes with --spool.");
  cli.add_string("scale", "",
                 "workload scale: tiny|smoke|fast|paper (default: the "
                 "SATD_SCALE environment, i.e. fast)");
  cli.add_string("manifest", "",
                 "supervisor manifest path (default: "
                 "<cache_dir>/supervisor_manifest.bin)");
  cli.add_string("report", "bench_all_report.txt",
                 "where to write the final matrix report");
  cli.add_int("max-attempts", 3, "attempt budget per job");
  cli.add_double("deadline", 1800.0,
                 "per-attempt watchdog deadline in seconds (0 = none)");
  cli.add_flag("no-sentinel",
               "disable the robustness-collapse sentinel on single-step "
               "training jobs");
  cli.add_flag("gauntlet",
               "run the adaptive-attack gauntlet instead of the paper "
               "matrix: every known training method vs FGSM/BIM/MI-FGSM/"
               "restart-PGD/transfer/eps-sweep, merged into "
               "gauntlet_matrix.csv + BENCH_gauntlet.json");
  add_threads_option(cli);
  add_kernel_option(cli);
  cli.add_flag("spool",
               "run each job as a fork/exec'd child process under the "
               "multi-process spooler (crash isolation, CPU pinning, "
               "resource accounting)");
  add_spool_options(cli);
  cli.add_string("farm", "",
                 "named machine-wide slot gate; bench_all invocations "
                 "sharing a farm name also share the --slots budget "
                 "(empty: this invocation only limits itself)");
  cli.add_string("run-job", "",
                 "internal child re-entry: run exactly this job in-process "
                 "and exit (0 ok, 75 watchdog overrun, else failure)");
  cli.add_string("emit-json", "",
                 "also write BENCH_matrix.json (per-job outcomes and "
                 "resource accounting, satd-bench-1 schema) into this "
                 "directory");
  if (!cli.parse(argc, argv)) return 0;
  apply_threads_option(cli);
  apply_kernel_option(cli);

  metrics::ExperimentEnv env = metrics::ExperimentEnv::from_env();
  const std::string scale = cli.get_string("scale");
  if (scale == "tiny") {
    // Smaller than SATD_SCALE=smoke: sized for CI, where bench_all must
    // prove the orchestration (not the science) in seconds.
    env.train_size = 120;
    env.test_size = 60;
    env.epochs = 3;
  } else if (scale == "smoke") {
    env.train_size = 200;
    env.test_size = 100;
    env.epochs = 6;
  } else if (scale == "paper") {
    env.train_size = 4000;
    env.test_size = 1000;
    env.epochs = 40;
  } else if (!scale.empty() && scale != "fast") {
    std::fprintf(stderr, "unknown --scale \"%s\"\n", scale.c_str());
    return 2;
  }

  const bool sentinel = !cli.get_flag("no-sentinel");
  const bool gauntlet = cli.get_flag("gauntlet");
  const double deadline = cli.get_double("deadline");
  const auto max_attempts =
      static_cast<std::size_t>(cli.get_int("max-attempts"));
  // The gauntlet is digits-only: its point is the attack axis, not the
  // dataset axis, and one dataset keeps the defense x attack cross at 10
  // methods affordable in CI.
  const std::vector<bench::ExperimentJob> matrix =
      gauntlet
          ? bench::build_gauntlet_jobs(env, "digits", deadline, max_attempts)
          : build_matrix(env, deadline, max_attempts);

  // Child re-entry: run one job and exit through the process protocol.
  if (const std::string& job_name = cli.get_string("run-job");
      !job_name.empty()) {
    return run_single_job(matrix, job_name, env, sentinel, deadline);
  }

  // The gauntlet keeps its own manifest and fingerprint: its job graph
  // shares training-job names with the paper matrix but promises
  // different downstream artifacts, so the two runs must never adopt
  // each other's journaled progress.
  std::string manifest_path = cli.get_string("manifest");
  if (manifest_path.empty()) {
    manifest_path = env.cache_dir + (gauntlet ? "/gauntlet_manifest.bin"
                                              : "/supervisor_manifest.bin");
  }

  bench::print_header(gauntlet
                          ? "bench_all --gauntlet — adaptive-attack gauntlet"
                          : "bench_all — supervised experiment matrix",
                      env);
  std::printf("manifest: %s (delete it to forget past progress)\n\n",
              manifest_path.c_str());

  // A manifest journaled at a different scale/seed describes different
  // artifacts; the fingerprint makes the orchestrator start fresh then.
  const std::string fingerprint =
      (gauntlet ? "bench_all-gauntlet:" : "bench_all:") + env.describe();

  runtime::MatrixReport report;
  if (cli.get_flag("spool")) {
    runtime::Spooler::Options options;
    options.manifest_path = manifest_path;
    options.fingerprint = fingerprint;
    options.slots = resolve_slots_option(cli, 2);
    options.cores = resolve_cores_option(cli);
    options.gate_name = cli.get_string("farm");
    options.log_dir = env.cache_dir + "/spool_logs";

    // Children re-enter this binary with --run-job. Config flags are
    // forwarded explicitly; SATD_* environment is inherited. --threads
    // is NOT forwarded when a core budget is set — the spooler exports a
    // SATD_THREADS matching each child's core count instead.
    const std::string exe = self_exe_path(argv[0]);
    const bool forward_threads = options.cores.empty();
    runtime::Spooler spooler(
        std::move(options),
        [&, exe, forward_threads](const runtime::Job& job,
                                  std::size_t /*attempt*/) {
          runtime::SpawnSpec spec;
          spec.argv = {exe, "--run-job", job.name, "--deadline",
                       std::to_string(deadline)};
          if (!scale.empty()) {
            spec.argv.push_back("--scale");
            spec.argv.push_back(scale);
          }
          if (!sentinel) spec.argv.push_back("--no-sentinel");
          if (gauntlet) spec.argv.push_back("--gauntlet");
          if (const std::string& k = cli.get_string("kernel"); !k.empty()) {
            spec.argv.push_back("--kernel");
            spec.argv.push_back(k);
          }
          if (const std::string& t = cli.get_string("threads");
              forward_threads && !t.empty()) {
            spec.argv.push_back("--threads");
            spec.argv.push_back(t);
          }
          return spec;
        });
    for (const bench::ExperimentJob& entry : matrix) spooler.add(entry.job);
    report = spooler.run();
  } else {
    runtime::Supervisor::Options options;
    options.manifest_path = manifest_path;
    options.fingerprint = fingerprint;
    runtime::Supervisor supervisor(options);
    for (const bench::ExperimentJob& entry : matrix) {
      runtime::Job job = entry.job;
      job.run = [&env, sentinel, body = entry.body](runtime::JobContext& jc) {
        return run_attempt(env, sentinel, jc, body);
      };
      supervisor.add(std::move(job));
    }
    report = supervisor.run();
  }

  const std::string summary = report.to_string();
  std::printf("\n%s", summary.c_str());
  durable::atomic_write_file(cli.get_string("report"), summary);
  std::printf("(report written to %s)\n", cli.get_string("report").c_str());

  if (const std::string dir = cli.get_string("emit-json"); !dir.empty()) {
    std::vector<bench::JsonResult> rows;
    for (const runtime::JobOutcome& job : report.jobs) {
      bench::JsonResult r;
      r.name = job.name;
      r.numbers = {
          {"done", job.state == runtime::JobState::kDone ? 1.0 : 0.0},
          {"attempts", static_cast<double>(job.attempts)},
          {"resumed", job.resumed ? 1.0 : 0.0},
          // Resource accounting (all zero in in-process supervisor mode,
          // filled by the spooler's per-child wait4/proc sampling).
          {"wall_seconds", job.usage.wall_seconds},
          {"user_seconds", job.usage.user_seconds},
          {"sys_seconds", job.usage.sys_seconds},
          {"peak_rss_kb", static_cast<double>(job.usage.peak_rss_kb)},
          {"cores", static_cast<double>(job.cores.size())}};
      rows.push_back(std::move(r));
    }
    bench::JsonResult total;
    total.name = "matrix";
    total.numbers = {{"jobs", static_cast<double>(report.jobs.size())},
                     {"done", static_cast<double>(report.done())},
                     {"degraded", static_cast<double>(report.degraded())}};
    rows.push_back(std::move(total));
    bench::write_bench_json(dir + "/BENCH_matrix.json", "matrix", 0, rows);
  }
  return report.all_done() ? 0 : 1;
}
