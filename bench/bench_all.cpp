// Supervised end-to-end reproduction: runs the whole experiment matrix
// (Table I, Figures 1 and 2, both ablations) under the job supervisor
// (src/runtime/supervisor.h).
//
// The matrix is decomposed into resumable jobs: one training job per
// (dataset, method) pair — whose output is the model-cache entry — and
// one job per table/figure/ablation artifact, depending on the training
// jobs it evaluates. Every state transition is journaled in a durable
// manifest, so killing the process mid-matrix (even `kill -9`) and
// rerunning resumes from the last completed job; because training is
// deterministic and completed models live in the cache, the resumed
// run's CSVs are bit-identical to an uninterrupted run's. A job that
// exhausts its retries is reported DEGRADED, but independent jobs keep
// running: one broken corner never costs the rest of the matrix.
//
// Single-step training jobs (FGSM-Adv and Proposed) run under the
// robustness-collapse sentinel (core/sentinel.h) unless --no-sentinel
// is given.
#include <cstddef>
#include <cstdio>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/durable_io.h"
#include "experiments.h"
#include "runtime/supervisor.h"

using namespace satd;

namespace {

/// One trained classifier the matrix needs: a cache-backed training job.
struct TrainSpec {
  std::string label;   // job-name suffix, e.g. "bim10"
  std::string method;  // trainer factory name
  bench::MethodOverrides ov;
};

const std::vector<TrainSpec>& train_specs() {
  static const std::vector<TrainSpec> specs{
      {"vanilla", "vanilla", {}},
      {"fgsm_adv", "fgsm_adv", {}},
      {"atda", "atda", {}},
      {"proposed", "proposed", {}},
      {"bim10", "bim_adv", {.bim_iterations = 10}},
      {"bim30", "bim_adv", {.bim_iterations = 30}},
  };
  return specs;
}

std::string train_job_name(const std::string& dataset,
                           const std::string& label) {
  return "train:" + dataset + ":" + label;
}

/// The cache files a training job promises (what resume checks for).
std::vector<std::string> train_outputs(const metrics::ExperimentEnv& env,
                                       const std::string& dataset,
                                       const TrainSpec& spec) {
  const core::TrainConfig cfg = bench::resolve_config(env, dataset, spec.ov);
  const std::string stem =
      env.cache_dir + "/" +
      bench::make_model_key(env, cfg, dataset, spec.method).stem();
  return {stem + ".model", stem + ".report"};
}

/// Wraps an experiment body as a job attempt: the watchdog deadline is
/// polled at batch boundaries via the trainer stop check, an interrupted
/// run reports an overrun (retryable), any other error a failure.
runtime::JobResult run_attempt(
    const metrics::ExperimentEnv& env, bool sentinel,
    runtime::JobContext& jc,
    const std::function<void(const bench::ExperimentContext&)>& body) {
  bench::ExperimentContext ctx{env, jc.stop_check(), sentinel};
  try {
    body(ctx);
  } catch (const bench::ExperimentInterrupted& e) {
    return runtime::JobResult::overrun(e.what());
  } catch (const std::exception& e) {
    return runtime::JobResult::failed(e.what());
  }
  return runtime::JobResult::ok();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_all",
                "Runs the full experiment matrix (Table I, Figures 1-2, "
                "ablations) under the resilient job supervisor.");
  cli.add_string("scale", "",
                 "workload scale: tiny|smoke|fast|paper (default: the "
                 "SATD_SCALE environment, i.e. fast)");
  cli.add_string("manifest", "",
                 "supervisor manifest path (default: "
                 "<cache_dir>/supervisor_manifest.bin)");
  cli.add_string("report", "bench_all_report.txt",
                 "where to write the final matrix report");
  cli.add_int("max-attempts", 3, "attempt budget per job");
  cli.add_double("deadline", 1800.0,
                 "per-attempt watchdog deadline in seconds (0 = none)");
  cli.add_flag("no-sentinel",
               "disable the robustness-collapse sentinel on single-step "
               "training jobs");
  add_threads_option(cli);
  add_kernel_option(cli);
  cli.add_string("emit-json", "",
                 "also write BENCH_matrix.json (per-job outcomes, "
                 "satd-bench-1 schema) into this directory");
  if (!cli.parse(argc, argv)) return 0;
  apply_threads_option(cli);
  apply_kernel_option(cli);

  metrics::ExperimentEnv env = metrics::ExperimentEnv::from_env();
  const std::string scale = cli.get_string("scale");
  if (scale == "tiny") {
    // Smaller than SATD_SCALE=smoke: sized for CI, where bench_all must
    // prove the orchestration (not the science) in seconds.
    env.train_size = 120;
    env.test_size = 60;
    env.epochs = 3;
  } else if (scale == "smoke") {
    env.train_size = 200;
    env.test_size = 100;
    env.epochs = 6;
  } else if (scale == "paper") {
    env.train_size = 4000;
    env.test_size = 1000;
    env.epochs = 40;
  } else if (!scale.empty() && scale != "fast") {
    std::fprintf(stderr, "unknown --scale \"%s\"\n", scale.c_str());
    return 2;
  }

  const bool sentinel = !cli.get_flag("no-sentinel");
  const double deadline = cli.get_double("deadline");
  const auto max_attempts =
      static_cast<std::size_t>(cli.get_int("max-attempts"));
  std::string manifest_path = cli.get_string("manifest");
  if (manifest_path.empty()) {
    manifest_path = env.cache_dir + "/supervisor_manifest.bin";
  }

  bench::print_header("bench_all — supervised experiment matrix", env);
  std::printf("manifest: %s (delete it to forget past progress)\n\n",
              manifest_path.c_str());

  runtime::Supervisor::Options options;
  options.manifest_path = manifest_path;
  // A manifest journaled at a different scale/seed describes different
  // artifacts; the fingerprint makes the supervisor start fresh then.
  options.fingerprint = "bench_all:" + env.describe();
  runtime::Supervisor supervisor(options);

  auto add_job = [&](std::string name,
                     std::function<void(const bench::ExperimentContext&)> body,
                     std::vector<std::string> deps,
                     std::vector<std::string> outputs) {
    runtime::Job job;
    job.name = std::move(name);
    job.deps = std::move(deps);
    job.outputs = std::move(outputs);
    job.deadline_seconds = deadline;
    job.max_attempts = max_attempts;
    job.run = [&env, sentinel, body = std::move(body)](
                  runtime::JobContext& jc) {
      return run_attempt(env, sentinel, jc, body);
    };
    supervisor.add(std::move(job));
  };

  // Training jobs: populate the model cache, one classifier each.
  const std::vector<std::string> datasets{"digits", "fashion"};
  for (const std::string& dataset : datasets) {
    for (const TrainSpec& spec : train_specs()) {
      add_job(
          train_job_name(dataset, spec.label),
          [&, dataset, spec](const bench::ExperimentContext& ctx) {
            const data::DatasetPair data = bench::load_dataset(ctx.env, dataset);
            bench::train_cached_ctx(ctx, data, dataset, spec.method, spec.ov);
          },
          {}, train_outputs(env, dataset, spec));
    }
  }

  // Table I evaluates every method except vanilla on both datasets.
  std::vector<std::string> table1_deps;
  for (const std::string& dataset : datasets) {
    for (const TrainSpec& spec : train_specs()) {
      if (spec.label != "vanilla") {
        table1_deps.push_back(train_job_name(dataset, spec.label));
      }
    }
  }
  add_job("exp:table1", [](const bench::ExperimentContext& ctx) {
    bench::run_table1(ctx);
  }, std::move(table1_deps), {"table1.csv"});

  // Figures 1 and 2 share the same four classifiers per dataset.
  const std::vector<std::string> figure_labels{"vanilla", "fgsm_adv", "bim10",
                                               "bim30"};
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const std::string& dataset = datasets[i];
    const char* panel = i == 0 ? "a" : "b";
    std::vector<std::string> deps;
    for (const std::string& label : figure_labels) {
      deps.push_back(train_job_name(dataset, label));
    }
    add_job("exp:fig1:" + dataset,
            [dataset, panel](const bench::ExperimentContext& ctx) {
              bench::run_fig1_panel(ctx, dataset, panel);
            },
            deps, {"fig1_" + dataset + ".csv"});
    add_job("exp:fig2:" + dataset,
            [dataset, panel](const bench::ExperimentContext& ctx) {
              bench::run_fig2_panel(ctx, dataset, panel);
            },
            std::move(deps), {"fig2_" + dataset + ".csv"});
  }

  // The ablations train their own Proposed variants (distinct cache
  // keys), so they are dependency-free — they demonstrate that
  // independent jobs keep running when another corner degrades.
  add_job("exp:ablation_reset", [](const bench::ExperimentContext& ctx) {
    bench::run_ablation_reset(ctx);
  }, {}, {"ablation_reset.csv"});
  add_job("exp:ablation_step", [](const bench::ExperimentContext& ctx) {
    bench::run_ablation_step(ctx);
  }, {}, {"ablation_step.csv"});

  const runtime::MatrixReport report = supervisor.run();
  const std::string summary = report.to_string();
  std::printf("\n%s", summary.c_str());
  durable::atomic_write_file(cli.get_string("report"), summary);
  std::printf("(report written to %s)\n", cli.get_string("report").c_str());

  if (const std::string dir = cli.get_string("emit-json"); !dir.empty()) {
    std::vector<bench::JsonResult> rows;
    for (const runtime::JobOutcome& job : report.jobs) {
      bench::JsonResult r;
      r.name = job.name;
      r.numbers = {
          {"done", job.state == runtime::JobState::kDone ? 1.0 : 0.0},
          {"attempts", static_cast<double>(job.attempts)},
          {"resumed", job.resumed ? 1.0 : 0.0}};
      rows.push_back(std::move(r));
    }
    bench::JsonResult total;
    total.name = "matrix";
    total.numbers = {{"jobs", static_cast<double>(report.jobs.size())},
                     {"done", static_cast<double>(report.done())},
                     {"degraded", static_cast<double>(report.degraded())}};
    rows.push_back(std::move(total));
    bench::write_bench_json(dir + "/BENCH_matrix.json", "matrix", 0, rows);
  }
  return report.all_done() ? 0 : 1;
}
