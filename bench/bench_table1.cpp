// Reproduces Table I: test accuracy of five defensive methods on
// Original / FGSM / BIM(10) / BIM(30) examples for both datasets, plus
// training time per epoch.
//
// Rows (as in the paper): FGSM-Adv, ATDA, Proposed, BIM(10)-Adv,
// BIM(30)-Adv. Expected shape: everything is accurate on Original and
// FGSM; only ATDA / Proposed / BIM-Adv resist iterative attacks;
// Proposed beats ATDA on BIM accuracy and sits at BIM-Adv level; time
// per epoch is FGSM-Adv ~ Proposed < ATDA << BIM(10)-Adv << BIM(30)-Adv.
//
// The body lives in experiments.cpp so the supervised bench_all
// orchestrator can run the same experiment as a resumable job.
#include "experiments.h"

using namespace satd;

int main() {
  bench::ExperimentContext ctx;
  ctx.env = metrics::ExperimentEnv::from_env();
  bench::run_table1(ctx);
  return 0;
}
