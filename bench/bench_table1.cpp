// Reproduces Table I: test accuracy of five defensive methods on
// Original / FGSM / BIM(10) / BIM(30) examples for both datasets, plus
// training time per epoch.
//
// Rows (as in the paper): FGSM-Adv, ATDA, Proposed, BIM(10)-Adv,
// BIM(30)-Adv. Expected shape: everything is accurate on Original and
// FGSM; only ATDA / Proposed / BIM-Adv resist iterative attacks;
// Proposed beats ATDA on BIM accuracy and sits at BIM-Adv level; time
// per epoch is FGSM-Adv ~ Proposed < ATDA << BIM(10)-Adv << BIM(30)-Adv.
#include <cstdio>
#include <vector>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "bench_util.h"
#include "metrics/evaluator.h"

using namespace satd;

namespace {

struct MethodRow {
  std::string method;
  bench::MethodOverrides ov;
};

const std::vector<MethodRow> kMethods{
    {"fgsm_adv", {}},
    {"atda", {}},
    {"proposed", {}},
    {"bim_adv", {.bim_iterations = 10}},
    {"bim_adv", {.bim_iterations = 30}},
};

struct EvalResult {
  std::string name;
  float original = 0, fgsm = 0, bim10 = 0, bim30 = 0;
  double epoch_seconds = 0;
};

EvalResult evaluate(const metrics::ExperimentEnv& env,
                    const data::DatasetPair& data,
                    const std::string& dataset, const MethodRow& row) {
  metrics::CachedModel trained =
      bench::train_cached(env, data, dataset, row.method, row.ov);
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  EvalResult out;
  out.name = trained.report.method;
  out.epoch_seconds = trained.report.mean_epoch_seconds();
  out.original = metrics::evaluate_clean(trained.model, data.test);
  attack::Fgsm fgsm(eps);
  out.fgsm = metrics::evaluate_attack(trained.model, data.test, fgsm);
  attack::Bim bim10(eps, 10);
  out.bim10 = metrics::evaluate_attack(trained.model, data.test, bim10);
  attack::Bim bim30(eps, 30);
  out.bim30 = metrics::evaluate_attack(trained.model, data.test, bim30);
  return out;
}

}  // namespace

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header("Table I — defensive power and training cost", env);

  const data::DatasetPair digits = bench::load_dataset(env, "digits");
  const data::DatasetPair fashion = bench::load_dataset(env, "fashion");

  metrics::Table table({"method", "dig:Original", "dig:FGSM", "dig:BIM(10)",
                        "dig:BIM(30)", "fash:Original", "fash:FGSM",
                        "fash:BIM(10)", "fash:BIM(30)", "s/epoch"});

  for (const MethodRow& row : kMethods) {
    const EvalResult d = evaluate(env, digits, "digits", row);
    const EvalResult f = evaluate(env, fashion, "fashion", row);
    table.add_row({d.name, metrics::percent(d.original),
                   metrics::percent(d.fgsm), metrics::percent(d.bim10),
                   metrics::percent(d.bim30), metrics::percent(f.original),
                   metrics::percent(f.fgsm), metrics::percent(f.bim10),
                   metrics::percent(f.bim30),
                   // The paper reports one per-epoch time; we average the
                   // two datasets' runs (identical workload shape).
                   metrics::seconds((d.epoch_seconds + f.epoch_seconds) / 2)});
  }

  std::fputs(table.to_string().c_str(), stdout);
  table.write_csv("table1.csv");
  std::printf("(rows written to table1.csv)\n");
  return 0;
}
