// Reproduces Figure 2 (a: digits / b: fashion): test accuracy of the same
// four classifiers on the INTERMEDIATE iterates of BIM(10) — accuracy is
// measured after every iteration i = 1..10 of a fixed-step attack
// (eps_step = eps/10, perturbation grows with i).
//
// Expected shape (paper, Section III): accuracy decreases monotonically
// in i, undefended classifiers fall below random guessing before the
// attack finishes, and most of the degradation happens within the first
// ~6 iterations — establishing empirical property P2 ("intermediate
// results already reveal the majority of blind spots").
//
// The body lives in experiments.cpp so the supervised bench_all
// orchestrator can run the same experiment as a resumable job.
#include "experiments.h"

using namespace satd;

int main() {
  bench::ExperimentContext ctx;
  ctx.env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Figure 2 — accuracy on intermediate BIM iterates", ctx.env);
  bench::run_fig2_panel(ctx, "digits", "a");
  bench::run_fig2_panel(ctx, "fashion", "b");
  return 0;
}
