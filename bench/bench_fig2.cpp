// Reproduces Figure 2 (a: digits / b: fashion): test accuracy of the same
// four classifiers on the INTERMEDIATE iterates of BIM(10) — accuracy is
// measured after every iteration i = 1..10 of a fixed-step attack
// (eps_step = eps/10, perturbation grows with i).
//
// Expected shape (paper, Section III): accuracy decreases monotonically
// in i, undefended classifiers fall below random guessing before the
// attack finishes, and most of the degradation happens within the first
// ~6 iterations — establishing empirical property P2 ("intermediate
// results already reveal the majority of blind spots").
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "metrics/chart.h"
#include "metrics/evaluator.h"

using namespace satd;

namespace {

constexpr std::size_t kTotalIterations = 10;

void run_panel(const metrics::ExperimentEnv& env, const std::string& dataset,
               const char* panel) {
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  std::printf(
      "--- Figure 2%s: %s (BIM(%zu), eps=%.2f, accuracy after each "
      "iteration) ---\n",
      panel, dataset.c_str(), kTotalIterations, eps);
  const data::DatasetPair data = bench::load_dataset(env, dataset);

  const std::vector<std::pair<std::string, bench::MethodOverrides>> methods{
      {"vanilla", {}},
      {"fgsm_adv", {}},
      {"bim_adv", {.bim_iterations = 10}},
      {"bim_adv", {.bim_iterations = 30}},
  };

  metrics::Table table([&] {
    std::vector<std::string> header{"classifier"};
    for (std::size_t i = 1; i <= kTotalIterations; ++i) {
      header.push_back("iter " + std::to_string(i));
    }
    return header;
  }());

  metrics::AsciiChart chart(60, 14);
  {
    std::vector<std::string> x_labels;
    for (std::size_t i = 1; i <= kTotalIterations; ++i) {
      x_labels.push_back("i=" + std::to_string(i));
    }
    chart.set_x_labels(x_labels);
  }

  for (const auto& [method, ov] : methods) {
    metrics::CachedModel trained =
        bench::train_cached(env, data, dataset, method, ov);
    const auto curve = metrics::intermediate_curve(trained.model, data.test,
                                                   eps, kTotalIterations);
    std::vector<std::string> row{trained.report.method};
    std::vector<float> ys;
    for (const auto& point : curve) {
      row.push_back(metrics::percent(point.accuracy));
      ys.push_back(point.accuracy);
    }
    table.add_row(std::move(row));
    chart.add_series(trained.report.method, ys);
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n%s\n", chart.to_string().c_str());
  const std::string csv = "fig2_" + dataset + ".csv";
  table.write_csv(csv);
  std::printf("(series written to %s)\n\n", csv.c_str());
}

}  // namespace

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Figure 2 — accuracy on intermediate BIM iterates", env);
  run_panel(env, "digits", "a");
  run_panel(env, "fashion", "b");
  return 0;
}
