// Ablation: the Proposed method's buffer reset period.
//
// The paper resets the epoch-wise iteration every 20 epochs "to catch up
// the long term changes in classifier's parameters" but does not ablate
// the choice. This bench sweeps the period: never resetting lets the
// buffered examples go stale against the drifting parameters; resetting
// every epoch degenerates to FGSM-Adv (the buffer never matures past one
// step). The useful defense lives in between.
#include <cstdio>
#include <vector>

#include "attack/bim.h"
#include "bench_util.h"
#include "metrics/evaluator.h"

using namespace satd;

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Ablation — Proposed method's buffer reset period", env);

  const std::string dataset = "digits";
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  const data::DatasetPair data = bench::load_dataset(env, dataset);

  // "1" degenerates to single-step-from-clean; a period beyond the epoch
  // count means "never reset".
  std::vector<std::size_t> periods{1, env.epochs / 6 > 0 ? env.epochs / 6 : 2,
                                   env.epochs / 3 > 0 ? env.epochs / 3 : 3,
                                   2 * env.epochs / 3 > 0 ? 2 * env.epochs / 3
                                                          : 4,
                                   env.epochs + 1};

  metrics::Table table(
      {"reset period", "clean", "BIM(10)", "BIM(30)", "s/epoch"});
  for (std::size_t period : periods) {
    bench::MethodOverrides ov;
    ov.reset_period = period;
    metrics::CachedModel trained =
        bench::train_cached(env, data, dataset, "proposed", ov);
    attack::Bim bim10(eps, 10), bim30(eps, 30);
    const std::string label = period > env.epochs
                                  ? "never"
                                  : std::to_string(period) + " epochs";
    table.add_row(
        {label,
         metrics::percent(metrics::evaluate_clean(trained.model, data.test)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim10)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim30)),
         metrics::seconds(trained.report.mean_epoch_seconds())});
  }

  std::fputs(table.to_string().c_str(), stdout);
  table.write_csv("ablation_reset.csv");
  std::printf("(rows written to ablation_reset.csv)\n");
  return 0;
}
