// Ablation: the Proposed method's buffer reset period.
//
// The paper resets the epoch-wise iteration every 20 epochs "to catch up
// the long term changes in classifier's parameters" but does not ablate
// the choice. This bench sweeps the period: never resetting lets the
// buffered examples go stale against the drifting parameters; resetting
// every epoch degenerates to FGSM-Adv (the buffer never matures past one
// step). The useful defense lives in between.
//
// The body lives in experiments.cpp so the supervised bench_all
// orchestrator can run the same experiment as a resumable job.
#include "experiments.h"

using namespace satd;

int main() {
  bench::ExperimentContext ctx;
  ctx.env = metrics::ExperimentEnv::from_env();
  bench::run_ablation_reset(ctx);
  return 0;
}
