// Reproduces Figure 1 (a: digits / b: fashion): test accuracy of four
// classifiers — Vanilla, FGSM-Adv, BIM(10)-Adv, BIM(30)-Adv — against
// BIM examples with different numbers of iterations N, at fixed total
// perturbation (eps = 0.3 digits / 0.2 fashion) and eps_step = eps / N.
//
// Expected shape (paper, Section II): all curves converge quickly in N;
// Vanilla and FGSM-Adv collapse below 10% within a few iterations, the
// BIM-Adv classifiers stay high and flat — establishing empirical
// property P1 ("per-step perturbation below a limit stops helping").
//
// The body lives in experiments.cpp so the supervised bench_all
// orchestrator can run the same experiment as a resumable job.
#include "experiments.h"

using namespace satd;

int main() {
  bench::ExperimentContext ctx;
  ctx.env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Figure 1 — accuracy vs BIM iteration count (fixed eps)", ctx.env);
  bench::run_fig1_panel(ctx, "digits", "a");
  bench::run_fig1_panel(ctx, "fashion", "b");
  return 0;
}
