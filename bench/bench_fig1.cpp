// Reproduces Figure 1 (a: digits / b: fashion): test accuracy of four
// classifiers — Vanilla, FGSM-Adv, BIM(10)-Adv, BIM(30)-Adv — against
// BIM examples with different numbers of iterations N, at fixed total
// perturbation (eps = 0.3 digits / 0.2 fashion) and eps_step = eps / N.
//
// Expected shape (paper, Section II): all curves converge quickly in N;
// Vanilla and FGSM-Adv collapse below 10% within a few iterations, the
// BIM-Adv classifiers stay high and flat — establishing empirical
// property P1 ("per-step perturbation below a limit stops helping").
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "metrics/chart.h"
#include "metrics/evaluator.h"

using namespace satd;

namespace {

const std::vector<std::size_t> kIterationCounts{1, 2, 3, 4, 5, 7,
                                                10, 15, 20, 30};

void run_panel(const metrics::ExperimentEnv& env, const std::string& dataset,
               const char* panel) {
  std::printf("--- Figure 1%s: %s (eps=%.2f, eps_step = eps/N) ---\n", panel,
              dataset.c_str(), metrics::ExperimentEnv::eps_for(dataset));
  const data::DatasetPair data = bench::load_dataset(env, dataset);
  const float eps = metrics::ExperimentEnv::eps_for(dataset);

  const std::vector<std::pair<std::string, bench::MethodOverrides>> methods{
      {"vanilla", {}},
      {"fgsm_adv", {}},
      {"bim_adv", {.bim_iterations = 10}},
      {"bim_adv", {.bim_iterations = 30}},
  };

  metrics::Table table([&] {
    std::vector<std::string> header{"classifier"};
    for (std::size_t n : kIterationCounts) {
      header.push_back("N=" + std::to_string(n));
    }
    return header;
  }());

  metrics::AsciiChart chart(64, 14);
  {
    std::vector<std::string> x_labels;
    for (std::size_t n : kIterationCounts) {
      x_labels.push_back("N=" + std::to_string(n));
    }
    chart.set_x_labels(x_labels);
  }

  for (const auto& [method, ov] : methods) {
    metrics::CachedModel trained =
        bench::train_cached(env, data, dataset, method, ov);
    const auto curve = metrics::robust_curve(trained.model, data.test, eps,
                                             kIterationCounts);
    std::vector<std::string> row{trained.report.method};
    std::vector<float> ys;
    for (const auto& point : curve) {
      row.push_back(metrics::percent(point.accuracy));
      ys.push_back(point.accuracy);
    }
    table.add_row(std::move(row));
    chart.add_series(trained.report.method, ys);
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n%s\n", chart.to_string().c_str());
  const std::string csv = "fig1_" + dataset + ".csv";
  table.write_csv(csv);
  std::printf("(series written to %s)\n\n", csv.c_str());
}

}  // namespace

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Figure 1 — accuracy vs BIM iteration count (fixed eps)", env);
  run_panel(env, "digits", "a");
  run_panel(env, "fashion", "b");
  return 0;
}
