// Extension (paper's future work): do the Table-I defenses generalize to
// iterative attacks they were NOT trained against? Evaluates the same
// five trained classifiers under PGD (random-start BIM) and MI-FGSM
// (momentum BIM) at the same budgets. A defense that only memorized the
// BIM trajectory would collapse here; one that learned robust features
// should degrade gracefully.
#include <cstdio>
#include <vector>

#include "attack/mifgsm.h"
#include "attack/pgd.h"
#include "bench_util.h"
#include "metrics/evaluator.h"

using namespace satd;

namespace {

struct MethodRow {
  std::string method;
  bench::MethodOverrides ov;
};

const std::vector<MethodRow> kMethods{
    {"fgsm_adv", {}},
    {"atda", {}},
    {"proposed", {}},
    {"bim_adv", {.bim_iterations = 10}},
    {"bim_adv", {.bim_iterations = 30}},
};

void run_panel(const metrics::ExperimentEnv& env, const std::string& dataset) {
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  std::printf("--- %s (eps=%.2f, 10 iterations, step=eps/10) ---\n",
              dataset.c_str(), eps);
  const data::DatasetPair data = bench::load_dataset(env, dataset);

  metrics::Table table({"method", "PGD(10)", "MI-FGSM(10)"});
  for (const MethodRow& row : kMethods) {
    metrics::CachedModel trained =
        bench::train_cached(env, data, dataset, row.method, row.ov);
    Rng rng(env.seed);
    attack::Pgd pgd(eps, 10, eps / 10.0f, rng);
    attack::MiFgsm mi(eps, 10, eps / 10.0f);
    table.add_row(
        {trained.report.method,
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, pgd)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, mi))});
  }
  std::fputs(table.to_string().c_str(), stdout);
  const std::string csv = "extension_attacks_" + dataset + ".csv";
  table.write_csv(csv);
  std::printf("(rows written to %s)\n\n", csv.c_str());
}

}  // namespace

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Extension — robustness transfer to PGD and MI-FGSM", env);
  run_panel(env, "digits");
  run_panel(env, "fashion");
  return 0;
}
