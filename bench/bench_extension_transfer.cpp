// Extension: black-box transferability matrix among the Table-I
// defenses.
//
// Row = model the BIM(10) attack was crafted against (source); column =
// model evaluated on those examples (target). The diagonal is the usual
// white-box number. Two readouts matter: (1) robust models should stay
// accurate under attacks transferred from other models — otherwise their
// white-box robustness was gradient masking (Athalye et al. 2018); and
// (2) attacks transfer better between similarly-trained models.
#include <cstdio>
#include <vector>

#include "attack/bim.h"
#include "bench_util.h"
#include "metrics/transfer.h"

using namespace satd;

namespace {

struct MethodRow {
  std::string method;
  bench::MethodOverrides ov;
};

const std::vector<MethodRow> kMethods{
    {"vanilla", {}},
    {"fgsm_adv", {}},
    {"atda", {}},
    {"proposed", {}},
    {"bim_adv", {.bim_iterations = 10}},
};

}  // namespace

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Extension — BIM(10) transferability matrix (digits)", env);

  const std::string dataset = "digits";
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  const data::DatasetPair data = bench::load_dataset(env, dataset);

  std::vector<metrics::CachedModel> trained;
  trained.reserve(kMethods.size());
  std::vector<metrics::TransferModel> participants;
  for (const MethodRow& row : kMethods) {
    trained.push_back(
        bench::train_cached(env, data, dataset, row.method, row.ov));
    participants.push_back(
        {trained.back().report.method, &trained.back().model});
  }

  attack::Bim bim(eps, 10);
  const metrics::TransferMatrix matrix =
      metrics::transfer_matrix(participants, data.test, bim);
  std::printf("accuracy of TARGET (column) on BIM(10) examples crafted "
              "against SOURCE (row), eps=%.2f:\n\n%s\n",
              eps, matrix.to_string().c_str());

  metrics::Table csv([&] {
    std::vector<std::string> header{"source"};
    for (const auto& name : matrix.names) header.push_back(name);
    return header;
  }());
  for (std::size_t i = 0; i < matrix.names.size(); ++i) {
    std::vector<std::string> row{matrix.names[i]};
    for (float a : matrix.accuracy[i]) row.push_back(metrics::percent(a));
    csv.add_row(std::move(row));
  }
  csv.write_csv("extension_transfer.csv");
  std::printf("(matrix written to extension_transfer.csv)\n");
  return 0;
}
