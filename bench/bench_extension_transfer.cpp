// Extension: black-box transferability matrix among the Table-I
// defenses.
//
// Row = model the BIM(10) attack was crafted against (source); column =
// model evaluated on those examples (target). The diagonal is the usual
// white-box number. Two readouts matter: (1) robust models should stay
// accurate under attacks transferred from other models — otherwise their
// white-box robustness was gradient masking (Athalye et al. 2018); and
// (2) attacks transfer better between similarly-trained models.
//
// Thin wrapper: participant training and the crafting/evaluation loop
// live in bench::train_participants and gauntlet::cross_matrix — the
// same single transfer path the adaptive-attack gauntlet
// (bench_all --gauntlet) uses for its surrogate column, so this bench
// and the gauntlet can never disagree about how a transfer number is
// measured. The participant pool here is therefore the full
// core::known_methods() set, not just the paper's five.
#include <cstdio>
#include <vector>

#include "attack/bim.h"
#include "experiments.h"
#include "gauntlet/transfer.h"

using namespace satd;

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Extension — BIM(10) transferability matrix (digits)", env);

  const std::string dataset = "digits";
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  const data::DatasetPair data = bench::load_dataset(env, dataset);

  const bench::ExperimentContext ctx{env, {}, false};
  std::vector<metrics::CachedModel> trained =
      bench::train_participants(ctx, data, dataset);
  const auto& specs = bench::gauntlet_participants();
  std::vector<metrics::TransferModel> participants;
  participants.reserve(trained.size());
  for (std::size_t i = 0; i < trained.size(); ++i) {
    participants.push_back({specs[i].label, &trained[i].model});
  }

  attack::Bim bim(eps, 10);
  const metrics::TransferMatrix matrix =
      gauntlet::cross_matrix(participants, data.test, bim);
  std::printf("accuracy of TARGET (column) on BIM(10) examples crafted "
              "against SOURCE (row), eps=%.2f:\n\n%s\n",
              eps, matrix.to_string().c_str());

  metrics::Table csv([&] {
    std::vector<std::string> header{"source"};
    for (const auto& name : matrix.col_names) header.push_back(name);
    return header;
  }());
  for (std::size_t i = 0; i < matrix.names.size(); ++i) {
    std::vector<std::string> row{matrix.names[i]};
    for (float a : matrix.accuracy[i]) row.push_back(metrics::percent(a));
    csv.add_row(std::move(row));
  }
  csv.write_csv("extension_transfer.csv");
  std::printf("(matrix written to extension_transfer.csv)\n");
  return 0;
}
