#include "experiments.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "common/contract.h"
#include "common/durable_io.h"
#include "core/sentinel.h"
#include "metrics/chart.h"
#include "metrics/evaluator.h"

namespace satd::bench {

namespace {

/// Methods whose adversarial example is built in a single gradient step —
/// the ones the literature shows can collapse silently and that the
/// sentinel therefore watches. (Proposed is single-step per epoch; right
/// after a buffer reset it is exactly FGSM-Adv.)
bool is_single_step(const std::string& method) {
  return method == "fgsm_adv" || method == "proposed";
}

constexpr std::size_t kProbeSize = 64;

}  // namespace

metrics::CachedModel train_cached_ctx(const ExperimentContext& ctx,
                                      const data::DatasetPair& data,
                                      const std::string& dataset_name,
                                      const std::string& method,
                                      const MethodOverrides& ov) {
  const core::TrainConfig cfg = resolve_config(ctx.env, dataset_name, ov);
  const metrics::ModelKey key =
      make_model_key(ctx.env, cfg, dataset_name, method);
  return metrics::train_or_load(
      ctx.env.cache_dir, key, [&](nn::Sequential& model) {
        auto trainer = core::make_trainer(method, model, cfg);
        if (ctx.stop) trainer->set_stop_check(ctx.stop);
        // The sentinel probes a fixed held-out slice of the training set
        // (never the test set — training-time decisions must not touch
        // it). It consumes no trainer RNG, so a healthy run's parameters
        // are bit-identical with or without it.
        std::unique_ptr<core::RobustnessSentinel> sentinel;
        if (ctx.sentinel && is_single_step(method)) {
          core::SentinelConfig scfg;
          scfg.eps = cfg.eps;
          sentinel = std::make_unique<core::RobustnessSentinel>(
              data.train.slice(0, std::min(kProbeSize, data.train.size())),
              scfg);
          sentinel->attach(*trainer);
        }
        core::TrainReport report = trainer->fit(data.train);
        if (report.stopped_early) {
          throw ExperimentInterrupted(
              "training of " + method + " on " + dataset_name +
              " stopped at the epoch boundary (watchdog deadline)");
        }
        return report;
      });
}

// ---- Table I ----

namespace {

struct MethodRow {
  std::string method;
  MethodOverrides ov;
};

struct EvalResult {
  std::string name;
  float original = 0, fgsm = 0, bim10 = 0, bim30 = 0;
  double epoch_seconds = 0;
};

EvalResult evaluate_table1_row(const ExperimentContext& ctx,
                               const data::DatasetPair& data,
                               const std::string& dataset,
                               const MethodRow& row) {
  metrics::CachedModel trained =
      train_cached_ctx(ctx, data, dataset, row.method, row.ov);
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  EvalResult out;
  out.name = trained.report.method;
  out.epoch_seconds = trained.report.mean_epoch_seconds();
  out.original = metrics::evaluate_clean(trained.model, data.test);
  attack::Fgsm fgsm(eps);
  out.fgsm = metrics::evaluate_attack(trained.model, data.test, fgsm);
  attack::Bim bim10(eps, 10);
  out.bim10 = metrics::evaluate_attack(trained.model, data.test, bim10);
  attack::Bim bim30(eps, 30);
  out.bim30 = metrics::evaluate_attack(trained.model, data.test, bim30);
  return out;
}

}  // namespace

void run_table1(const ExperimentContext& ctx) {
  print_header("Table I — defensive power and training cost", ctx.env);

  const std::vector<MethodRow> methods{
      {"fgsm_adv", {}},
      {"atda", {}},
      {"proposed", {}},
      {"bim_adv", {.bim_iterations = 10}},
      {"bim_adv", {.bim_iterations = 30}},
  };

  const data::DatasetPair digits = load_dataset(ctx.env, "digits");
  const data::DatasetPair fashion = load_dataset(ctx.env, "fashion");

  metrics::Table table({"method", "dig:Original", "dig:FGSM", "dig:BIM(10)",
                        "dig:BIM(30)", "fash:Original", "fash:FGSM",
                        "fash:BIM(10)", "fash:BIM(30)", "s/epoch"});

  for (const MethodRow& row : methods) {
    const EvalResult d = evaluate_table1_row(ctx, digits, "digits", row);
    const EvalResult f = evaluate_table1_row(ctx, fashion, "fashion", row);
    table.add_row({d.name, metrics::percent(d.original),
                   metrics::percent(d.fgsm), metrics::percent(d.bim10),
                   metrics::percent(d.bim30), metrics::percent(f.original),
                   metrics::percent(f.fgsm), metrics::percent(f.bim10),
                   metrics::percent(f.bim30),
                   // The paper reports one per-epoch time; we average the
                   // two datasets' runs (identical workload shape).
                   metrics::seconds((d.epoch_seconds + f.epoch_seconds) / 2)});
  }

  std::fputs(table.to_string().c_str(), stdout);
  table.write_csv("table1.csv");
  std::printf("(rows written to table1.csv)\n");
}

// ---- Figures 1 and 2 ----

namespace {

const std::vector<std::pair<std::string, MethodOverrides>>&
figure_methods() {
  static const std::vector<std::pair<std::string, MethodOverrides>> methods{
      {"vanilla", {}},
      {"fgsm_adv", {}},
      {"bim_adv", {.bim_iterations = 10}},
      {"bim_adv", {.bim_iterations = 30}},
  };
  return methods;
}

}  // namespace

void run_fig1_panel(const ExperimentContext& ctx, const std::string& dataset,
                    const char* panel) {
  const std::vector<std::size_t> iteration_counts{1,  2,  3,  4,  5,
                                                  7,  10, 15, 20, 30};
  std::printf("--- Figure 1%s: %s (eps=%.2f, eps_step = eps/N) ---\n", panel,
              dataset.c_str(), metrics::ExperimentEnv::eps_for(dataset));
  const data::DatasetPair data = load_dataset(ctx.env, dataset);
  const float eps = metrics::ExperimentEnv::eps_for(dataset);

  metrics::Table table([&] {
    std::vector<std::string> header{"classifier"};
    for (std::size_t n : iteration_counts) {
      header.push_back("N=" + std::to_string(n));
    }
    return header;
  }());

  metrics::AsciiChart chart(64, 14);
  {
    std::vector<std::string> x_labels;
    for (std::size_t n : iteration_counts) {
      x_labels.push_back("N=" + std::to_string(n));
    }
    chart.set_x_labels(x_labels);
  }

  for (const auto& [method, ov] : figure_methods()) {
    metrics::CachedModel trained =
        train_cached_ctx(ctx, data, dataset, method, ov);
    const auto curve = metrics::robust_curve(trained.model, data.test, eps,
                                             iteration_counts);
    std::vector<std::string> row{trained.report.method};
    std::vector<float> ys;
    for (const auto& point : curve) {
      row.push_back(metrics::percent(point.accuracy));
      ys.push_back(point.accuracy);
    }
    table.add_row(std::move(row));
    chart.add_series(trained.report.method, ys);
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n%s\n", chart.to_string().c_str());
  const std::string csv = "fig1_" + dataset + ".csv";
  table.write_csv(csv);
  std::printf("(series written to %s)\n\n", csv.c_str());
}

void run_fig2_panel(const ExperimentContext& ctx, const std::string& dataset,
                    const char* panel) {
  constexpr std::size_t kTotalIterations = 10;
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  std::printf(
      "--- Figure 2%s: %s (BIM(%zu), eps=%.2f, accuracy after each "
      "iteration) ---\n",
      panel, dataset.c_str(), kTotalIterations, eps);
  const data::DatasetPair data = load_dataset(ctx.env, dataset);

  metrics::Table table([&] {
    std::vector<std::string> header{"classifier"};
    for (std::size_t i = 1; i <= kTotalIterations; ++i) {
      header.push_back("iter " + std::to_string(i));
    }
    return header;
  }());

  metrics::AsciiChart chart(60, 14);
  {
    std::vector<std::string> x_labels;
    for (std::size_t i = 1; i <= kTotalIterations; ++i) {
      x_labels.push_back("i=" + std::to_string(i));
    }
    chart.set_x_labels(x_labels);
  }

  for (const auto& [method, ov] : figure_methods()) {
    metrics::CachedModel trained =
        train_cached_ctx(ctx, data, dataset, method, ov);
    const auto curve = metrics::intermediate_curve(trained.model, data.test,
                                                   eps, kTotalIterations);
    std::vector<std::string> row{trained.report.method};
    std::vector<float> ys;
    for (const auto& point : curve) {
      row.push_back(metrics::percent(point.accuracy));
      ys.push_back(point.accuracy);
    }
    table.add_row(std::move(row));
    chart.add_series(trained.report.method, ys);
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n%s\n", chart.to_string().c_str());
  const std::string csv = "fig2_" + dataset + ".csv";
  table.write_csv(csv);
  std::printf("(series written to %s)\n\n", csv.c_str());
}

// ---- ablations ----

void run_ablation_reset(const ExperimentContext& ctx) {
  print_header("Ablation — Proposed method's buffer reset period", ctx.env);

  const std::string dataset = "digits";
  const metrics::ExperimentEnv& env = ctx.env;
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  const data::DatasetPair data = load_dataset(env, dataset);

  // "1" degenerates to single-step-from-clean; a period beyond the epoch
  // count means "never reset".
  std::vector<std::size_t> periods{1, env.epochs / 6 > 0 ? env.epochs / 6 : 2,
                                   env.epochs / 3 > 0 ? env.epochs / 3 : 3,
                                   2 * env.epochs / 3 > 0 ? 2 * env.epochs / 3
                                                          : 4,
                                   env.epochs + 1};

  metrics::Table table(
      {"reset period", "clean", "BIM(10)", "BIM(30)", "s/epoch"});
  for (std::size_t period : periods) {
    MethodOverrides ov;
    ov.reset_period = period;
    metrics::CachedModel trained =
        train_cached_ctx(ctx, data, dataset, "proposed", ov);
    attack::Bim bim10(eps, 10), bim30(eps, 30);
    const std::string label = period > env.epochs
                                  ? "never"
                                  : std::to_string(period) + " epochs";
    table.add_row(
        {label,
         metrics::percent(metrics::evaluate_clean(trained.model, data.test)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim10)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim30)),
         metrics::seconds(trained.report.mean_epoch_seconds())});
  }

  std::fputs(table.to_string().c_str(), stdout);
  table.write_csv("ablation_reset.csv");
  std::printf("(rows written to ablation_reset.csv)\n");
}

void run_ablation_step(const ExperimentContext& ctx) {
  print_header(
      "Ablation — Proposed method's per-epoch step size (fraction of eps)",
      ctx.env);

  const std::string dataset = "digits";
  const float eps = metrics::ExperimentEnv::eps_for(dataset);
  const data::DatasetPair data = load_dataset(ctx.env, dataset);

  const std::vector<float> fractions{0.5f, 0.25f, 0.1f, 0.05f, 0.025f};

  metrics::Table table(
      {"step (x eps)", "clean", "BIM(10)", "BIM(30)", "s/epoch"});
  for (float fraction : fractions) {
    MethodOverrides ov;
    ov.step_fraction = fraction;
    metrics::CachedModel trained =
        train_cached_ctx(ctx, data, dataset, "proposed", ov);
    attack::Bim bim10(eps, 10), bim30(eps, 30);
    char label[32];
    std::snprintf(label, sizeof label, "%.3f", fraction);
    table.add_row(
        {label,
         metrics::percent(metrics::evaluate_clean(trained.model, data.test)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim10)),
         metrics::percent(
             metrics::evaluate_attack(trained.model, data.test, bim30)),
         metrics::seconds(trained.report.mean_epoch_seconds())});
  }

  std::fputs(table.to_string().c_str(), stdout);
  table.write_csv("ablation_step.csv");
  std::printf("(rows written to ablation_step.csv)\n");
}

// ---- adaptive-attack gauntlet ----

namespace {

std::string gauntlet_row_csv(const std::string& label) {
  return "gauntlet_row_" + label + ".csv";
}

std::string gauntlet_train_job(const std::string& dataset,
                               const std::string& label) {
  return "train:" + dataset + ":" + label;
}

}  // namespace

const std::vector<ParticipantSpec>& gauntlet_participants() {
  static const std::vector<ParticipantSpec> specs = [] {
    std::vector<ParticipantSpec> out;
    // Row per factory method, labeled by its factory name — the matrix
    // is complete by construction: adding a trainer to known_methods()
    // grows the gauntlet without touching this file.
    for (const std::string& method : core::known_methods()) {
      out.push_back({method, method, {}});
    }
    return out;
  }();
  return specs;
}

gauntlet::GauntletConfig gauntlet_config(const std::string& dataset) {
  gauntlet::GauntletConfig cfg;
  cfg.eps = metrics::ExperimentEnv::eps_for(dataset);
  // Sweep relative to the training budget so the knee reads as "fraction
  // of the defended eps the model survives": 1/4, 1/2, 3/4, 1x, 1.5x.
  cfg.eps_sweep = {0.25f * cfg.eps, 0.5f * cfg.eps, 0.75f * cfg.eps,
                   cfg.eps, 1.5f * cfg.eps};
  return cfg;
}

std::vector<metrics::CachedModel> train_participants(
    const ExperimentContext& ctx, const data::DatasetPair& data,
    const std::string& dataset) {
  const auto& specs = gauntlet_participants();
  std::vector<metrics::CachedModel> trained;
  trained.reserve(specs.size());
  for (const ParticipantSpec& spec : specs) {
    trained.push_back(
        train_cached_ctx(ctx, data, dataset, spec.method, spec.ov));
  }
  return trained;
}

void run_gauntlet_row(const ExperimentContext& ctx,
                      const std::string& dataset, const std::string& label) {
  const data::DatasetPair data = load_dataset(ctx.env, dataset);
  // Every participant is needed — the defenses other than `label` are
  // this row's transfer surrogates. After the upstream training jobs ran
  // these are all cache hits, so a row job is evaluation-only.
  std::vector<metrics::CachedModel> trained =
      train_participants(ctx, data, dataset);
  const auto& specs = gauntlet_participants();
  // Pointers only after `trained` is fully built (no reallocation).
  std::vector<metrics::TransferModel> pool;
  pool.reserve(trained.size());
  const metrics::TransferModel* defense = nullptr;
  for (std::size_t i = 0; i < trained.size(); ++i) {
    pool.push_back({specs[i].label, &trained[i].model});
    if (specs[i].label == label) defense = &pool.back();
  }
  if (defense == nullptr) {
    throw std::invalid_argument("unknown gauntlet participant: " + label);
  }

  const gauntlet::GauntletRunner runner(gauntlet_config(dataset));
  const gauntlet::GauntletRow row = runner.run_row(*defense, pool, data.test);

  const std::string path = gauntlet_row_csv(label);
  durable::atomic_write_file(
      path, runner.csv_header() + "\n" + runner.csv_row(row) + "\n");
  std::printf("gauntlet row %-14s -> %s\n", label.c_str(), path.c_str());
}

void run_gauntlet_merge(const ExperimentContext& ctx,
                        const std::string& dataset) {
  const gauntlet::GauntletRunner runner(gauntlet_config(dataset));
  const std::string header = runner.csv_header();

  std::string matrix = header + "\n";
  std::vector<JsonResult> json_rows;
  for (const ParticipantSpec& spec : gauntlet_participants()) {
    const std::string path = gauntlet_row_csv(spec.label);
    std::ifstream is(path);
    if (!is) {
      throw std::runtime_error("gauntlet merge: missing row file " + path);
    }
    std::string row_header, row_line;
    std::getline(is, row_header);
    std::getline(is, row_line);
    SATD_EXPECT(row_header == header,
                "gauntlet row " + path + " has a stale column layout");
    SATD_EXPECT(!row_line.empty(), "gauntlet row " + path + " is empty");
    // Verbatim byte concatenation: the merged matrix is bit-identical
    // whenever the row files are, which is what the kill-9 drill checks.
    matrix += row_line + "\n";

    JsonResult jr;
    std::stringstream cells(row_line);
    std::string cell;
    std::getline(cells, cell, ',');
    jr.name = cell;
    for (std::size_t c = 0; std::getline(cells, cell, ','); ++c) {
      SATD_EXPECT(c < runner.columns().size(),
                  "gauntlet row " + path + " has extra cells");
      jr.numbers.emplace_back(runner.columns()[c], std::stod(cell));
    }
    SATD_EXPECT(jr.numbers.size() == runner.columns().size(),
                "gauntlet row " + path + " is missing cells");
    json_rows.push_back(std::move(jr));
  }

  durable::atomic_write_file("gauntlet_matrix.csv", matrix);
  std::printf("gauntlet matrix: %zu defenses x %zu attacks -> "
              "gauntlet_matrix.csv\n",
              json_rows.size(), runner.columns().size());
  (void)ctx;
  write_bench_json("BENCH_gauntlet.json", "gauntlet", 0, json_rows);
}

std::vector<ExperimentJob> build_gauntlet_jobs(
    const metrics::ExperimentEnv& env, const std::string& dataset,
    double deadline, std::size_t max_attempts) {
  std::vector<ExperimentJob> jobs;
  auto add_job = [&](std::string name,
                     std::function<void(const ExperimentContext&)> body,
                     std::vector<std::string> deps,
                     std::vector<std::string> outputs) {
    ExperimentJob entry;
    entry.job.name = std::move(name);
    entry.job.deps = std::move(deps);
    entry.job.outputs = std::move(outputs);
    entry.job.deadline_seconds = deadline;
    entry.job.max_attempts = max_attempts;
    entry.body = std::move(body);
    jobs.push_back(std::move(entry));
  };

  const auto& specs = gauntlet_participants();

  // Training jobs: one per participant, output = its model-cache entry.
  std::vector<std::string> train_jobs;
  for (const ParticipantSpec& spec : specs) {
    const core::TrainConfig cfg = resolve_config(env, dataset, spec.ov);
    const std::string stem =
        env.cache_dir + "/" +
        make_model_key(env, cfg, dataset, spec.method).stem();
    train_jobs.push_back(gauntlet_train_job(dataset, spec.label));
    add_job(
        train_jobs.back(),
        [dataset, spec](const ExperimentContext& ctx) {
          const data::DatasetPair data = load_dataset(ctx.env, dataset);
          train_cached_ctx(ctx, data, dataset, spec.method, spec.ov);
        },
        {}, {stem + ".model", stem + ".report"});
  }

  // Row jobs: every row needs the FULL pool (its transfer surrogates are
  // the other defenses), so each depends on all training jobs.
  std::vector<std::string> row_jobs;
  for (const ParticipantSpec& spec : specs) {
    row_jobs.push_back("gauntlet:row:" + spec.label);
    add_job(
        row_jobs.back(),
        [dataset, label = spec.label](const ExperimentContext& ctx) {
          run_gauntlet_row(ctx, dataset, label);
        },
        train_jobs, {gauntlet_row_csv(spec.label)});
  }

  add_job(
      "gauntlet:matrix",
      [dataset](const ExperimentContext& ctx) {
        run_gauntlet_merge(ctx, dataset);
      },
      std::move(row_jobs), {"gauntlet_matrix.csv", "BENCH_gauntlet.json"});

  return jobs;
}

}  // namespace satd::bench
