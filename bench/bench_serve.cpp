// Serving bench: throughput/latency of the micro-batching inference
// server (src/serve) under closed- and open-loop load, static vs
// SLO-aware adaptive batching.
//
// Experiment families, all against a deterministically initialized
// cnn_small (serving cost does not depend on trained weights, so no
// training is needed and the bench starts instantly):
//
//   closed_w{W}_b{B}   — closed loop: 2*W client threads submit-and-wait
//     in lockstep over W workers with the STATIC (max_batch, max_wait)
//     window. Measures steady-state throughput, latency percentiles,
//     jitter (mean/stddev) and achieved batch coalescing.
//   adaptive_w{W}_b8   — the same closed-loop load under the ADAPTIVE
//     window (arrival-rate + service-time estimators close the window
//     early when waiting cannot raise goodput). The headline comparison:
//     the static b8 rows wait out max_wait for clients that are blocked
//     on the batch in flight and invert the throughput ordering; the
//     adaptive rows must restore adaptive_b8 >= closed_b1.
//   open_w{W}_b8_*     — open loop: a FIXED, SEEDED arrival schedule
//     (exponential inter-arrival gaps at --open-loop-rps) is drawn up
//     front and replayed fire-and-forget, so static and adaptive points
//     face byte-identical offered load and latency includes queueing
//     delay, not client back-pressure.
//   deadline           — a per-request timeout shorter than the expected
//     window + service horizon: the feasibility gate rejects every
//     request AT ADMISSION (rejected_infeasible) instead of admitting
//     work that can only expire (the pre-horizon behavior counted these
//     as deadline misses after queueing).
//   overload           — fires far beyond queue capacity with no
//     consumers keeping up: typed backpressure (queue_full rejects)
//     instead of unbounded queueing.
//
// Arrivals and image selection are seeded-Rng deterministic; timing (and
// therefore the numbers, not the workload) is the only nondeterminism.
// --emit-json writes BENCH_serve.json in the same satd-bench-1 schema as
// bench_micro (baseline committed under bench/baseline/).
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "serve/server.h"

using namespace satd;

namespace {

/// The images the load generator draws from (deterministic).
Tensor make_pool(std::size_t n) {
  data::SyntheticConfig cfg;
  cfg.train_size = n;
  cfg.test_size = 1;
  return data::make_synthetic_digits(cfg).train.images;
}

struct PointConfig {
  std::size_t workers = 1;
  std::size_t max_batch = 8;
  double max_wait = 0.001;
  std::size_t requests = 256;
  std::size_t clients = 2;
  std::size_t queue_capacity = 1024;
  double timeout = 0.0;  ///< per-request relative deadline (0 = none)
  bool quantized = false;  ///< serve through the int8 snapshot
  bool adaptive = false;   ///< SLO-aware adaptive window policy
};

serve::ServerConfig make_config(const PointConfig& pc) {
  serve::ServerConfig cfg;
  cfg.model_name = "bench";
  cfg.workers = pc.workers;
  cfg.queue.capacity = pc.queue_capacity;
  cfg.batch.max_batch = pc.max_batch;
  cfg.batch.max_wait = pc.max_wait;
  cfg.batch.quantized = pc.quantized;
  cfg.batch.adaptive = pc.adaptive;
  return cfg;
}

/// Closed-loop point: each client thread submits one request, waits for
/// the response, repeats. Returns the stats snapshot plus wall seconds.
std::pair<serve::StatsSnapshot, double> run_closed(
    serve::ModelRegistry& registry, const Tensor& pool,
    const PointConfig& pc) {
  serve::Server server(registry, make_config(pc));
  server.start();

  const std::size_t pool_size = pool.shape()[0];
  std::atomic<std::size_t> next{0};
  const double t0 = SystemClock::instance().now();
  std::vector<std::thread> clients;
  clients.reserve(pc.clients);
  for (std::size_t c = 0; c < pc.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= pc.requests) return;
        const Tensor image = pool.slice_row(rng.uniform_index(pool_size));
        server.submit(image, pc.timeout).wait();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = SystemClock::instance().now() - t0;
  server.drain();
  return {server.stats().snapshot(), elapsed};
}

/// Open-loop point: the whole arrival schedule (exponential gaps at
/// `rps`) and image sequence are drawn from a seeded Rng BEFORE the
/// server starts, then replayed fire-and-forget against the wall clock.
/// Static and adaptive policies therefore face an identical offered
/// load, and latency measures queueing + service, not client lockstep.
std::pair<serve::StatsSnapshot, double> run_open(
    serve::ModelRegistry& registry, const Tensor& pool,
    const PointConfig& pc, double rps, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> arrival(pc.requests);
  std::vector<std::size_t> which(pc.requests);
  double t = 0.0;
  for (std::size_t i = 0; i < pc.requests; ++i) {
    t += -std::log(1.0 - rng.uniform()) / rps;  // exponential gap
    arrival[i] = t;
    which[i] = rng.uniform_index(pool.shape()[0]);
  }

  serve::Server server(registry, make_config(pc));
  server.start();

  std::vector<serve::Ticket> tickets;
  tickets.reserve(pc.requests);
  SystemClock& clock = SystemClock::instance();
  const double t0 = clock.now();
  for (std::size_t i = 0; i < pc.requests; ++i) {
    const double target = t0 + arrival[i];
    const double now = clock.now();
    if (target > now) clock.sleep_for(target - now);
    tickets.push_back(server.submit(pool.slice_row(which[i]), pc.timeout));
  }
  for (serve::Ticket& tk : tickets) tk.wait();
  const double elapsed = clock.now() - t0;
  server.drain();
  return {server.stats().snapshot(), elapsed};
}

void add_row(std::vector<bench::JsonResult>& rows, const std::string& name,
             const PointConfig& pc,
             const std::pair<serve::StatsSnapshot, double>& r,
             double offered_rps = 0.0) {
  const auto& [s, elapsed] = r;
  bench::JsonResult row;
  row.name = name;
  row.numbers = {
      {"workers", static_cast<double>(pc.workers)},
      {"max_batch", static_cast<double>(pc.max_batch)},
      {"adaptive", pc.adaptive ? 1.0 : 0.0},
      {"requests", static_cast<double>(pc.requests)},
      {"served", static_cast<double>(s.served)},
      {"throughput_rps", elapsed > 0 ? s.served / elapsed : 0.0},
      {"mean_batch", s.mean_batch},
      {"p50_ms", s.p50 * 1e3},
      {"p95_ms", s.p95 * 1e3},
      {"p99_ms", s.p99 * 1e3},
      {"mean_ms", s.mean * 1e3},
      {"stddev_ms", s.stddev * 1e3},
      {"deadline_misses", static_cast<double>(s.deadline_misses)},
      {"rejected_infeasible", static_cast<double>(s.rejected_infeasible)},
  };
  if (offered_rps > 0.0) {
    row.numbers.push_back({"offered_rps", offered_rps});
    row.numbers.push_back(
        {"rejected_full", static_cast<double>(s.rejected_full)});
  }
  rows.push_back(std::move(row));
  std::printf("%-22s %6zu served  %8.0f req/s  p50 %.3f ms  p99 %.3f ms  "
              "mean %.3f±%.3f ms  batch %.2f\n",
              name.c_str(), s.served, elapsed > 0 ? s.served / elapsed : 0.0,
              s.p50 * 1e3, s.p99 * 1e3, s.mean * 1e3, s.stddev * 1e3,
              s.mean_batch);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_serve",
                "Micro-batching inference server load bench (closed-loop "
                "static vs adaptive sweep, seeded open-loop schedule, "
                "overload, deadline pressure).");
  cli.add_int("requests", 256, "requests per closed-loop point");
  cli.add_string("model", "cnn_small", "zoo spec to serve");
  cli.add_double("open-loop-rps", 2000.0,
                 "offered arrival rate for the open-loop points");
  cli.add_int("open-loop-seed", 7,
              "seed of the fixed open-loop arrival schedule");
  add_threads_option(cli);
  add_kernel_option(cli);
  cli.add_string("emit-json", "",
                 "write BENCH_serve.json (satd-bench-1 schema) into this "
                 "directory");
  if (!cli.parse(argc, argv)) return 0;
  apply_threads_option(cli);
  apply_kernel_option(cli);

  const auto requests = static_cast<std::size_t>(cli.get_int("requests"));
  const std::string spec = cli.get_string("model");
  const double open_rps = cli.get_double("open-loop-rps");
  const auto open_seed =
      static_cast<std::uint64_t>(cli.get_int("open-loop-seed"));

  serve::ModelRegistry registry;
  {
    Rng rng(42);
    nn::Sequential model = nn::zoo::build(spec, rng);
    registry.publish("bench", model, spec);
  }
  const Tensor pool = make_pool(128);
  std::printf("bench_serve: %s, %zu requests per point, %zu hw threads\n\n",
              spec.c_str(), requests,
              static_cast<std::size_t>(std::thread::hardware_concurrency()));

  std::vector<bench::JsonResult> rows;

  // Closed-loop sweep: worker count x static batching policy.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (std::size_t max_batch : {std::size_t{1}, std::size_t{8}}) {
      PointConfig pc;
      pc.workers = workers;
      pc.max_batch = max_batch;
      pc.requests = requests;
      pc.clients = 2 * workers;
      const auto r = run_closed(registry, pool, pc);
      add_row(rows,
              "closed_w" + std::to_string(workers) + "_b" +
                  std::to_string(max_batch),
              pc, r);
    }
  }

  // Adaptive twins of the static b8 rows: the window closes as soon as
  // the arrival estimator stops promising a neighbour, so the blocked
  // closed-loop clients are served immediately instead of waiting out
  // max_wait — the inversion (static b8 far below b1) must disappear.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    PointConfig pc;
    pc.workers = workers;
    pc.max_batch = 8;
    pc.requests = requests;
    pc.clients = 2 * workers;
    pc.adaptive = true;
    const auto r = run_closed(registry, pool, pc);
    add_row(rows, "adaptive_w" + std::to_string(workers) + "_b8", pc, r);
  }

  // Open-loop schedule replay: identical offered load for static vs
  // adaptive at each worker count.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    for (bool adaptive : {false, true}) {
      PointConfig pc;
      pc.workers = workers;
      pc.max_batch = 8;
      pc.requests = requests;
      pc.adaptive = adaptive;
      const auto r = run_open(registry, pool, pc, open_rps, open_seed);
      add_row(rows,
              "open_w" + std::to_string(workers) + "_b8" +
                  (adaptive ? "_adaptive" : "_static"),
              pc, r, open_rps);
    }
  }

  // Quantized closed-loop points: same policy as the float w{1,2}_b8
  // rows above, but served through the int8 snapshot (per-row dynamic
  // activation quantization, int32-accumulate GEMM). The interesting
  // comparison is throughput_rps and p50 against the float twin.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    PointConfig pc;
    pc.workers = workers;
    pc.max_batch = 8;
    pc.requests = requests;
    pc.clients = 2 * workers;
    pc.quantized = true;
    const auto r = run_closed(registry, pool, pc);
    add_row(rows, "quantized_w" + std::to_string(workers) + "_b8", pc, r);
  }

  // Deadline pressure: the expected window (max_wait, far longer than
  // the timeout) makes every request infeasible at admission — the
  // feasibility horizon rejects them typed instead of letting them age
  // in the queue and expire as deadline misses.
  {
    PointConfig pc;
    pc.workers = 1;
    pc.max_batch = 16;
    pc.max_wait = 0.004;
    pc.requests = requests;
    pc.clients = 4;
    pc.timeout = 0.002;
    const auto r = run_closed(registry, pool, pc);
    add_row(rows, "deadline", pc, r);
  }

  // Open-loop overload: typed backpressure instead of unbounded queueing.
  {
    PointConfig pc;
    pc.workers = 1;
    pc.max_batch = 8;
    pc.max_wait = 0.0005;
    pc.queue_capacity = 32;
    pc.requests = 4 * requests;
    serve::Server server(registry, make_config(pc));
    server.start();
    Rng rng(7);
    std::vector<serve::Ticket> tickets;
    tickets.reserve(pc.requests);
    for (std::size_t i = 0; i < pc.requests; ++i) {
      const Tensor image = pool.slice_row(rng.uniform_index(pool.shape()[0]));
      tickets.push_back(server.submit(image));
    }
    for (serve::Ticket& t : tickets) t.wait();
    server.drain();
    const serve::StatsSnapshot s = server.stats().snapshot();
    bench::JsonResult row;
    row.name = "overload";
    row.numbers = {
        {"submitted", static_cast<double>(pc.requests)},
        {"served", static_cast<double>(s.served)},
        {"rejected_full", static_cast<double>(s.rejected_full)},
        {"deadline_misses", static_cast<double>(s.deadline_misses)},
        {"max_queue_depth", static_cast<double>(s.max_queue_depth)},
        {"mean_batch", s.mean_batch},
    };
    std::printf("%-22s %6zu served  %zu rejected_full  depth<=%zu\n",
                "overload", s.served, s.rejected_full, s.max_queue_depth);
    rows.push_back(std::move(row));
  }

  if (const std::string dir = cli.get_string("emit-json"); !dir.empty()) {
    bench::write_bench_json(dir + "/BENCH_serve.json", "serve", 0, rows);
  }
  return 0;
}
