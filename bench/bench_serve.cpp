// Serving bench: throughput/latency of the micro-batching inference
// server (src/serve) under closed- and open-loop load.
//
// Three experiment families, all against a deterministically initialized
// cnn_small (serving cost does not depend on trained weights, so no
// training is needed and the bench starts instantly):
//
//   closed_w{W}_b{B} — closed loop: 2*W client threads submit-and-wait in
//     lockstep over W workers with max_batch B. Measures steady-state
//     throughput, latency percentiles and achieved batch coalescing.
//   overload         — open loop: fires every request instantly at a
//     small queue with no consumers keeping up, demonstrating typed
//     backpressure (queue_full rejects) instead of unbounded queueing.
//   deadline         — closed loop with a tight per-request timeout and a
//     deliberately slow batching window, demonstrating deadline-miss
//     accounting.
//
// Arrivals and image selection are seeded-Rng deterministic; timing (and
// therefore the numbers, not the workload) is the only nondeterminism.
// --emit-json writes BENCH_serve.json in the same satd-bench-1 schema as
// bench_micro (baseline committed under bench/baseline/).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "serve/server.h"

using namespace satd;

namespace {

/// The images the load generator draws from (deterministic).
Tensor make_pool(std::size_t n) {
  data::SyntheticConfig cfg;
  cfg.train_size = n;
  cfg.test_size = 1;
  return data::make_synthetic_digits(cfg).train.images;
}

struct PointConfig {
  std::size_t workers = 1;
  std::size_t max_batch = 8;
  double max_wait = 0.001;
  std::size_t requests = 256;
  std::size_t clients = 2;
  std::size_t queue_capacity = 1024;
  double timeout = 0.0;  ///< per-request relative deadline (0 = none)
  bool quantized = false;  ///< serve through the int8 snapshot
};

/// Closed-loop point: each client thread submits one request, waits for
/// the response, repeats. Returns the stats snapshot plus wall seconds.
std::pair<serve::StatsSnapshot, double> run_closed(
    serve::ModelRegistry& registry, const Tensor& pool,
    const PointConfig& pc) {
  serve::ServerConfig cfg;
  cfg.model_name = "bench";
  cfg.workers = pc.workers;
  cfg.queue.capacity = pc.queue_capacity;
  cfg.batch.max_batch = pc.max_batch;
  cfg.batch.max_wait = pc.max_wait;
  cfg.batch.quantized = pc.quantized;
  serve::Server server(registry, cfg);
  server.start();

  const std::size_t pool_size = pool.shape()[0];
  std::atomic<std::size_t> next{0};
  const double t0 = SystemClock::instance().now();
  std::vector<std::thread> clients;
  clients.reserve(pc.clients);
  for (std::size_t c = 0; c < pc.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= pc.requests) return;
        const Tensor image = pool.slice_row(rng.uniform_index(pool_size));
        server.submit(image, pc.timeout).wait();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = SystemClock::instance().now() - t0;
  server.drain();
  return {server.stats().snapshot(), elapsed};
}

/// Open-loop overload point: fire-and-forget submission far beyond queue
/// capacity, then collect every ticket. Demonstrates typed rejection.
serve::StatsSnapshot run_overload(serve::ModelRegistry& registry,
                                  const Tensor& pool, std::size_t requests) {
  serve::ServerConfig cfg;
  cfg.model_name = "bench";
  cfg.workers = 1;
  cfg.queue.capacity = 32;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait = 0.0005;
  serve::Server server(registry, cfg);
  server.start();

  Rng rng(7);
  const std::size_t pool_size = pool.shape()[0];
  std::vector<serve::Ticket> tickets;
  tickets.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const Tensor image = pool.slice_row(rng.uniform_index(pool_size));
    tickets.push_back(server.submit(image));
  }
  for (serve::Ticket& t : tickets) t.wait();
  server.drain();
  return server.stats().snapshot();
}

void add_closed_row(std::vector<bench::JsonResult>& rows,
                    const std::string& name,
                    const PointConfig& pc,
                    const std::pair<serve::StatsSnapshot, double>& r) {
  const auto& [s, elapsed] = r;
  bench::JsonResult row;
  row.name = name;
  row.numbers = {
      {"workers", static_cast<double>(pc.workers)},
      {"max_batch", static_cast<double>(pc.max_batch)},
      {"requests", static_cast<double>(pc.requests)},
      {"served", static_cast<double>(s.served)},
      {"throughput_rps", elapsed > 0 ? s.served / elapsed : 0.0},
      {"mean_batch", s.mean_batch},
      {"p50_ms", s.p50 * 1e3},
      {"p95_ms", s.p95 * 1e3},
      {"p99_ms", s.p99 * 1e3},
      {"deadline_misses", static_cast<double>(s.deadline_misses)},
      {"rejected_infeasible", static_cast<double>(s.rejected_infeasible)},
  };
  rows.push_back(std::move(row));
  std::printf("%-16s %6zu served  %8.0f req/s  p50 %.3f ms  p99 %.3f ms  "
              "mean batch %.2f\n",
              name.c_str(), s.served, elapsed > 0 ? s.served / elapsed : 0.0,
              s.p50 * 1e3, s.p99 * 1e3, s.mean_batch);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_serve",
                "Micro-batching inference server load bench (closed-loop "
                "sweep, open-loop overload, deadline pressure).");
  cli.add_int("requests", 256, "requests per closed-loop point");
  cli.add_string("model", "cnn_small", "zoo spec to serve");
  add_threads_option(cli);
  add_kernel_option(cli);
  cli.add_string("emit-json", "",
                 "write BENCH_serve.json (satd-bench-1 schema) into this "
                 "directory");
  if (!cli.parse(argc, argv)) return 0;
  apply_threads_option(cli);
  apply_kernel_option(cli);

  const auto requests = static_cast<std::size_t>(cli.get_int("requests"));
  const std::string spec = cli.get_string("model");

  serve::ModelRegistry registry;
  {
    Rng rng(42);
    nn::Sequential model = nn::zoo::build(spec, rng);
    registry.publish("bench", model, spec);
  }
  const Tensor pool = make_pool(128);
  std::printf("bench_serve: %s, %zu requests per point, %zu hw threads\n\n",
              spec.c_str(), requests,
              static_cast<std::size_t>(std::thread::hardware_concurrency()));

  std::vector<bench::JsonResult> rows;

  // Closed-loop sweep: worker count x batching policy.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (std::size_t max_batch : {std::size_t{1}, std::size_t{8}}) {
      PointConfig pc;
      pc.workers = workers;
      pc.max_batch = max_batch;
      pc.requests = requests;
      pc.clients = 2 * workers;
      const auto r = run_closed(registry, pool, pc);
      add_closed_row(rows,
                     "closed_w" + std::to_string(workers) + "_b" +
                         std::to_string(max_batch),
                     pc, r);
    }
  }

  // Quantized closed-loop points: same policy as the float w{1,2}_b8
  // rows above, but served through the int8 snapshot (per-row dynamic
  // activation quantization, int32-accumulate GEMM). The interesting
  // comparison is throughput_rps and p50 against the float twin.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    PointConfig pc;
    pc.workers = workers;
    pc.max_batch = 8;
    pc.requests = requests;
    pc.clients = 2 * workers;
    pc.quantized = true;
    const auto r = run_closed(registry, pool, pc);
    add_closed_row(rows, "quantized_w" + std::to_string(workers) + "_b8", pc,
                   r);
  }

  // Deadline pressure: the batch can never fill (more slots than
  // clients), so the window holds its full max_wait — longer than the
  // per-request timeout — and admitted requests expire before serving.
  {
    PointConfig pc;
    pc.workers = 1;
    pc.max_batch = 16;
    pc.max_wait = 0.004;
    pc.requests = requests;
    pc.clients = 4;
    pc.timeout = 0.002;
    const auto r = run_closed(registry, pool, pc);
    add_closed_row(rows, "deadline", pc, r);
  }

  // Open-loop overload: typed backpressure instead of unbounded queueing.
  {
    const serve::StatsSnapshot s = run_overload(registry, pool, 4 * requests);
    bench::JsonResult row;
    row.name = "overload";
    row.numbers = {
        {"submitted", static_cast<double>(4 * requests)},
        {"served", static_cast<double>(s.served)},
        {"rejected_full", static_cast<double>(s.rejected_full)},
        {"deadline_misses", static_cast<double>(s.deadline_misses)},
        {"max_queue_depth", static_cast<double>(s.max_queue_depth)},
        {"mean_batch", s.mean_batch},
    };
    std::printf("%-16s %6zu served  %zu rejected_full  depth<=%zu\n",
                "overload", s.served, s.rejected_full, s.max_queue_depth);
    rows.push_back(std::move(row));
  }

  if (const std::string dir = cli.get_string("emit-json"); !dir.empty()) {
    bench::write_bench_json(dir + "/BENCH_serve.json", "serve", 0, rows);
  }
  return 0;
}
