// Serving bench: throughput/latency of the micro-batching inference
// server (src/serve) under closed- and open-loop load, static vs
// SLO-aware adaptive batching.
//
// Experiment families, all against a deterministically initialized
// cnn_small (serving cost does not depend on trained weights, so no
// training is needed and the bench starts instantly):
//
//   closed_w{W}_b{B}   — closed loop: 2*W client threads submit-and-wait
//     in lockstep over W workers with the STATIC (max_batch, max_wait)
//     window. Measures steady-state throughput, latency percentiles,
//     jitter (mean/stddev) and achieved batch coalescing.
//   adaptive_w{W}_b8   — the same closed-loop load under the ADAPTIVE
//     window (arrival-rate + service-time estimators close the window
//     early when waiting cannot raise goodput). The headline comparison:
//     the static b8 rows wait out max_wait for clients that are blocked
//     on the batch in flight and invert the throughput ordering; the
//     adaptive rows must restore adaptive_b8 >= closed_b1.
//   open_w{W}_b8_*     — open loop: a FIXED, SEEDED arrival schedule
//     (exponential inter-arrival gaps at --open-loop-rps) is drawn up
//     front and replayed fire-and-forget, so static and adaptive points
//     face byte-identical offered load and latency includes queueing
//     delay, not client back-pressure.
//   deadline           — a per-request timeout shorter than the expected
//     window + service horizon: the feasibility gate rejects every
//     request AT ADMISSION (rejected_infeasible) instead of admitting
//     work that can only expire (the pre-horizon behavior counted these
//     as deadline misses after queueing).
//   overload           — fires far beyond queue capacity with no
//     consumers keeping up: typed backpressure (queue_full rejects)
//     instead of unbounded queueing.
//
// Arrivals and image selection are seeded-Rng deterministic; timing (and
// therefore the numbers, not the workload) is the only nondeterminism.
// --emit-json writes BENCH_serve.json in the same satd-bench-1 schema as
// bench_micro (baseline committed under bench/baseline/).
//
// --socket adds the multi-process points: the parent runs a 2-shard
// ShardRouter behind the SATDWIRE1 socket front end on a unix socket
// and forks P copies of THIS binary (via the runtime::ForkExecRunner
// process layer) as client processes. Each child drives the socket with
// net::Client — closed loop (submit-and-wait) or an open-loop seeded
// schedule with coordinated-omission-free latency (measured from the
// scheduled arrival, not the send) — and writes its per-request
// latencies to a file the parent merges into cross-process percentiles.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "net/client.h"
#include "net/frontend.h"
#include "nn/zoo.h"
#include "runtime/process.h"
#include "serve/server.h"
#include "serve/shard_router.h"

using namespace satd;

namespace {

/// The images the load generator draws from (deterministic).
Tensor make_pool(std::size_t n) {
  data::SyntheticConfig cfg;
  cfg.train_size = n;
  cfg.test_size = 1;
  return data::make_synthetic_digits(cfg).train.images;
}

struct PointConfig {
  std::size_t workers = 1;
  std::size_t max_batch = 8;
  double max_wait = 0.001;
  std::size_t requests = 256;
  std::size_t clients = 2;
  std::size_t queue_capacity = 1024;
  double timeout = 0.0;  ///< per-request relative deadline (0 = none)
  bool quantized = false;  ///< serve through the int8 snapshot
  bool adaptive = false;   ///< SLO-aware adaptive window policy
};

serve::ServerConfig make_config(const PointConfig& pc) {
  serve::ServerConfig cfg;
  cfg.model_name = "bench";
  cfg.workers = pc.workers;
  cfg.queue.capacity = pc.queue_capacity;
  cfg.batch.max_batch = pc.max_batch;
  cfg.batch.max_wait = pc.max_wait;
  cfg.batch.quantized = pc.quantized;
  cfg.batch.adaptive = pc.adaptive;
  return cfg;
}

/// Closed-loop point: each client thread submits one request, waits for
/// the response, repeats. Returns the stats snapshot plus wall seconds.
std::pair<serve::StatsSnapshot, double> run_closed(
    serve::ModelRegistry& registry, const Tensor& pool,
    const PointConfig& pc) {
  serve::Server server(registry, make_config(pc));
  server.start();

  const std::size_t pool_size = pool.shape()[0];
  std::atomic<std::size_t> next{0};
  const double t0 = SystemClock::instance().now();
  std::vector<std::thread> clients;
  clients.reserve(pc.clients);
  for (std::size_t c = 0; c < pc.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= pc.requests) return;
        const Tensor image = pool.slice_row(rng.uniform_index(pool_size));
        server.submit(image, pc.timeout).wait();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = SystemClock::instance().now() - t0;
  server.drain();
  return {server.stats().snapshot(), elapsed};
}

/// Open-loop point: the whole arrival schedule (exponential gaps at
/// `rps`) and image sequence are drawn from a seeded Rng BEFORE the
/// server starts, then replayed fire-and-forget against the wall clock.
/// Static and adaptive policies therefore face an identical offered
/// load, and latency measures queueing + service, not client lockstep.
std::pair<serve::StatsSnapshot, double> run_open(
    serve::ModelRegistry& registry, const Tensor& pool,
    const PointConfig& pc, double rps, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> arrival(pc.requests);
  std::vector<std::size_t> which(pc.requests);
  double t = 0.0;
  for (std::size_t i = 0; i < pc.requests; ++i) {
    t += -std::log(1.0 - rng.uniform()) / rps;  // exponential gap
    arrival[i] = t;
    which[i] = rng.uniform_index(pool.shape()[0]);
  }

  serve::Server server(registry, make_config(pc));
  server.start();

  std::vector<serve::Ticket> tickets;
  tickets.reserve(pc.requests);
  SystemClock& clock = SystemClock::instance();
  const double t0 = clock.now();
  for (std::size_t i = 0; i < pc.requests; ++i) {
    const double target = t0 + arrival[i];
    const double now = clock.now();
    if (target > now) clock.sleep_for(target - now);
    tickets.push_back(server.submit(pool.slice_row(which[i]), pc.timeout));
  }
  for (serve::Ticket& tk : tickets) tk.wait();
  const double elapsed = clock.now() - t0;
  server.drain();
  return {server.stats().snapshot(), elapsed};
}

void add_row(std::vector<bench::JsonResult>& rows, const std::string& name,
             const PointConfig& pc,
             const std::pair<serve::StatsSnapshot, double>& r,
             double offered_rps = 0.0) {
  const auto& [s, elapsed] = r;
  bench::JsonResult row;
  row.name = name;
  row.numbers = {
      {"workers", static_cast<double>(pc.workers)},
      {"max_batch", static_cast<double>(pc.max_batch)},
      {"adaptive", pc.adaptive ? 1.0 : 0.0},
      {"requests", static_cast<double>(pc.requests)},
      {"served", static_cast<double>(s.served)},
      {"throughput_rps", elapsed > 0 ? s.served / elapsed : 0.0},
      {"mean_batch", s.mean_batch},
      {"p50_ms", s.p50 * 1e3},
      {"p95_ms", s.p95 * 1e3},
      {"p99_ms", s.p99 * 1e3},
      {"mean_ms", s.mean * 1e3},
      {"stddev_ms", s.stddev * 1e3},
      {"deadline_misses", static_cast<double>(s.deadline_misses)},
      {"rejected_infeasible", static_cast<double>(s.rejected_infeasible)},
  };
  if (offered_rps > 0.0) {
    row.numbers.push_back({"offered_rps", offered_rps});
    row.numbers.push_back(
        {"rejected_full", static_cast<double>(s.rejected_full)});
  }
  rows.push_back(std::move(row));
  std::printf("%-22s %6zu served  %8.0f req/s  p50 %.3f ms  p99 %.3f ms  "
              "mean %.3f±%.3f ms  batch %.2f\n",
              name.c_str(), s.served, elapsed > 0 ? s.served / elapsed : 0.0,
              s.p50 * 1e3, s.p99 * 1e3, s.mean * 1e3, s.stddev * 1e3,
              s.mean_batch);
}

// ---------------------------------------------------------------------
// Multi-process socket mode
// ---------------------------------------------------------------------

/// Child half of --socket: drive one unix-socket front end with
/// net::Client and write per-request latency seconds (one per line) to
/// --child-out. Closed loop when --child-rps is 0; otherwise a seeded
/// exponential open-loop schedule, with latency measured from the
/// SCHEDULED arrival so a stalled server honestly accumulates queueing
/// delay (no coordinated omission).
int socket_child_main(const CliParser& cli) {
  const env::ListenAddress addr = env::parse_listen_address(
      cli.get_string("connect").c_str(), "--connect");
  if (!addr.valid()) {
    std::fprintf(stderr, "socket child: bad --connect\n");
    return 2;
  }
  net::ClientConfig cfg;
  cfg.endpoints = {addr};
  net::Client client(cfg);

  const auto n = static_cast<std::size_t>(cli.get_int("child-requests"));
  const double rps = cli.get_double("child-rps");
  Rng rng(static_cast<std::uint64_t>(cli.get_int("child-seed")));
  const Tensor pool = make_pool(32);
  const std::size_t pool_size = pool.shape()[0];

  std::vector<double> offset(n, 0.0);
  if (rps > 0.0) {
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += -std::log(1.0 - rng.uniform()) / rps;
      offset[i] = t;
    }
  }

  SystemClock& clock = SystemClock::instance();
  std::vector<double> latencies;
  latencies.reserve(n);
  std::size_t failed = 0;
  const double t0 = clock.now();
  for (std::size_t i = 0; i < n; ++i) {
    double mark = clock.now();
    if (rps > 0.0) {
      const double target = t0 + offset[i];
      if (target > mark) clock.sleep_for(target - mark);
      mark = target;  // open loop: latency from the scheduled arrival
    }
    const Tensor image = pool.slice_row(rng.uniform_index(pool_size));
    const net::ClientResult r = client.request(image);
    if (!r.ok()) {
      ++failed;
      continue;
    }
    latencies.push_back(clock.now() - mark);
  }

  std::ofstream os(cli.get_string("child-out"));
  for (const double v : latencies) os << v << "\n";
  return failed == 0 && os.good() ? 0 : 1;
}

struct SocketPoint {
  std::string name;
  std::size_t shards = 2;
  std::size_t procs = 2;
  double rps = 0.0;  ///< per-child open-loop rate; 0 = closed loop
};

/// Parent half: router + front end on a unix socket, P forked client
/// processes, cross-process percentile merge.
void run_socket_point(std::vector<bench::JsonResult>& rows,
                      const std::string& spec, const SocketPoint& sp,
                      std::size_t per_child) {
  char exe[4096];
  const ssize_t exe_len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (exe_len <= 0) {
    std::fprintf(stderr, "socket mode: cannot resolve /proc/self/exe\n");
    return;
  }
  exe[exe_len] = '\0';
  const std::string sock = "/tmp/satd_bench_" +
                           std::to_string(::getpid()) + "_" + sp.name +
                           ".sock";

  serve::RouterConfig rcfg;
  rcfg.shards = sp.shards;
  rcfg.server.model_name = "bench";
  rcfg.server.workers = 1;
  serve::ShardRouter router(rcfg);
  {
    Rng rng(42);
    nn::Sequential model = nn::zoo::build(spec, rng);
    router.publish(model, spec);
  }
  router.start();

  net::FrontEndConfig fcfg;
  fcfg.listen.kind = env::ListenAddress::Kind::kUnix;
  fcfg.listen.path = sock;
  net::FrontEndSink sink;
  sink.submit = [&router](const Tensor& image, double timeout,
                          std::uint64_t key, std::uint32_t* shard_out,
                          std::uint64_t* id_out) {
    return router.submit(image, timeout, key, shard_out, id_out);
  };
  sink.cancel = [&router](std::uint32_t shard, std::uint64_t id) {
    return router.cancel(shard, id);
  };
  sink.tick = [&router] { router.tick(); };
  net::FrontEnd frontend(fcfg, sink);
  frontend.start();

  runtime::ForkExecRunner& runner = runtime::ForkExecRunner::instance();
  std::vector<runtime::ProcessId> kids;
  std::vector<std::string> outs;
  SystemClock& clock = SystemClock::instance();
  const double t0 = clock.now();
  for (std::size_t p = 0; p < sp.procs; ++p) {
    runtime::SpawnSpec child;
    outs.push_back(sock + ".lat" + std::to_string(p));
    child.argv = {exe,
                  "--socket-child",
                  "--connect=unix:" + sock,
                  "--child-requests=" + std::to_string(per_child),
                  "--child-out=" + outs.back(),
                  "--child-seed=" + std::to_string(9000 + p),
                  "--child-rps=" + std::to_string(sp.rps)};
    kids.push_back(runner.spawn(child));
  }

  std::size_t child_failures = 0;
  for (std::size_t p = 0; p < kids.size(); ++p) {
    for (;;) {
      const runtime::ChildStatus st = runner.poll(kids[p]);
      if (!st.running) {
        if (st.signaled || st.exit_code != 0) ++child_failures;
        break;
      }
      clock.sleep_for(0.005);
    }
  }
  const double elapsed = clock.now() - t0;
  frontend.stop();
  router.drain();

  std::vector<double> lat;
  for (const std::string& path : outs) {
    std::ifstream is(path);
    double v = 0.0;
    while (is >> v) lat.push_back(v);
    ::unlink(path.c_str());
  }
  ::unlink(sock.c_str());
  std::sort(lat.begin(), lat.end());
  const auto pct = [&lat](double q) {
    if (lat.empty()) return 0.0;
    const auto i = static_cast<std::size_t>(q * static_cast<double>(
                                                    lat.size() - 1));
    return lat[i];
  };
  double mean = 0.0;
  for (const double v : lat) mean += v;
  if (!lat.empty()) mean /= static_cast<double>(lat.size());

  const net::FrontEndStats fs = frontend.stats();
  bench::JsonResult row;
  row.name = sp.name;
  row.numbers = {
      {"shards", static_cast<double>(sp.shards)},
      {"client_procs", static_cast<double>(sp.procs)},
      {"requests", static_cast<double>(per_child * sp.procs)},
      {"completed", static_cast<double>(lat.size())},
      {"child_failures", static_cast<double>(child_failures)},
      {"throughput_rps",
       elapsed > 0 ? static_cast<double>(lat.size()) / elapsed : 0.0},
      {"p50_ms", pct(0.50) * 1e3},
      {"p95_ms", pct(0.95) * 1e3},
      {"p99_ms", pct(0.99) * 1e3},
      {"mean_ms", mean * 1e3},
      {"wire_requests", static_cast<double>(fs.requests)},
      {"wire_responses", static_cast<double>(fs.responses)},
  };
  if (sp.rps > 0.0) {
    row.numbers.push_back(
        {"offered_rps", sp.rps * static_cast<double>(sp.procs)});
  }
  std::printf("%-22s %6zu done   %8.0f req/s  p50 %.3f ms  p99 %.3f ms  "
              "(%zu procs x %zu over the socket)\n",
              sp.name.c_str(), lat.size(),
              elapsed > 0 ? static_cast<double>(lat.size()) / elapsed : 0.0,
              pct(0.50) * 1e3, pct(0.99) * 1e3, sp.procs, per_child);
  rows.push_back(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_serve",
                "Micro-batching inference server load bench (closed-loop "
                "static vs adaptive sweep, seeded open-loop schedule, "
                "overload, deadline pressure).");
  cli.add_int("requests", 256, "requests per closed-loop point");
  cli.add_string("model", "cnn_small", "zoo spec to serve");
  cli.add_double("open-loop-rps", 2000.0,
                 "offered arrival rate for the open-loop points");
  cli.add_int("open-loop-seed", 7,
              "seed of the fixed open-loop arrival schedule");
  add_threads_option(cli);
  add_kernel_option(cli);
  cli.add_string("emit-json", "",
                 "write BENCH_serve.json (satd-bench-1 schema) into this "
                 "directory");
  cli.add_flag("socket",
               "add the multi-process socket points (forked net::Client "
               "processes against a 2-shard router front end)");
  cli.add_flag("socket-child", "internal: run as a forked socket client");
  cli.add_string("connect", "", "internal: child's endpoint");
  cli.add_int("child-requests", 256, "internal: child's request count");
  cli.add_string("child-out", "", "internal: child's latency output file");
  cli.add_int("child-seed", 1, "internal: child's image/schedule seed");
  cli.add_double("child-rps", 0.0,
                 "internal: child's open-loop rate (0 = closed loop)");
  if (!cli.parse(argc, argv)) return 0;
  apply_threads_option(cli);
  apply_kernel_option(cli);
  if (cli.get_flag("socket-child")) return socket_child_main(cli);

  const auto requests = static_cast<std::size_t>(cli.get_int("requests"));
  const std::string spec = cli.get_string("model");
  const double open_rps = cli.get_double("open-loop-rps");
  const auto open_seed =
      static_cast<std::uint64_t>(cli.get_int("open-loop-seed"));

  serve::ModelRegistry registry;
  {
    Rng rng(42);
    nn::Sequential model = nn::zoo::build(spec, rng);
    registry.publish("bench", model, spec);
  }
  const Tensor pool = make_pool(128);
  std::printf("bench_serve: %s, %zu requests per point, %zu hw threads\n\n",
              spec.c_str(), requests,
              static_cast<std::size_t>(std::thread::hardware_concurrency()));

  std::vector<bench::JsonResult> rows;

  // Closed-loop sweep: worker count x static batching policy.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (std::size_t max_batch : {std::size_t{1}, std::size_t{8}}) {
      PointConfig pc;
      pc.workers = workers;
      pc.max_batch = max_batch;
      pc.requests = requests;
      pc.clients = 2 * workers;
      const auto r = run_closed(registry, pool, pc);
      add_row(rows,
              "closed_w" + std::to_string(workers) + "_b" +
                  std::to_string(max_batch),
              pc, r);
    }
  }

  // Adaptive twins of the static b8 rows: the window closes as soon as
  // the arrival estimator stops promising a neighbour, so the blocked
  // closed-loop clients are served immediately instead of waiting out
  // max_wait — the inversion (static b8 far below b1) must disappear.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    PointConfig pc;
    pc.workers = workers;
    pc.max_batch = 8;
    pc.requests = requests;
    pc.clients = 2 * workers;
    pc.adaptive = true;
    const auto r = run_closed(registry, pool, pc);
    add_row(rows, "adaptive_w" + std::to_string(workers) + "_b8", pc, r);
  }

  // Open-loop schedule replay: identical offered load for static vs
  // adaptive at each worker count.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    for (bool adaptive : {false, true}) {
      PointConfig pc;
      pc.workers = workers;
      pc.max_batch = 8;
      pc.requests = requests;
      pc.adaptive = adaptive;
      const auto r = run_open(registry, pool, pc, open_rps, open_seed);
      add_row(rows,
              "open_w" + std::to_string(workers) + "_b8" +
                  (adaptive ? "_adaptive" : "_static"),
              pc, r, open_rps);
    }
  }

  // Quantized closed-loop points: same policy as the float w{1,2}_b8
  // rows above, but served through the int8 snapshot (per-row dynamic
  // activation quantization, int32-accumulate GEMM). The interesting
  // comparison is throughput_rps and p50 against the float twin.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    PointConfig pc;
    pc.workers = workers;
    pc.max_batch = 8;
    pc.requests = requests;
    pc.clients = 2 * workers;
    pc.quantized = true;
    const auto r = run_closed(registry, pool, pc);
    add_row(rows, "quantized_w" + std::to_string(workers) + "_b8", pc, r);
  }

  // Deadline pressure: the expected window (max_wait, far longer than
  // the timeout) makes every request infeasible at admission — the
  // feasibility horizon rejects them typed instead of letting them age
  // in the queue and expire as deadline misses.
  {
    PointConfig pc;
    pc.workers = 1;
    pc.max_batch = 16;
    pc.max_wait = 0.004;
    pc.requests = requests;
    pc.clients = 4;
    pc.timeout = 0.002;
    const auto r = run_closed(registry, pool, pc);
    add_row(rows, "deadline", pc, r);
  }

  // Open-loop overload: typed backpressure instead of unbounded queueing.
  {
    PointConfig pc;
    pc.workers = 1;
    pc.max_batch = 8;
    pc.max_wait = 0.0005;
    pc.queue_capacity = 32;
    pc.requests = 4 * requests;
    serve::Server server(registry, make_config(pc));
    server.start();
    Rng rng(7);
    std::vector<serve::Ticket> tickets;
    tickets.reserve(pc.requests);
    for (std::size_t i = 0; i < pc.requests; ++i) {
      const Tensor image = pool.slice_row(rng.uniform_index(pool.shape()[0]));
      tickets.push_back(server.submit(image));
    }
    for (serve::Ticket& t : tickets) t.wait();
    server.drain();
    const serve::StatsSnapshot s = server.stats().snapshot();
    bench::JsonResult row;
    row.name = "overload";
    row.numbers = {
        {"submitted", static_cast<double>(pc.requests)},
        {"served", static_cast<double>(s.served)},
        {"rejected_full", static_cast<double>(s.rejected_full)},
        {"deadline_misses", static_cast<double>(s.deadline_misses)},
        {"max_queue_depth", static_cast<double>(s.max_queue_depth)},
        {"mean_batch", s.mean_batch},
    };
    std::printf("%-22s %6zu served  %zu rejected_full  depth<=%zu\n",
                "overload", s.served, s.rejected_full, s.max_queue_depth);
    rows.push_back(std::move(row));
  }

  // Multi-process socket points: real processes, real sockets, the
  // whole wire in the measured path.
  if (cli.get_flag("socket")) {
    for (const SocketPoint& sp :
         {SocketPoint{"socket_closed_s2_p2", 2, 2, 0.0},
          SocketPoint{"socket_closed_s2_p4", 2, 4, 0.0},
          SocketPoint{"socket_open_s2_p2", 2, 2, 200.0}}) {
      run_socket_point(rows, spec, sp, requests);
    }
  }

  if (const std::string dir = cli.get_string("emit-json"); !dir.empty()) {
    bench::write_bench_json(dir + "/BENCH_serve.json", "serve", 0, rows);
  }
  return 0;
}
