// Extension: common-corruption robustness of the Table-I defenses.
//
// Adversarial training optimizes the worst case inside an eps-ball;
// this bench measures the orthogonal axis — accuracy under benign
// corruptions (noise, brightness, contrast, blur, occlusion, dropout) at
// moderate severity. The interesting readout is whether the adversarial
// defenses trade corruption robustness for their eps-ball guarantees.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/corruptions.h"
#include "metrics/evaluator.h"

using namespace satd;

namespace {

struct MethodRow {
  std::string method;
  bench::MethodOverrides ov;
};

const std::vector<MethodRow> kMethods{
    {"vanilla", {}},
    {"fgsm_adv", {}},
    {"atda", {}},
    {"proposed", {}},
    {"bim_adv", {.bim_iterations = 10}},
};

constexpr float kSeverity = 0.7f;

}  // namespace

int main() {
  const auto env = metrics::ExperimentEnv::from_env();
  bench::print_header(
      "Extension — accuracy under common corruptions (severity 0.7, fashion)", env);

  const std::string dataset = "fashion";
  const data::DatasetPair data = bench::load_dataset(env, dataset);

  // Pre-corrupt the test set once per kind (same seed => every method
  // sees identical corrupted pixels).
  std::vector<data::Dataset> corrupted;
  std::vector<std::string> header{"method", "clean"};
  for (data::Corruption kind : data::all_corruptions()) {
    corrupted.push_back(
        data::corrupt_dataset(data.test, kind, kSeverity, env.seed));
    header.emplace_back(data::corruption_name(kind));
  }

  metrics::Table table(std::move(header));
  for (const MethodRow& row : kMethods) {
    metrics::CachedModel trained =
        bench::train_cached(env, data, dataset, row.method, row.ov);
    std::vector<std::string> cells{trained.report.method};
    cells.push_back(
        metrics::percent(metrics::evaluate_clean(trained.model, data.test)));
    for (const data::Dataset& c : corrupted) {
      cells.push_back(
          metrics::percent(metrics::evaluate_clean(trained.model, c)));
    }
    table.add_row(std::move(cells));
  }

  std::fputs(table.to_string().c_str(), stdout);
  table.write_csv("extension_corruptions.csv");
  std::printf("(rows written to extension_corruptions.csv)\n");
  return 0;
}
