// Microbenchmarks (google-benchmark) for the numerical substrate: the
// per-op throughput numbers that determine every training time in
// Table I. Not part of the paper; engineering visibility.
#include <benchmark/benchmark.h>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"

using namespace satd;

namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1, 1));
  return t;
}

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor(Shape{n, n}, 1);
  const Tensor b = random_tensor(Shape{n, n}, 2);
  Tensor c;
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulSquare)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2col28x28(benchmark::State& state) {
  const Tensor img = random_tensor(Shape{1, 28, 28}, 3);
  const ConvGeometry g{1, 28, 28, 3, 0};
  Tensor cols;
  for (auto _ : state) {
    im2col(img, g, cols);
    benchmark::DoNotOptimize(cols.raw());
  }
}
BENCHMARK(BM_Im2col28x28);

void BM_Softmax(benchmark::State& state) {
  const Tensor logits = random_tensor(Shape{64, 10}, 4);
  for (auto _ : state) {
    Tensor p = nn::softmax(logits);
    benchmark::DoNotOptimize(p.raw());
  }
}
BENCHMARK(BM_Softmax);

void BM_ModelForward(benchmark::State& state) {
  Rng rng(5);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 6);
  for (auto _ : state) {
    Tensor logits = model.forward(x, false);
    benchmark::DoNotOptimize(logits.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ModelForward);

void BM_ModelForwardBackward(benchmark::State& state) {
  Rng rng(7);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 8);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  for (auto _ : state) {
    Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    Tensor gx = model.backward(loss.grad_logits);
    model.zero_grad();
    benchmark::DoNotOptimize(gx.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ModelForwardBackward);

void BM_FgsmBatch(benchmark::State& state) {
  Rng rng(9);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  data::SyntheticConfig cfg;
  cfg.train_size = 32;
  cfg.test_size = 10;
  const auto pair = data::make_synthetic_digits(cfg);
  attack::Fgsm fgsm(0.3f);
  Tensor batch(Shape{32, 1, 28, 28});
  for (std::size_t i = 0; i < 32; ++i) {
    batch.set_row(i, pair.train.images.slice_row(i));
  }
  std::vector<std::size_t> labels(pair.train.labels.begin(),
                                  pair.train.labels.begin() + 32);
  for (auto _ : state) {
    Tensor adv = fgsm.perturb(model, batch, labels);
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_FgsmBatch);

void BM_BimBatch(benchmark::State& state) {
  const auto iters = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  data::SyntheticConfig cfg;
  cfg.train_size = 32;
  cfg.test_size = 10;
  const auto pair = data::make_synthetic_digits(cfg);
  attack::Bim bim(0.3f, iters);
  Tensor batch(Shape{32, 1, 28, 28});
  for (std::size_t i = 0; i < 32; ++i) {
    batch.set_row(i, pair.train.images.slice_row(i));
  }
  std::vector<std::size_t> labels(pair.train.labels.begin(),
                                  pair.train.labels.begin() + 32);
  for (auto _ : state) {
    Tensor adv = bim.perturb(model, batch, labels);
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_BimBatch)->Arg(10)->Arg(30);

// ---- buffer-reuse benchmarks ----
//
// The `_into` execution path keeps every layer cache, tape slot and
// attack scratch tensor alive between calls, so the steady state runs
// with zero heap allocation. The "ColdBuffers" variants call
// release_buffers() (and rebuild the attack object) inside the timed
// loop, forcing every buffer to be reallocated each iteration — an
// honest proxy for the old allocate-per-call behavior. The ratio of the
// two is the figure quoted in README.md.

void BM_TrainStepSteady(benchmark::State& state) {
  Rng rng(13);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 14);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  Tensor logits, gx;
  nn::LossResult loss;
  for (auto _ : state) {
    model.forward_into(x, logits, true);
    nn::softmax_cross_entropy_into(logits, labels, loss);
    model.backward_into(loss.grad_logits, gx);
    model.zero_grad();
    benchmark::DoNotOptimize(gx.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_TrainStepSteady);

void BM_TrainStepColdBuffers(benchmark::State& state) {
  Rng rng(13);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 14);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  for (auto _ : state) {
    model.release_buffers();
    Tensor logits, gx;
    nn::LossResult loss;
    model.forward_into(x, logits, true);
    nn::softmax_cross_entropy_into(logits, labels, loss);
    model.backward_into(loss.grad_logits, gx);
    model.zero_grad();
    benchmark::DoNotOptimize(gx.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_TrainStepColdBuffers);

void BM_BimBatchSteady(benchmark::State& state) {
  const auto iters = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor batch = random_tensor(Shape{32, 1, 28, 28}, 15);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  attack::Bim bim(0.3f, iters);
  Tensor adv;
  for (auto _ : state) {
    bim.perturb_into(model, batch, labels, adv);
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_BimBatchSteady)->Arg(10);

void BM_BimBatchColdBuffers(benchmark::State& state) {
  const auto iters = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor batch = random_tensor(Shape{32, 1, 28, 28}, 15);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  const float eps = 0.3f;
  const float eps_step = eps / static_cast<float>(iters);
  for (auto _ : state) {
    // The allocate-per-call baseline reallocated every intermediate on
    // every forward/backward, so the proxy drops the buffers before each
    // BIM step, not once per attack.
    Tensor adv = batch;
    for (std::size_t i = 0; i < iters; ++i) {
      model.release_buffers();
      attack::GradientScratch scratch;
      attack::Fgsm::step_into(model, adv, batch, labels, eps_step, eps, adv,
                              scratch);
    }
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_BimBatchColdBuffers)->Arg(10);

void BM_RenderDigit(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    Tensor img = data::render_digit(7, rng);
    benchmark::DoNotOptimize(img.raw());
  }
}
BENCHMARK(BM_RenderDigit);

void BM_RenderFashion(benchmark::State& state) {
  Rng rng(12);
  for (auto _ : state) {
    Tensor img = data::render_fashion(2, rng);
    benchmark::DoNotOptimize(img.raw());
  }
}
BENCHMARK(BM_RenderFashion);

}  // namespace

BENCHMARK_MAIN();
