// Microbenchmarks (google-benchmark) for the numerical substrate: the
// per-op throughput numbers that determine every training time in
// Table I. Not part of the paper; engineering visibility.
//
// Two modes:
//   bench_micro                  — the google-benchmark suite below.
//   bench_micro --emit-json[=d]  — the perf-regression harness: median-
//     of-N ns/op for the GEMM shapes the models hit, the full train step
//     and a BIM(10) batch, written as machine-readable BENCH_gemm.json /
//     BENCH_train_step.json into directory `d` (default "."). CI commits
//     a baseline under bench/baseline/ so every PR has a perf trajectory
//     to regress against (format documented in README.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "bench_util.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "tensor/im2col.h"
#include "tensor/kernel/microkernel.h"
#include "tensor/ops.h"

using namespace satd;

namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1, 1));
  return t;
}

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor(Shape{n, n}, 1);
  const Tensor b = random_tensor(Shape{n, n}, 2);
  Tensor c;
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulSquare)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2col28x28(benchmark::State& state) {
  const Tensor img = random_tensor(Shape{1, 28, 28}, 3);
  const ConvGeometry g{1, 28, 28, 3, 0};
  Tensor cols;
  for (auto _ : state) {
    im2col(img, g, cols);
    benchmark::DoNotOptimize(cols.raw());
  }
}
BENCHMARK(BM_Im2col28x28);

void BM_Softmax(benchmark::State& state) {
  const Tensor logits = random_tensor(Shape{64, 10}, 4);
  for (auto _ : state) {
    Tensor p = nn::softmax(logits);
    benchmark::DoNotOptimize(p.raw());
  }
}
BENCHMARK(BM_Softmax);

void BM_ModelForward(benchmark::State& state) {
  Rng rng(5);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 6);
  for (auto _ : state) {
    Tensor logits = model.forward(x, false);
    benchmark::DoNotOptimize(logits.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ModelForward);

void BM_ModelForwardBackward(benchmark::State& state) {
  Rng rng(7);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 8);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  for (auto _ : state) {
    Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    Tensor gx = model.backward(loss.grad_logits);
    model.zero_grad();
    benchmark::DoNotOptimize(gx.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ModelForwardBackward);

void BM_FgsmBatch(benchmark::State& state) {
  Rng rng(9);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  data::SyntheticConfig cfg;
  cfg.train_size = 32;
  cfg.test_size = 10;
  const auto pair = data::make_synthetic_digits(cfg);
  attack::Fgsm fgsm(0.3f);
  Tensor batch(Shape{32, 1, 28, 28});
  for (std::size_t i = 0; i < 32; ++i) {
    batch.set_row(i, pair.train.images.slice_row(i));
  }
  std::vector<std::size_t> labels(pair.train.labels.begin(),
                                  pair.train.labels.begin() + 32);
  for (auto _ : state) {
    Tensor adv = fgsm.perturb(model, batch, labels);
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_FgsmBatch);

void BM_BimBatch(benchmark::State& state) {
  const auto iters = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  data::SyntheticConfig cfg;
  cfg.train_size = 32;
  cfg.test_size = 10;
  const auto pair = data::make_synthetic_digits(cfg);
  attack::Bim bim(0.3f, iters);
  Tensor batch(Shape{32, 1, 28, 28});
  for (std::size_t i = 0; i < 32; ++i) {
    batch.set_row(i, pair.train.images.slice_row(i));
  }
  std::vector<std::size_t> labels(pair.train.labels.begin(),
                                  pair.train.labels.begin() + 32);
  for (auto _ : state) {
    Tensor adv = bim.perturb(model, batch, labels);
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_BimBatch)->Arg(10)->Arg(30);

// ---- buffer-reuse benchmarks ----
//
// The `_into` execution path keeps every layer cache, tape slot and
// attack scratch tensor alive between calls, so the steady state runs
// with zero heap allocation. The "ColdBuffers" variants call
// release_buffers() (and rebuild the attack object) inside the timed
// loop, forcing every buffer to be reallocated each iteration — an
// honest proxy for the old allocate-per-call behavior. The ratio of the
// two is the figure quoted in README.md.

void BM_TrainStepSteady(benchmark::State& state) {
  Rng rng(13);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 14);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  Tensor logits, gx;
  nn::LossResult loss;
  for (auto _ : state) {
    model.forward_into(x, logits, true);
    nn::softmax_cross_entropy_into(logits, labels, loss);
    model.backward_into(loss.grad_logits, gx);
    model.zero_grad();
    benchmark::DoNotOptimize(gx.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_TrainStepSteady);

void BM_TrainStepColdBuffers(benchmark::State& state) {
  Rng rng(13);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 14);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  for (auto _ : state) {
    model.release_buffers();
    Tensor logits, gx;
    nn::LossResult loss;
    model.forward_into(x, logits, true);
    nn::softmax_cross_entropy_into(logits, labels, loss);
    model.backward_into(loss.grad_logits, gx);
    model.zero_grad();
    benchmark::DoNotOptimize(gx.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_TrainStepColdBuffers);

void BM_BimBatchSteady(benchmark::State& state) {
  const auto iters = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor batch = random_tensor(Shape{32, 1, 28, 28}, 15);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  attack::Bim bim(0.3f, iters);
  Tensor adv;
  for (auto _ : state) {
    bim.perturb_into(model, batch, labels, adv);
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_BimBatchSteady)->Arg(10);

void BM_BimBatchColdBuffers(benchmark::State& state) {
  const auto iters = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  const Tensor batch = random_tensor(Shape{32, 1, 28, 28}, 15);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;
  const float eps = 0.3f;
  const float eps_step = eps / static_cast<float>(iters);
  for (auto _ : state) {
    // The allocate-per-call baseline reallocated every intermediate on
    // every forward/backward, so the proxy drops the buffers before each
    // BIM step, not once per attack.
    Tensor adv = batch;
    for (std::size_t i = 0; i < iters; ++i) {
      model.release_buffers();
      attack::GradientScratch scratch;
      attack::Fgsm::step_into(model, adv, batch, labels, eps_step, eps, adv,
                              scratch);
    }
    benchmark::DoNotOptimize(adv.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_BimBatchColdBuffers)->Arg(10);

void BM_RenderDigit(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    Tensor img = data::render_digit(7, rng);
    benchmark::DoNotOptimize(img.raw());
  }
}
BENCHMARK(BM_RenderDigit);

void BM_RenderFashion(benchmark::State& state) {
  Rng rng(12);
  for (auto _ : state) {
    Tensor img = data::render_fashion(2, rng);
    benchmark::DoNotOptimize(img.raw());
  }
}
BENCHMARK(BM_RenderFashion);

}  // namespace

// ---- perf-regression harness (--emit-json) ----

namespace {

/// Seed-era scalar GEMM (i-k-j with the zero skip), kept verbatim as the
/// reference the blocked kernels are scored against.
void naive_matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  out.ensure_shape(Shape{m, n});
  out.fill(0.0f);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = po + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Median wall-clock ns of `reps` timed calls to fn (after one warmup),
/// where each timed sample runs fn `inner` times.
template <typename Fn>
double median_ns(Fn&& fn, int reps, int inner) {
  fn();  // warmup: grow scratch, fault in pages
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() / inner);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Picks an inner-iteration count so one sample takes ~5 ms.
template <typename Fn>
int calibrate_inner(Fn&& fn) {
  const double once = median_ns(fn, 1, 1);
  return std::max(1, static_cast<int>(5e6 / std::max(once, 1.0)));
}

using bench::JsonResult;

constexpr int kReps = 15;

/// GEMM sweep: the [batch=64] x layer shapes of the mlp / mlp_small
/// dense models plus the conv-lowered cnn_small GEMMs, blocked kernel at
/// 1 and 4 threads against the single-thread seed kernel, then one row
/// per compiled-and-available microkernel variant (f32 matmul and the
/// int8 int32-accumulate GEMM, both at 1 thread) scored against the
/// scalar kernel. The dispatch default on this machine is auto (best
/// available), so `blocked_*` rows reflect what users actually get.
void emit_gemm_json(const std::string& dir) {
  struct GemmShape {
    const char* name;
    std::size_t m, k, n;
  };
  const GemmShape shapes[] = {
      {"mlp_fc1_64x784x256", 64, 784, 256},
      {"mlp_fc2_64x256x128", 64, 256, 128},
      {"mlp_fc3_64x128x10", 64, 128, 10},
      {"mlp_small_fc1_64x784x64", 64, 784, 64},
      {"cnn_small_conv1_cols_21632x9x4", 21632, 9, 4},
      {"cnn_small_conv2_cols_3200x64x8", 3200, 64, 8},
      {"cnn_small_fc1_32x200x32", 32, 200, 32},
  };
  std::vector<JsonResult> results;
  for (const GemmShape& s : shapes) {
    const Tensor a = random_tensor(Shape{s.m, s.k}, 101);
    const Tensor b = random_tensor(Shape{s.k, s.n}, 102);
    Tensor c;
    auto blocked = [&] { ops::matmul(a, b, c); };
    auto naive = [&] { naive_matmul(a, b, c); };
    const int inner = calibrate_inner(blocked);

    ThreadPool::set_global_threads(1);
    const double naive_1t = median_ns(naive, kReps, inner);
    const double blocked_1t = median_ns(blocked, kReps, inner);
    ThreadPool::set_global_threads(4);
    const double blocked_4t = median_ns(blocked, kReps, inner);
    ThreadPool::set_global_threads(0);

    JsonResult r;
    r.name = s.name;
    r.numbers = {{"m", double(s.m)},
                 {"k", double(s.k)},
                 {"n", double(s.n)},
                 {"ns_op_seed_1t", naive_1t},
                 {"ns_op_blocked_1t", blocked_1t},
                 {"ns_op_blocked_4t", blocked_4t},
                 {"speedup_1t", naive_1t / blocked_1t},
                 {"speedup_4t", naive_1t / blocked_4t}};
    results.push_back(std::move(r));

    // Per-kernel-variant rows. available_kernels() lists scalar first,
    // so the reference times are in hand before any SIMD row needs them.
    std::vector<std::int8_t> qa(s.m * s.k), qb(s.k * s.n);
    std::vector<std::int32_t> qc(s.m * s.n);
    Rng qrng(103);
    for (auto& v : qa) {
      v = static_cast<std::int8_t>(static_cast<long>(qrng.uniform(-127, 127)));
    }
    for (auto& v : qb) {
      v = static_cast<std::int8_t>(static_cast<long>(qrng.uniform(-127, 127)));
    }
    auto s8 = [&] {
      kernel::gemm_s8(qa.data(), qb.data(), s.m, s.n, s.k, qc.data());
    };
    double scalar_f32 = 0.0, scalar_s8 = 0.0;
    ThreadPool::set_global_threads(1);
    for (const kernel::MicroKernel* kern : kernel::available_kernels()) {
      kernel::set_active_kernel(kern->name);
      const double f32_ns = median_ns(blocked, kReps, inner);
      const double s8_ns = median_ns(s8, kReps, inner);
      if (std::strcmp(kern->name, "scalar") == 0) {
        scalar_f32 = f32_ns;
        scalar_s8 = s8_ns;
      }
      JsonResult kr;
      kr.name = std::string(s.name) + "__" + kern->name;
      kr.numbers = {{"m", double(s.m)},
                    {"k", double(s.k)},
                    {"n", double(s.n)},
                    {"ns_op_f32_1t", f32_ns},
                    {"ns_op_s8_1t", s8_ns},
                    {"speedup_f32_vs_scalar", scalar_f32 / f32_ns},
                    {"speedup_s8_vs_scalar", scalar_s8 / s8_ns}};
      results.push_back(std::move(kr));
    }
    kernel::set_active_kernel("");
    ThreadPool::set_global_threads(0);
  }
  bench::write_bench_json(dir + "/BENCH_gemm.json", "gemm", kReps, results);
}

/// Full-train-step + BIM(10) timings at 1/2/4 threads (steady-state
/// `_into` path, cnn_small, batch 32).
void emit_train_step_json(const std::string& dir) {
  const Tensor x = random_tensor(Shape{32, 1, 28, 28}, 14);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;

  std::vector<JsonResult> results;
  const std::size_t thread_counts[] = {1, 2, 4};

  {
    Rng rng(13);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    Tensor logits, gx;
    nn::LossResult loss;
    auto step = [&] {
      model.forward_into(x, logits, true);
      nn::softmax_cross_entropy_into(logits, labels, loss);
      model.backward_into(loss.grad_logits, gx);
      model.zero_grad();
    };
    const int inner = calibrate_inner(step);
    JsonResult r;
    r.name = "train_step_cnn_small_b32";
    double ns_1t = 0.0;
    for (std::size_t t : thread_counts) {
      ThreadPool::set_global_threads(t);
      const double ns = median_ns(step, kReps, inner);
      if (t == 1) ns_1t = ns;
      r.numbers.emplace_back("ns_op_" + std::to_string(t) + "t", ns);
    }
    r.numbers.emplace_back("speedup_4t", ns_1t / r.numbers.back().second);
    results.push_back(std::move(r));
  }
  {
    Rng rng(10);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    attack::Bim bim(0.3f, 10);
    Tensor adv;
    auto attack_step = [&] { bim.perturb_into(model, x, labels, adv); };
    const int inner = calibrate_inner(attack_step);
    JsonResult r;
    r.name = "bim10_cnn_small_b32";
    double ns_1t = 0.0;
    for (std::size_t t : thread_counts) {
      ThreadPool::set_global_threads(t);
      const double ns = median_ns(attack_step, kReps, inner);
      if (t == 1) ns_1t = ns;
      r.numbers.emplace_back("ns_op_" + std::to_string(t) + "t", ns);
    }
    r.numbers.emplace_back("speedup_4t", ns_1t / r.numbers.back().second);
    results.push_back(std::move(r));
  }
  ThreadPool::set_global_threads(0);
  bench::write_bench_json(dir + "/BENCH_train_step.json", "train_step", kReps,
                          results);
}

}  // namespace

int main(int argc, char** argv) {
  // Pre-scan for the shared --kernel option (google-benchmark owns the
  // rest of argv, so it is extracted before Initialize). Routed through
  // the common/cli helper so the pin/warn/fallback semantics match
  // bench_serve and bench_all exactly.
  for (int i = 1; i < argc; ++i) {
    const bool split = std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc;
    if (split || std::strncmp(argv[i], "--kernel=", 9) == 0) {
      satd::CliParser cli("bench_micro", "microbenchmarks");
      satd::add_kernel_option(cli);
      const std::string joined =
          split ? std::string("--kernel=") + argv[i + 1] : argv[i];
      const char* fake[] = {"bench_micro", joined.c_str()};
      cli.parse(2, fake);
      satd::apply_kernel_option(cli);
      const int consumed = split ? 2 : 1;
      for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      break;
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      const std::string dir = eq ? eq + 1 : ".";
      emit_gemm_json(dir);
      emit_train_step_json(dir);
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
