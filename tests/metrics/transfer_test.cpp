#include "metrics/transfer.h"

#include <gtest/gtest.h>

#include "attack/fgsm.h"
#include "common/contract.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

namespace satd::metrics {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 150;
    cfg.test_size = 40;
    cfg.seed = 123;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

nn::Sequential train_one(std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  core::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.seed = seed;
  core::VanillaTrainer trainer(m, cfg);
  trainer.fit(digits().train);
  return m;
}

TEST(Transfer, MatrixShapeAndRange) {
  nn::Sequential a = train_one(1);
  nn::Sequential b = train_one(2);
  attack::Fgsm fgsm(0.2f);
  const TransferMatrix m = transfer_matrix(
      {{"model-a", &a}, {"model-b", &b}}, digits().test, fgsm, 20);
  ASSERT_EQ(m.names.size(), 2u);
  ASSERT_EQ(m.accuracy.size(), 2u);
  for (const auto& row : m.accuracy) {
    ASSERT_EQ(row.size(), 2u);
    for (float v : row) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(Transfer, DiagonalMatchesWhiteBoxEvaluation) {
  nn::Sequential a = train_one(3);
  attack::Fgsm fgsm(0.2f);
  const TransferMatrix m =
      transfer_matrix({{"a", &a}}, digits().test, fgsm, 20);
  attack::Fgsm fresh(0.2f);
  const float direct = evaluate_attack(a, digits().test, fresh, 20);
  EXPECT_NEAR(m.accuracy[0][0], direct, 1e-6f);
}

TEST(Transfer, CrossModelAttacksAreWeakerThanWhiteBox) {
  // Transferred attacks are generally less effective than direct ones:
  // off-diagonal accuracy >= diagonal accuracy (within slack).
  nn::Sequential a = train_one(4);
  nn::Sequential b = train_one(5);
  attack::Fgsm fgsm(0.3f);
  const TransferMatrix m = transfer_matrix(
      {{"a", &a}, {"b", &b}}, digits().test, fgsm, 20);
  EXPECT_GE(m.accuracy[0][1], m.accuracy[0][0] - 0.05f);
  EXPECT_GE(m.accuracy[1][0], m.accuracy[1][1] - 0.05f);
}

TEST(Transfer, RenderingContainsNamesAndPercents) {
  nn::Sequential a = train_one(6);
  attack::Fgsm fgsm(0.1f);
  const TransferMatrix m =
      transfer_matrix({{"my-model", &a}}, digits().test, fgsm, 20);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("my-model"), std::string::npos);
  EXPECT_NE(s.find('%'), std::string::npos);
  EXPECT_NE(s.find("src\\target"), std::string::npos);
}

TEST(Transfer, ValidatesInputs) {
  attack::Fgsm fgsm(0.1f);
  EXPECT_THROW(transfer_matrix({}, digits().test, fgsm), ContractViolation);
  EXPECT_THROW(transfer_matrix({{"null", nullptr}}, digits().test, fgsm),
               ContractViolation);
}

}  // namespace
}  // namespace satd::metrics
