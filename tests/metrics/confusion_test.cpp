#include "metrics/confusion.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

namespace satd::metrics {
namespace {

TEST(ConfusionMatrix, StartsEmpty) {
  ConfusionMatrix cm(3);
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_FLOAT_EQ(cm.accuracy(), 0.0f);
  EXPECT_FLOAT_EQ(cm.recall(0), 0.0f);
  EXPECT_FLOAT_EQ(cm.precision(0), 0.0f);
}

TEST(ConfusionMatrix, RecordsAndComputes) {
  ConfusionMatrix cm(2);
  cm.record(0, 0);
  cm.record(0, 0);
  cm.record(0, 1);
  cm.record(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_FLOAT_EQ(cm.accuracy(), 0.75f);
  EXPECT_FLOAT_EQ(cm.recall(0), 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(cm.recall(1), 1.0f);
  EXPECT_FLOAT_EQ(cm.precision(1), 0.5f);
  EXPECT_FLOAT_EQ(cm.precision(0), 1.0f);
}

TEST(ConfusionMatrix, BoundsChecked) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.record(2, 0), ContractViolation);
  EXPECT_THROW(cm.record(0, 2), ContractViolation);
  EXPECT_THROW(cm.count(2, 0), ContractViolation);
  EXPECT_THROW(cm.recall(2), ContractViolation);
  EXPECT_THROW(ConfusionMatrix(0), ContractViolation);
}

TEST(ConfusionMatrix, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.record(0, 1);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("true\\pred"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(ConfusionOn, AgreesWithScalarAccuracy) {
  data::SyntheticConfig cfg;
  cfg.train_size = 120;
  cfg.test_size = 40;
  cfg.seed = 66;
  const auto pair = data::make_synthetic_digits(cfg);
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  core::TrainConfig tc;
  tc.epochs = 6;
  core::VanillaTrainer trainer(m, tc);
  trainer.fit(pair.train);

  const ConfusionMatrix cm = confusion_on(m, pair.test, 16);
  EXPECT_EQ(cm.total(), pair.test.size());
  EXPECT_NEAR(cm.accuracy(), evaluate_clean(m, pair.test), 1e-6f);
}

}  // namespace
}  // namespace satd::metrics
