#include "metrics/model_cache.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/contract.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace satd::metrics {
namespace {

namespace fs = std::filesystem;

class ModelCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "satd_cache_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static ModelKey key(const std::string& method = "vanilla") {
    ModelKey k;
    k.method = method;
    k.dataset = "digits";
    k.model_spec = "mlp_small";
    k.train_size = 100;
    k.epochs = 2;
    k.batch_size = 32;
    k.seed = 5;
    k.eps = 0.3f;
    return k;
  }

  static core::TrainReport quick_train(nn::Sequential& model) {
    data::SyntheticConfig cfg;
    cfg.train_size = 100;
    cfg.test_size = 10;
    cfg.seed = 5;
    const auto pair = data::make_synthetic_digits(cfg);
    core::TrainConfig tc;
    tc.epochs = 2;
    core::VanillaTrainer trainer(model, tc);
    return trainer.fit(pair.train);
  }

  std::string dir_;
};

TEST_F(ModelCacheTest, FirstCallTrainsSecondCallLoads) {
  int train_calls = 0;
  auto train = [&](nn::Sequential& m) {
    ++train_calls;
    return quick_train(m);
  };
  CachedModel first = train_or_load(dir_, key(), train);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(train_calls, 1);
  ASSERT_EQ(first.report.epochs.size(), 2u);

  CachedModel second = train_or_load(dir_, key(), train);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(train_calls, 1);  // not retrained
  // Loaded model reproduces the trained model's outputs.
  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  EXPECT_TRUE(first.model.forward(probe, false)
                  .equals(second.model.forward(probe, false)));
}

TEST_F(ModelCacheTest, ReportSurvivesCacheHit) {
  auto train = [&](nn::Sequential& m) { return quick_train(m); };
  const CachedModel first = train_or_load(dir_, key(), train);
  const CachedModel second = train_or_load(dir_, key(), train);
  ASSERT_EQ(second.report.epochs.size(), first.report.epochs.size());
  EXPECT_EQ(second.report.method, first.report.method);
  for (std::size_t e = 0; e < first.report.epochs.size(); ++e) {
    EXPECT_NEAR(second.report.epochs[e].seconds,
                first.report.epochs[e].seconds, 1e-6);
    EXPECT_NEAR(second.report.epochs[e].mean_loss,
                first.report.epochs[e].mean_loss, 1e-6f);
  }
}

TEST_F(ModelCacheTest, DifferentKeysDifferentEntries) {
  int train_calls = 0;
  auto train = [&](nn::Sequential& m) {
    ++train_calls;
    return quick_train(m);
  };
  train_or_load(dir_, key("vanilla"), train);
  train_or_load(dir_, key("fgsm_adv"), train);
  EXPECT_EQ(train_calls, 2);
  ModelKey k2 = key();
  k2.eps = 0.2f;  // eps only differs in the hash, not the readable stem
  train_or_load(dir_, k2, train);
  EXPECT_EQ(train_calls, 3);
}

TEST_F(ModelCacheTest, StemIsReadableAndStable) {
  const std::string stem = key().stem();
  EXPECT_NE(stem.find("digits"), std::string::npos);
  EXPECT_NE(stem.find("vanilla"), std::string::npos);
  EXPECT_NE(stem.find("_t100"), std::string::npos);
  EXPECT_NE(stem.find("_e2"), std::string::npos);
  EXPECT_EQ(stem, key().stem());
  ModelKey other = key();
  other.seed = 6;
  EXPECT_NE(stem, other.stem());
}

TEST_F(ModelCacheTest, UnknownSpecRejected) {
  ModelKey bad = key();
  bad.model_spec = "resnet";
  auto train = [&](nn::Sequential& m) { return quick_train(m); };
  EXPECT_THROW(train_or_load(dir_, bad, train), ContractViolation);
}

TEST_F(ModelCacheTest, ReportFileRoundTrip) {
  core::TrainReport report;
  report.method = "Test";
  report.epochs.push_back({0, 1.5f, 2.25});
  report.epochs.push_back({1, 0.75f, 2.5});
  const std::string path = dir_ + "/report.txt";
  fs::create_directories(dir_);
  write_report_file(path, report);
  const core::TrainReport back = read_report_file(path);
  EXPECT_EQ(back.method, "Test");
  ASSERT_EQ(back.epochs.size(), 2u);
  EXPECT_EQ(back.epochs[1].epoch, 1u);
  EXPECT_FLOAT_EQ(back.epochs[1].mean_loss, 0.75f);
  EXPECT_DOUBLE_EQ(back.epochs[1].seconds, 2.5);
}

}  // namespace
}  // namespace satd::metrics
