#include "metrics/robustness_report.h"

#include <gtest/gtest.h>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "attack/noise.h"
#include "common/contract.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

namespace satd::metrics {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 150;
    cfg.test_size = 60;
    cfg.seed = 404;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

nn::Sequential& model() {
  static nn::Sequential m = [] {
    Rng rng(1);
    nn::Sequential net = nn::zoo::build("mlp_small", rng);
    core::TrainConfig cfg;
    cfg.epochs = 8;
    core::VanillaTrainer trainer(net, cfg);
    trainer.fit(digits().train);
    return net;
  }();
  return m;
}

TEST(RobustnessReport, AccuraciesAgreeWithEvaluator) {
  attack::Fgsm fgsm(0.2f);
  const RobustnessReport rep =
      robustness_report(model(), digits().test, fgsm, 16);
  EXPECT_EQ(rep.examples, digits().test.size());
  EXPECT_NEAR(rep.clean_accuracy, evaluate_clean(model(), digits().test),
              1e-6f);
  attack::Fgsm fresh(0.2f);
  EXPECT_NEAR(rep.adversarial_accuracy,
              evaluate_attack(model(), digits().test, fresh), 1e-6f);
}

TEST(RobustnessReport, PerturbationRespectsBudget) {
  attack::Bim bim(0.15f, 5);
  const RobustnessReport rep =
      robustness_report(model(), digits().test, bim, 16);
  EXPECT_LE(rep.max_linf, 0.15f + 1e-5f);
  EXPECT_LE(rep.mean_linf, rep.max_linf + 1e-6f);
  EXPECT_GT(rep.mean_linf, 0.0f);
  EXPECT_GT(rep.mean_l2, rep.mean_linf);  // many pixels move
  EXPECT_GT(rep.mean_changed_fraction, 0.1f);
  EXPECT_LE(rep.mean_changed_fraction, 1.0f);
}

TEST(RobustnessReport, ConfidenceDropsUnderAttack) {
  attack::Bim bim(0.3f, 5);
  const RobustnessReport rep =
      robustness_report(model(), digits().test, bim, 16);
  EXPECT_LT(rep.mean_confidence_adv, rep.mean_confidence_clean);
}

TEST(RobustnessReport, SuccessRateConsistentWithAccuracies) {
  attack::Bim bim(0.3f, 5);
  const RobustnessReport rep =
      robustness_report(model(), digits().test, bim, 16);
  // flipped = clean_correct - (correct both before and after) >=
  // clean_correct - adv_correct, so the rate is at least the accuracy gap
  // normalized by clean accuracy.
  const float min_rate =
      (rep.clean_accuracy - rep.adversarial_accuracy) / rep.clean_accuracy;
  EXPECT_GE(rep.attack_success_rate, min_rate - 1e-5f);
  EXPECT_LE(rep.attack_success_rate, 1.0f);
}

TEST(RobustnessReport, NoiseBaselineHasLowerSuccessThanBim) {
  Rng rng(2);
  attack::RandomNoise noise(0.3f, rng, /*corners=*/true);
  attack::Bim bim(0.3f, 5);
  const RobustnessReport noise_rep =
      robustness_report(model(), digits().test, noise, 16);
  const RobustnessReport bim_rep =
      robustness_report(model(), digits().test, bim, 16);
  EXPECT_LT(bim_rep.adversarial_accuracy, noise_rep.adversarial_accuracy);
  EXPECT_GT(bim_rep.attack_success_rate, noise_rep.attack_success_rate);
}

TEST(RobustnessReport, RenderingContainsKeyNumbers) {
  attack::Fgsm fgsm(0.1f);
  const RobustnessReport rep =
      robustness_report(model(), digits().test, fgsm, 16);
  const std::string s = rep.to_string();
  EXPECT_NE(s.find("FGSM"), std::string::npos);
  EXPECT_NE(s.find("attack success"), std::string::npos);
  EXPECT_NE(s.find("l-inf"), std::string::npos);
}

TEST(RobustnessReport, ValidatesInputs) {
  attack::Fgsm fgsm(0.1f);
  data::Dataset empty;
  empty.images = Tensor(Shape{0, 1, 28, 28});
  empty.num_classes = 10;
  EXPECT_THROW(robustness_report(model(), empty, fgsm), ContractViolation);
  EXPECT_THROW(robustness_report(model(), digits().test, fgsm, 0),
               ContractViolation);
}

}  // namespace
}  // namespace satd::metrics
