#include "metrics/evaluator.h"

#include <gtest/gtest.h>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "common/contract.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace satd::metrics {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 150;
    cfg.test_size = 50;
    cfg.seed = 44;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

nn::Sequential& model() {
  static nn::Sequential m = [] {
    Rng rng(1);
    nn::Sequential net = nn::zoo::build("mlp_small", rng);
    core::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.seed = 2;
    core::VanillaTrainer trainer(net, cfg);
    trainer.fit(digits().train);
    return net;
  }();
  return m;
}

TEST(Evaluator, CleanAccuracyAboveChance) {
  const float acc = evaluate_clean(model(), digits().test);
  EXPECT_GT(acc, 0.5f);
  EXPECT_LE(acc, 1.0f);
}

TEST(Evaluator, BatchSizeDoesNotChangeResult) {
  const float a = evaluate_clean(model(), digits().test, 7);
  const float b = evaluate_clean(model(), digits().test, 64);
  EXPECT_FLOAT_EQ(a, b);
}

TEST(Evaluator, AttackAccuracyBelowClean) {
  attack::Fgsm fgsm(0.3f);
  const float clean = evaluate_clean(model(), digits().test);
  const float attacked = evaluate_attack(model(), digits().test, fgsm);
  EXPECT_LT(attacked, clean);
}

TEST(Evaluator, EmptyTestSetRejected) {
  data::Dataset empty;
  empty.images = Tensor(Shape{0, 1, 28, 28});
  empty.num_classes = 10;
  EXPECT_THROW(evaluate_clean(model(), empty), ContractViolation);
}

TEST(Evaluator, RobustCurveMatchesIterationList) {
  const std::vector<std::size_t> ns{1, 2, 4};
  const auto curve = robust_curve(model(), digits().test, 0.3f, ns, 32);
  ASSERT_EQ(curve.size(), 3u);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    EXPECT_EQ(curve[i].iterations, ns[i]);
    EXPECT_GE(curve[i].accuracy, 0.0f);
    EXPECT_LE(curve[i].accuracy, 1.0f);
  }
}

TEST(Evaluator, RobustCurveDecreasesForVanillaModel) {
  // More BIM iterations at fixed eps should hurt an undefended model at
  // least as much as fewer (within noise; compare first vs last point).
  const auto curve =
      robust_curve(model(), digits().test, 0.3f, {1, 5, 10}, 32);
  EXPECT_GE(curve.front().accuracy, curve.back().accuracy - 0.05f);
}

TEST(Evaluator, IntermediateCurveHasOnePointPerIteration) {
  const auto curve = intermediate_curve(model(), digits().test, 0.3f, 6, 32);
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(curve[i].iterations, i + 1);
  }
}

TEST(Evaluator, IntermediateCurveIsMonotoneNonIncreasingForVanilla) {
  // The paper's Figure 2 property: accuracy degrades with each iteration.
  const auto curve = intermediate_curve(model(), digits().test, 0.3f, 8, 32);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].accuracy, curve[i - 1].accuracy + 0.05f) << i;
  }
}

TEST(Evaluator, IntermediateFinalPointMatchesFullAttackAccuracy) {
  const auto curve = intermediate_curve(model(), digits().test, 0.3f, 5, 32);
  attack::Bim bim(0.3f, 5);
  const float direct = evaluate_attack(model(), digits().test, bim, 32);
  EXPECT_NEAR(curve.back().accuracy, direct, 1e-6f);
}

TEST(Evaluator, ZeroIterationsRejected) {
  EXPECT_THROW(intermediate_curve(model(), digits().test, 0.3f, 0),
               ContractViolation);
  EXPECT_THROW(accuracy_vs_eps(model(), digits().test, {0.1f}, 0),
               ContractViolation);
}

TEST(Evaluator, AccuracyVsEpsStartsAtCleanAccuracy) {
  const auto profile =
      accuracy_vs_eps(model(), digits().test, {0.0f, 0.1f, 0.3f}, 5, 32);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_FLOAT_EQ(profile[0].eps, 0.0f);
  EXPECT_NEAR(profile[0].accuracy, evaluate_clean(model(), digits().test),
              1e-6f);
}

TEST(Evaluator, AccuracyVsEpsDecreasesWithBudget) {
  const auto profile =
      accuracy_vs_eps(model(), digits().test, {0.0f, 0.15f, 0.3f}, 5, 32);
  EXPECT_GE(profile[0].accuracy, profile[1].accuracy - 0.05f);
  EXPECT_GE(profile[1].accuracy, profile[2].accuracy - 0.05f);
}

// (transferability evaluation is covered in transfer_test.cpp)

TEST(Evaluator, AccuracyVsEpsRejectsNegativeBudget) {
  EXPECT_THROW(accuracy_vs_eps(model(), digits().test, {-0.1f}, 5),
               ContractViolation);
}

}  // namespace
}  // namespace satd::metrics
