#include "metrics/report.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/contract.h"

namespace satd::metrics {
namespace {

namespace fs = std::filesystem;

TEST(Table, RendersHeaderAndRowsAligned) {
  Table t({"method", "accuracy"});
  t.add_row({"FGSM-Adv", "98.65%"});
  t.add_row({"Proposed", "94.21%"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("FGSM-Adv"), std::string::npos);
  EXPECT_NE(s.find("94.21%"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, CsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const auto path = fs::temp_directory_path() / "satd_report_test.csv";
  t.write_csv(path.string());
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x,y");
  std::getline(is, line);
  EXPECT_EQ(line, "1,2");
  std::getline(is, line);
  EXPECT_EQ(line, "3,4");
  fs::remove(path);
}

TEST(Table, CsvRejectsCommasInCells) {
  Table t({"a"});
  t.add_row({"has,comma"});
  const auto path = fs::temp_directory_path() / "satd_report_bad.csv";
  EXPECT_THROW(t.write_csv(path.string()), ContractViolation);
  fs::remove(path);
}

TEST(Format, PercentMatchesPaperStyle) {
  EXPECT_EQ(percent(0.9329f), "93.29%");
  EXPECT_EQ(percent(1.0f), "100.00%");
  EXPECT_EQ(percent(0.0f), "0.00%");
}

TEST(Format, SecondsTwoDecimals) {
  EXPECT_EQ(seconds(56.468), "56.47");
  EXPECT_EQ(seconds(0.0), "0.00");
}

}  // namespace
}  // namespace satd::metrics
