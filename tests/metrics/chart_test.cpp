#include "metrics/chart.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contract.h"

namespace satd::metrics {
namespace {

TEST(AsciiChart, RendersSeriesGlyphsAndLegend) {
  AsciiChart chart(40, 10);
  chart.add_series("robust", {1.0f, 0.8f, 0.6f});
  chart.add_series("vanilla", {0.9f, 0.2f, 0.0f});
  chart.set_x_labels({"1", "2", "3"});
  const std::string s = chart.to_string();
  EXPECT_NE(s.find('o'), std::string::npos);  // first series glyph
  EXPECT_NE(s.find('+'), std::string::npos);  // second series glyph
  EXPECT_NE(s.find("o=robust"), std::string::npos);
  EXPECT_NE(s.find("+=vanilla"), std::string::npos);
  EXPECT_NE(s.find("100%"), std::string::npos);
  EXPECT_NE(s.find("0%"), std::string::npos);
}

TEST(AsciiChart, TopRowHoldsTheMaximum) {
  AsciiChart chart(30, 8);
  chart.add_series("s", {1.0f, 0.0f});
  const std::string s = chart.to_string();
  // First rendered line (y = 100%) must contain the glyph.
  const std::string first_line = s.substr(0, s.find('\n'));
  EXPECT_NE(first_line.find('o'), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesStaysOnOneRow) {
  AsciiChart chart(30, 8);
  chart.add_series("flat", std::vector<float>(5, 0.5f));
  const std::string s = chart.to_string();
  std::size_t rows_with_glyph = 0;
  std::string line;
  std::istringstream is(s);
  while (std::getline(is, line)) {
    // Only plot-area rows (they contain the y-axis bar); the legend also
    // contains the glyph and must not be counted.
    if (line.find('|') != std::string::npos &&
        line.find('o') != std::string::npos) {
      ++rows_with_glyph;
    }
  }
  EXPECT_EQ(rows_with_glyph, 1u);
}

TEST(AsciiChart, SinglePointSeriesRenders) {
  AsciiChart chart(30, 8);
  chart.add_series("dot", {0.7f});
  EXPECT_NE(chart.to_string().find('o'), std::string::npos);
}

TEST(AsciiChart, XLabelsAppear) {
  AsciiChart chart(40, 8);
  chart.add_series("s", {0.1f, 0.2f, 0.3f, 0.4f, 0.5f});
  chart.set_x_labels({"N=1", "N=2", "N=5", "N=10", "N=30"});
  const std::string s = chart.to_string();
  EXPECT_NE(s.find("N=1"), std::string::npos);
  EXPECT_NE(s.find("N=30"), std::string::npos);
}

TEST(AsciiChart, ValidatesInputs) {
  EXPECT_THROW(AsciiChart(5, 8), ContractViolation);
  EXPECT_THROW(AsciiChart(40, 2), ContractViolation);
  AsciiChart chart(40, 8);
  EXPECT_THROW(chart.add_series("bad", {}), ContractViolation);
  EXPECT_THROW(chart.add_series("bad", {1.5f}), ContractViolation);
  EXPECT_THROW(chart.to_string(), ContractViolation);  // no series yet
  chart.add_series("a", {0.5f, 0.5f});
  EXPECT_THROW(chart.add_series("b", {0.5f}), ContractViolation);
}

TEST(AsciiChart, ManySeriesCycleGlyphs) {
  AsciiChart chart(40, 8);
  for (int i = 0; i < 10; ++i) {
    chart.add_series("s" + std::to_string(i), {0.1f * static_cast<float>(i)});
  }
  EXPECT_FALSE(chart.to_string().empty());
}

}  // namespace
}  // namespace satd::metrics
