#include "metrics/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "common/contract.h"

namespace satd::metrics {
namespace {

/// Scoped environment-variable override.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      setenv(name_, saved_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ExperimentEnv, EpsMatchesPaperPerDataset) {
  EXPECT_FLOAT_EQ(ExperimentEnv::eps_for("digits"), 0.3f);
  EXPECT_FLOAT_EQ(ExperimentEnv::eps_for("fashion"), 0.2f);
  EXPECT_THROW(ExperimentEnv::eps_for("cifar"), ContractViolation);
}

TEST(ExperimentEnv, DefaultScaleIsFast) {
  EnvGuard g("SATD_SCALE", "fast");
  const ExperimentEnv env = ExperimentEnv::from_env();
  EXPECT_EQ(env.train_size, 1000u);
  EXPECT_EQ(env.test_size, 400u);
}

TEST(ExperimentEnv, SmokeAndPaperScalesDiffer) {
  std::size_t smoke_train, paper_train;
  {
    EnvGuard g("SATD_SCALE", "smoke");
    smoke_train = ExperimentEnv::from_env().train_size;
  }
  {
    EnvGuard g("SATD_SCALE", "paper");
    paper_train = ExperimentEnv::from_env().train_size;
  }
  EXPECT_LT(smoke_train, paper_train);
}

TEST(ExperimentEnv, IndividualOverridesWin) {
  EnvGuard g1("SATD_SCALE", "fast");
  EnvGuard g2("SATD_TRAIN_SIZE", "123");
  EnvGuard g3("SATD_EPOCHS", "7");
  EnvGuard g4("SATD_MODEL", "mlp");
  const ExperimentEnv env = ExperimentEnv::from_env();
  EXPECT_EQ(env.train_size, 123u);
  EXPECT_EQ(env.epochs, 7u);
  EXPECT_EQ(env.model_spec, "mlp");
}

TEST(ExperimentEnv, UnknownScaleRejected) {
  EnvGuard g("SATD_SCALE", "warp9");
  EXPECT_THROW(ExperimentEnv::from_env(), ContractViolation);
}

TEST(ExperimentEnv, TrainConfigInheritsKnobs) {
  ExperimentEnv env;
  env.epochs = 40;
  env.seed = 99;
  const core::TrainConfig cfg = env.train_config("digits");
  EXPECT_EQ(cfg.epochs, 40u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_FLOAT_EQ(cfg.eps, 0.3f);
  EXPECT_EQ(cfg.reset_period, 20u);  // >= 30 epochs -> paper value
}

TEST(ExperimentEnv, ResetPeriodScalesDownWithShortRuns) {
  ExperimentEnv env;
  env.epochs = 10;
  EXPECT_EQ(env.train_config("digits").reset_period, 5u);
  env.epochs = 1;
  EXPECT_EQ(env.train_config("digits").reset_period, 1u);
}

TEST(ExperimentEnv, DatasetConfigCopiesSizes) {
  ExperimentEnv env;
  env.train_size = 77;
  env.test_size = 33;
  env.seed = 5;
  const data::SyntheticConfig cfg = env.dataset_config();
  EXPECT_EQ(cfg.train_size, 77u);
  EXPECT_EQ(cfg.test_size, 33u);
  EXPECT_EQ(cfg.seed, 5u);
}

TEST(ExperimentEnv, DescribeMentionsKeyKnobs) {
  ExperimentEnv env;
  const std::string d = env.describe();
  EXPECT_NE(d.find("train="), std::string::npos);
  EXPECT_NE(d.find("epochs="), std::string::npos);
  EXPECT_NE(d.find("model="), std::string::npos);
}

}  // namespace
}  // namespace satd::metrics
